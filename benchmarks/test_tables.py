"""Benchmarks regenerating the paper's tables (1, 2, 3, 4)."""

from conftest import save

from repro.experiments import table1, table2, table3, table4


def test_table1(benchmark, results_dir, scale, full_scale):
    """Table 1: qualitative scheme comparison, measured on wi-4cl."""
    result = benchmark.pedantic(
        lambda: table1("wi", "4cl", scale=scale), rounds=1, iterations=1
    )
    save(results_dir, "table1", result.render())
    if not full_scale:
        return
    runs = result.raw["runs"]
    # BFS's memory explosion vs the stack/token-bounded schemes.
    assert runs["bfs"].peak_footprint_bytes > 2 * runs["dfs"].peak_footprint_bytes
    # DFS leaves the execution width unused.
    assert runs["dfs"].slot_utilization < runs["shogun"].slot_utilization
    # Shogun stalls less than the barriered schemes.
    assert (
        runs["shogun"].barrier_idle_fraction
        < runs["pseudo-dfs"].barrier_idle_fraction
    )


def test_table2(benchmark, results_dir, scale):
    """Table 2: avg intermediate cache lines per task (miner-measured)."""
    result = benchmark.pedantic(lambda: table2(scale=scale), rounds=1, iterations=1)
    save(results_dir, "table2", result.render())
    values = result.raw
    # All values stay far below the L1 capacity (the Insight 2 argument):
    assert all(v < 64 for v in values.values())
    # tt needs the least intermediate input (only depth-1 intersects).
    for ds in ("wi", "as"):
        assert values[f"{ds}-tt_e"] <= values[f"{ds}-4cl"]


def test_table3(benchmark, results_dir):
    """Table 3: the active (scaled) simulator configuration."""
    result = benchmark.pedantic(table3, rounds=1, iterations=1)
    save(results_dir, "table3", result.render())
    assert "178 task tree entries" in result.render()


def test_table4(benchmark, results_dir, scale):
    """Table 4: dataset roster, paper originals vs synthetic stand-ins."""
    result = benchmark.pedantic(lambda: table4(scale=scale), rounds=1, iterations=1)
    save(results_dir, "table4", result.render())
    assert len(result.rows) == 6
