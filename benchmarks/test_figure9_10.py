"""Figures 9 & 10: the headline Shogun vs FINGERS evaluation grid."""

from conftest import save

from repro.experiments import figure9, figure10
from repro.sim.metrics import geomean


def test_figure9(benchmark, results_dir, scale, full_scale):
    """Fig. 9: Shogun speedup over FINGERS across the evaluation grid.

    Paper: +43% geomean, up to +131%, with accelerator optimizations
    disabled.  Shape claims asserted: Shogun wins on average, never loses
    badly anywhere, and the biggest wins land on barrier-sensitive
    (skewed/deep) cases.
    """
    result = benchmark.pedantic(lambda: figure9(scale=scale), rounds=1, iterations=1)
    save(results_dir, "figure9", result.render())
    if not full_scale:
        return
    speedups = result.raw["speedups"]
    gm = result.raw["geomean"]
    assert gm > 1.10, f"geomean speedup only {gm:.2f}x"
    assert max(speedups.values()) > 1.30
    assert min(speedups.values()) > 0.85  # no catastrophic regression


def test_figure10(benchmark, results_dir, scale, full_scale):
    """Fig. 10: Shogun IU utilization rates per case.

    Shape claims: clique patterns (compute-dense, set ops at every
    depth) show higher IU utilization than tt_e/dia_e (one intersection
    per subtree).
    """
    result = benchmark.pedantic(lambda: figure10(scale=scale), rounds=1, iterations=1)
    save(results_dir, "figure10", result.render())
    if not full_scale:
        return
    utils = result.raw
    clique_avg = geomean([v for k, v in utils.items() if k.endswith("4cl") or k.endswith("5cl")])
    tt_e_avg = geomean([v for k, v in utils.items() if k.endswith("tt_e") or k.endswith("dia_e")])
    assert clique_avg > tt_e_avg
