"""Figure 3: the pseudo-DFS vs parallel-DFS motivation experiments."""

from conftest import save

from repro.experiments import figure3a, figure3b


def test_figure3a(benchmark, results_dir, scale, full_scale):
    """Fig. 3(a): speedup & FU utilization vs width on as-4cl.

    Shape claim: out-of-order (parallel-DFS) clearly beats pseudo-DFS at
    the full execution width, with a higher FU utilization rate.
    """
    result = benchmark.pedantic(lambda: figure3a(scale=scale), rounds=1, iterations=1)
    save(results_dir, "figure3a", result.render())
    if not full_scale:
        return
    pseudo_best = max(row[1] for row in result.rows)
    parallel_best = max(row[3] for row in result.rows)
    # Out-of-order exploration clearly exceeds pseudo-DFS's ceiling.
    assert parallel_best > pseudo_best * 1.1
    # Both schemes scale up from width 1.
    assert pseudo_best > 1.2 and parallel_best > 1.5


def test_figure3b(benchmark, results_dir, scale, full_scale):
    """Fig. 3(b): speedup & L1 hit rate vs width on yo-tt.

    Shape claim: parallel-DFS's L1 hit rate collapses as the width grows
    and its speedup falls behind pseudo-DFS — locality monitoring is
    necessary.
    """
    result = benchmark.pedantic(lambda: figure3b(scale=scale), rounds=1, iterations=1)
    save(results_dir, "figure3b", result.render())
    if not full_scale:
        return
    last = result.rows[-1]
    pseudo_speedup, pseudo_latency = last[1], last[3]
    parallel_speedup, parallel_latency = last[4], last[6]
    # At the full width the locality loss is visible and costly:
    assert parallel_latency > pseudo_latency * 2.0
    assert parallel_speedup < pseudo_speedup
