"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one paper table/figure at the dataset scale
given by the ``REPRO_SCALE`` environment variable (default 1.0; use e.g.
``REPRO_SCALE=0.3`` for a quick pass) and writes the rendered rows to
``results/<name>.txt`` so EXPERIMENTS.md can reference them.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def scale() -> float:
    return float(os.environ.get("REPRO_SCALE", "1.0"))


@pytest.fixture(scope="session", autouse=True)
def persistent_cell_cache():
    """Route every run_cell through the on-disk orchestrator cache.

    The first benchmark session pays the simulations and fills
    ``.repro-cache/``; repeat sessions (and ``repro experiment``
    invocations sharing the directory) replay them near-instantly.
    Set ``REPRO_CACHE=0`` to opt out.
    """
    from repro.orchestrator import attach_persistent_cache

    detach = attach_persistent_cache()
    yield
    detach()


@pytest.fixture(scope="session")
def full_scale(scale) -> bool:
    """Whether the paper's shape claims are expected to manifest.

    Below ~0.8x the datasets are too small for the locality/imbalance
    phenomena, so quick passes only validate that the harness runs and
    counts exactly; the shape assertions are skipped.
    """
    return scale >= 0.8


def save(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Write one regenerated artifact and echo it (visible with -s)."""
    (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print()
    print(text)
