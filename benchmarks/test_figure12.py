"""Figure 12: search-tree merging across the evaluation grid."""

from conftest import save

from repro.experiments import figure12


def test_figure12(benchmark, results_dir, scale, full_scale):
    """Fig. 12: Shogun ± merging vs FINGERS.

    Paper: merging is most effective on the low-degree graphs (yo, pa)
    whose single trees cannot fill a PE, and the overall design reaches
    +63% geomean.  Asserted shapes: merging never breaks counts (runner
    verifies), helps the sparse datasets, and the merged geomean is at
    least the plain geomean.
    """
    result = benchmark.pedantic(lambda: figure12(scale=scale), rounds=1, iterations=1)
    save(results_dir, "figure12", result.render())
    if not full_scale:
        return
    gm_plain = result.raw["geomean_plain"]
    gm_merged = result.raw["geomean_merged"]
    assert gm_merged >= gm_plain * 0.98
    # Merging helps somewhere on the sparse datasets.
    sparse_gains = [
        row[2] / row[1]
        for row in result.rows
        if row[0].startswith(("yo", "pa")) and row[1] > 0
    ]
    assert max(sparse_gains) > 1.02
