"""Micro-benchmarks of the library's hot paths (pytest-benchmark timing).

These are conventional performance benchmarks (multiple rounds) for the
primitives everything else is built on: sorted-set ops, the reference
miner, and simulator task throughput.
"""

import numpy as np

from repro.graph import erdos_renyi_gnm
from repro.mining import intersect, mine, subtract
from repro.patterns import benchmark_schedule
from repro.sim import SimConfig, simulate


def test_bench_intersect(benchmark):
    rng = np.random.default_rng(0)
    a = np.unique(rng.integers(0, 10000, size=2000))
    b = np.unique(rng.integers(0, 10000, size=2000))
    result = benchmark(lambda: intersect(a, b))
    assert len(result) > 0


def test_bench_subtract(benchmark):
    rng = np.random.default_rng(1)
    a = np.unique(rng.integers(0, 10000, size=2000))
    b = np.unique(rng.integers(0, 10000, size=2000))
    result = benchmark(lambda: subtract(a, b))
    assert len(result) > 0


def test_bench_miner_4clique(benchmark):
    graph = erdos_renyi_gnm(150, 900, seed=3)
    schedule = benchmark_schedule("4cl")
    result = benchmark(lambda: mine(graph, schedule))
    assert result.count > 0


def test_bench_simulator_throughput(benchmark):
    graph = erdos_renyi_gnm(60, 240, seed=5)
    schedule = benchmark_schedule("4cl")
    config = SimConfig(num_pes=2, l1_kb=4, l2_kb=64)
    result = benchmark.pedantic(
        lambda: simulate(graph, schedule, policy="shogun", config=config),
        rounds=3,
        iterations=1,
    )
    assert result.matches > 0
