"""Figure 11: task-tree splitting (load balance) on wi at 20 PEs."""

from conftest import save

from repro.experiments import figure11


def test_figure11(benchmark, results_dir, scale, full_scale):
    """Fig. 11: Shogun ± load balance, 20 PEs, Wiki-Vote.

    Paper: +24% average improvement.  At the reproduction's dataset
    scale most patterns show no tail imbalance (DESIGN.md §1), so the
    asserted shape is weaker: splitting fires on imbalanced patterns,
    visibly helps at least one, and never hurts.
    """
    result = benchmark.pedantic(lambda: figure11(scale=scale), rounds=1, iterations=1)
    save(results_dir, "figure11", result.render())
    if not full_scale:
        return
    gains = []
    partitions = 0
    for row in result.rows:
        plain, balanced = row[1], row[2]
        gains.append(balanced / plain)
        partitions += row[4]
    assert partitions > 0, "splitting never engaged"
    assert max(gains) > 1.05, "splitting never helped"
    assert min(gains) > 0.97, "splitting caused a regression"
