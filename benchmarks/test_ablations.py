"""Ablation benches on the design choices DESIGN.md calls out."""

from conftest import save

from repro.experiments import (
    ablation_conservative_mode,
    ablation_pipeline_throughput,
    ablation_tokens,
)


def test_ablation_conservative_mode(benchmark, results_dir, scale, full_scale):
    """Locality monitor off / adaptive / always-on under a small L1."""
    result = benchmark.pedantic(
        lambda: ablation_conservative_mode(scale=scale), rounds=1, iterations=1
    )
    save(results_dir, "ablation_conservative", result.render())
    if not full_scale:
        return
    by_case = {}
    for case, mode, cycles, _, _ in result.rows:
        by_case.setdefault(case, {})[mode] = cycles
    for case, modes in by_case.items():
        # Adaptive never loses badly to the better fixed mode.
        assert modes["adaptive"] <= 1.10 * min(modes["off"], modes["always"]), case


def test_ablation_tokens(benchmark, results_dir, scale, full_scale):
    """Per-depth token count: parallelism vs memory footprint."""
    result = benchmark.pedantic(lambda: ablation_tokens(scale=scale), rounds=1, iterations=1)
    save(results_dir, "ablation_tokens", result.render())
    if not full_scale:
        return
    first, last = result.rows[0], result.rows[-1]
    assert last[2] > 1.2  # 8 tokens clearly faster than 1
    assert last[3] >= first[3]  # ...at a larger/equal footprint


def test_ablation_pipeline(benchmark, results_dir, scale, full_scale):
    """PE pipeline throughput (the paper's stated future work)."""
    result = benchmark.pedantic(
        lambda: ablation_pipeline_throughput(scale=scale), rounds=1, iterations=1
    )
    save(results_dir, "ablation_pipeline", result.render())
    if not full_scale:
        return
    gains = {}
    for case, throughput, _, speedup, _ in result.rows:
        gains.setdefault(case, {})[throughput] = speedup
    # Tiny-task workloads benefit much more than the compute-dense one.
    assert gains["wi-tt_e"][4.0] > gains["as-4cl"][4.0]
    assert gains["wi-tt_e"][4.0] > 1.15
