"""Figure 14: locality monitoring necessity (enlarged-L1 comparison)."""

from conftest import save

from repro.experiments import figure14


def test_figure14(benchmark, results_dir, scale, full_scale):
    """Fig. 14: Shogun vs FINGERS vs parallel-DFS with enlarged L1s.

    Paper: even with a conservatively enlarged L1, parallel-DFS still
    thrashes on troublesome graph/pattern combinations, whereas Shogun's
    conservative mode avoids the collapse.  Asserted shapes: Shogun is
    at least competitive with FINGERS everywhere and never loses to
    parallel-DFS by more than a whisker; parallel-DFS loses badly
    somewhere.
    """
    result = benchmark.pedantic(lambda: figure14(scale=scale), rounds=1, iterations=1)
    save(results_dir, "figure14", result.render())
    if not full_scale:
        return
    shogun_vs_pdfs = []
    for row in result.rows:
        _, _, fingers, shogun, pdfs, _ = row
        assert shogun >= fingers * 0.90, row
        shogun_vs_pdfs.append(shogun / pdfs if pdfs else float("inf"))
    # parallel-DFS collapses on at least one thrash-prone case.
    assert max(shogun_vs_pdfs) > 1.10
