"""Kernel benchmarks: vectorized hot paths vs the in-repo pure-Python
references, plus an end-to-end cell timing, emitted as ``BENCH_kernels.json``.

Each kernel benchmark times the production (numpy-vectorized) implementation
against the reference implementation this repository keeps as its test
oracle, on workloads drawn from a real dataset cell (``lj`` adjacency
sets).  Correctness is asserted inline — the speedup numbers are only
meaningful if both sides compute the same thing.

Output and regression gate
--------------------------
The final test aggregates every record into ``BENCH_kernels.json`` at the
repository root and compares the end-to-end cell timings against the
committed baseline ``benchmarks/BENCH_kernels_baseline.json``:

* a cell regressing more than 25% versus the baseline **fails** the test;
* any kernel whose measured speedup drops below 1.0× versus its in-repo
  reference loop **fails** the test (vectorized paths must never lose);
* baseline cell times are rescaled by a pure-Python calibration loop
  measured in the same process, so a uniformly slower/faster CI machine
  does not trip (or mask) the gate;
* ``REPRO_UPDATE_BENCH_BASELINE=1`` rewrites the baseline in place;
* ``REPRO_BENCH_GATE=0`` disables the gate (records only).

Timing methodology follows docs/performance.md: best-of-N, no profiler
instrumentation.  Kernel vec/ref pairs use the wall clock (the ratio is
load-immune — both sides run back-to-back); the absolute cell timings
gated against the baseline use ``process_time``, which co-tenant load
cannot touch.
"""

import gc
import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.experiments import eval_config
from repro.graph import load_dataset
from repro.mining import (
    as_sorted_array,
    intersect,
    intersect_multi,
    intersect_multi_reference,
    intersect_reference,
)
from repro.patterns import benchmark_schedule
from repro.sim import Cache, Engine, ReferenceCache, simulate
from repro.sim import backend as kernel_backend
from repro.sim.memory import PELatencyWindow

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_kernels.json"
BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_kernels_baseline.json"
REGRESSION_LIMIT = 1.25
#: Allowance for the frozen cross-session anchor (``PR9_GATE_CELL``).
#: Wider than ``REGRESSION_LIMIT``: the committed baseline is re-recorded
#: on the measuring machine so only short-term drift separates the two
#: runs, while the anchor crosses sessions on shared single-vCPU runners
#: whose co-tenant regime can shift the memory-heavy cells' CPI further
#: than the L1-resident calibration spin registers.  It still catches a
#: gross control-plane regression (the failure mode it exists for)
#: without flapping under host contention.
ANCHOR_LIMIT = 1.4

#: The PR 9 perf-smoke record for the Shogun gate cell (cext, scale
#: 0.3, this container), frozen as the compiled-control-plane
#: regression anchor: the SoA scheduler rework runs on exactly this
#: cell's path, so its CPU time must stay within ``REGRESSION_LIMIT``
#: of the record after the usual calibration rescale.  CPU time, not
#: the wall-clock kernel pairs — absolute cross-session comparisons
#: need a clock that is blind to co-tenant load (see ``_best_of``).  A
#: constant, not a baseline-file field, so a baseline regen cannot
#: silently move the anchor.
PR9_GATE_CELL = {
    "name": "lj:4cl:shogun",
    "scale": 0.3,
    "cpu_s": 0.17817530199999965,
    "calibration_cpu_s": 0.018286314999997444,
    "backend": "cext",
}

#: Shared across the tests in this module; ``test_zz_emit_and_gate`` (which
#: sorts last in file order) writes the file and applies the gate.
RESULTS = {"kernels": {}, "cells": {}}


def _best_of(fn, repeats=7, clock=time.perf_counter):
    """Best-of-N timing: robust to scheduler noise on shared runners.

    Garbage collection is paused across the timed region (``timeit``'s
    methodology): an incidental gen-2 collection landing inside one
    repeat is pure noise, and on the allocation-heavy simulator cells it
    is large enough to flip a marginal kernel across the 1.0× gate.

    Kernel vec/ref pairs keep the default wall clock — both sides run
    back-to-back in the same machine state, so load cancels out of the
    ratio.  The *absolute* cell timings gated against a committed
    baseline pass ``time.process_time`` instead: CPU time is blind to
    co-tenant load, which routinely swings wall clock by tens of
    percent on shared runners (frequency/IPC drift is what the
    calibration rescale is for).

    One untimed warm-up call runs before the clock starts: first-call
    costs — a compiled backend's shared-library load, a JIT compile, a
    cold dataset memo — are startup artifacts, not kernel cost, and
    best-of-N only dilutes them instead of excluding them when every
    repeat pays the same lazy bill.
    """
    best = float("inf")
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        fn()
        for _ in range(repeats):
            start = clock()
            fn()
            best = min(best, clock() - start)
            gc.collect()
    finally:
        if was_enabled:
            gc.enable()
    return best


def _record_kernel(name, vectorized_s, reference_s, detail):
    RESULTS["kernels"][name] = {
        "vectorized_s": vectorized_s,
        "reference_s": reference_s,
        "speedup": reference_s / vectorized_s if vectorized_s > 0 else float("inf"),
        "detail": detail,
    }


def _calibration_cpu():
    """A fixed pure-Python workload; its CPU time tracks interpreter speed."""
    def spin():
        total = 0
        for i in range(400_000):
            total += i * i
        return total

    return _best_of(spin, repeats=3, clock=time.process_time)


@pytest.fixture(scope="module")
def adjacency():
    """Representative sorted neighbor sets: the ``lj`` stand-in's densest
    vertices at full scale, exactly the operands a 4-clique cell feeds the
    set-op FU.  Kernel operands deliberately ignore ``REPRO_SCALE`` — a
    scaled-down graph shrinks the sets until numpy call overhead, not the
    kernel, dominates; only the end-to-end cell timing honors the scale."""
    graph = load_dataset("lj", scale=1.0)
    order = np.argsort(graph.degrees)[::-1]
    sets = [graph.neighbors(int(v)) for v in order[:128]]
    return [s for s in sets if len(s) >= 2]


class TestKernelSetOps:
    def test_intersect_vs_reference(self, adjacency):
        pairs = [
            (adjacency[i], adjacency[(i * 7 + 3) % len(adjacency)])
            for i in range(len(adjacency))
        ]
        for a, b in pairs[:16]:
            assert list(intersect(a, b)) == intersect_reference(list(a), list(b))
        list_pairs = [(list(a), list(b)) for a, b in pairs]
        vec = _best_of(lambda: [intersect(a, b) for a, b in pairs])
        ref = _best_of(lambda: [intersect_reference(a, b) for a, b in list_pairs])
        _record_kernel(
            "setops_intersect", vec, ref,
            f"{len(pairs)} adjacency-pair intersections, lj top-degree sets",
        )

    def test_intersect_multi_vs_reference(self, adjacency):
        triples = [
            [adjacency[i], adjacency[(i * 5 + 1) % len(adjacency)],
             adjacency[(i * 11 + 2) % len(adjacency)]]
            for i in range(len(adjacency))
        ]
        for arrays in triples[:8]:
            assert list(intersect_multi(arrays)) == intersect_multi_reference(
                [list(a) for a in arrays]
            )
        list_triples = [[list(a) for a in arrays] for arrays in triples]
        vec = _best_of(lambda: [intersect_multi(t) for t in triples])
        ref = _best_of(lambda: [intersect_multi_reference(t) for t in list_triples])
        _record_kernel(
            "setops_intersect_multi", vec, ref,
            f"{len(triples)} three-way intersections, lj top-degree sets",
        )

    def test_as_sorted_array_fast_path(self, adjacency):
        arrays = [np.asarray(a, dtype=np.int64) for a in adjacency]
        for arr in arrays[:8]:
            assert list(as_sorted_array(arr)) == list(as_sorted_array(list(arr)))
        vec = _best_of(lambda: [as_sorted_array(a) for a in arrays])
        # The pre-fast-path behaviour for ndarray input: materialize a list,
        # then sort-unique it — that conversion is part of the "before".
        ref = _best_of(lambda: [as_sorted_array(list(a)) for a in arrays])
        _record_kernel(
            "as_sorted_array_ndarray_fast_path", vec, ref,
            f"{len(arrays)} already-sorted neighbor arrays vs list round-trip",
        )


class TestKernelCache:
    def test_flat_cache_vs_reference_cache(self):
        """The flattened numpy cache against the retained dict model, on
        wide hit-dominated sweeps — the batched API's design point (the
        simulator's L1 hit rates sit near 1.0; its tiny per-task batches
        go through the sequential inlined probe instead)."""
        rng = np.random.RandomState(7)
        size_bytes, assoc, line = 32 * 1024, 4, 64
        # 480 distinct lines cycling through a 512-line cache: ~97% hits
        # with a steady trickle of capacity evictions.
        batches = [
            [int(a) for a in rng.choice(480, size=256, replace=False)]
            for _ in range(64)
        ]

        def run_flat():
            cache = Cache(size_bytes, assoc, line)
            for batch in batches:
                mask = cache.access_lines(batch)
                cache.insert_lines(
                    [addr for addr, hit in zip(batch, mask) if not hit]
                )
            return cache

        def run_reference():
            # Same function: probe the whole batch, then fill the misses
            # (interleaving fills would change later probes' outcomes).
            cache = ReferenceCache(size_bytes, assoc, line)
            for batch in batches:
                hits = [cache.lookup(addr) for addr in batch]
                for addr, hit in zip(batch, hits):
                    if not hit:
                        cache.insert(addr)
            return cache

        flat, ref = run_flat(), run_reference()
        assert (flat.hits, flat.misses, flat.evictions) == (
            ref.hits, ref.misses, ref.evictions,
        )
        assert flat.hit_rate > 0.9  # the sweep really is hit-dominated
        vec = _best_of(run_flat)
        refw = _best_of(run_reference)
        _record_kernel(
            "cache_batched_access_lines", vec, refw,
            f"{len(batches)} sweeps of 256 lines, 32KB/4-way, "
            f"hit rate {flat.hit_rate:.3f}",
        )

    def test_span_access_vs_reference_cache(self):
        """The span kernels (`access_span`/`insert_span`) against the dict
        model's per-line loops, on contiguous hit-dominated sweeps — the
        shape every neighbor/intermediate/output set has in the simulator."""
        size_bytes, assoc, line = 32 * 1024, 4, 64
        # Four 120-line spans cycling through a 512-line cache: the first
        # pass fills, every later pass is a pure all-hit refresh.
        spans = [(s, s + 119) for s in (0, 120, 240, 360)] * 16

        def run_flat():
            cache = Cache(size_bytes, assoc, line)
            for first, last in spans:
                mask = cache.access_span(first, last)
                if not mask.all():
                    cache.insert_span(first, last)
            return cache

        def run_reference():
            cache = ReferenceCache(size_bytes, assoc, line)
            for first, last in spans:
                hits = [cache.lookup(a) for a in range(first, last + 1)]
                if not all(hits):
                    for a in range(first, last + 1):
                        cache.insert(a)
            return cache

        flat, ref = run_flat(), run_reference()
        assert (flat.hits, flat.misses, flat.evictions) == (
            ref.hits, ref.misses, ref.evictions,
        )
        assert flat.hit_rate > 0.9
        vec = _best_of(run_flat)
        refw = _best_of(run_reference)
        _record_kernel(
            "cache_span_access", vec, refw,
            f"{len(spans)} contiguous 120-line span sweeps, 32KB/4-way, "
            f"hit rate {flat.hit_rate:.3f}",
        )


class TestKernelMemoryFetch:
    def test_fetch_graph_span_vs_per_line_walk(self):
        """`MemorySystem.fetch_graph_spans` against the per-line sequence
        walk it replaced (which also had to materialize the line lists),
        on warm wide neighbor spans — the design-point operand."""
        from repro.sim import SimConfig
        from repro.sim.memory import MemorySystem

        config = SimConfig(num_pes=1)
        rng = np.random.RandomState(11)
        spans = []
        for _ in range(64):
            first = int(rng.randint(0, 2000))
            spans.append((first, first + int(rng.randint(24, 160))))

        def make_warm():
            mem = MemorySystem(config, num_pes=1)
            for first, last in spans:
                mem.l2.insert_span(first, last)
            return mem

        span_mem, walk_mem = make_warm(), make_warm()
        t_span = span_mem.fetch_graph_spans(0, spans, 0.0)
        lines = [a for f, l in spans for a in range(f, l + 1)]
        t_walk = walk_mem.fetch_graph(0, lines, 0.0)
        assert t_span == t_walk
        assert (span_mem.l2.hits, span_mem.l2.misses) == (
            walk_mem.l2.hits, walk_mem.l2.misses,
        )

        # The "before" includes materializing the line lists from the
        # spans, exactly as the old call sites did.  `now` advances past
        # every bank booking between repeats, as it does in the simulator
        # (tasks issue at the engine clock, which outruns the bank
        # queues' per-line service tail).
        vec_now, ref_now = [0.0], [0.0]

        def vec_once():
            vec_now[0] += 1e6
            return span_mem.fetch_graph_spans(0, spans, vec_now[0])

        def ref_once():
            ref_now[0] += 1e6
            return walk_mem.fetch_graph(
                0, [a for f, l in spans for a in range(f, l + 1)], ref_now[0]
            )

        vec = _best_of(vec_once)
        ref = _best_of(ref_once)
        _record_kernel(
            "fetch_graph_span", vec, ref,
            f"{len(spans)} warm neighbor spans of 8-64 lines, span entry "
            "vs materialized per-line walk",
        )


class TestKernelBackendCompiled:
    """Compiled kernel backend vs the pure reference kernel set.

    Operands mirror the simulator's real call shapes: neighbor sets for
    the set ops, warm 16-line spans for the residency probe, and
    mid-size latency folds for the EMA.  The set-op corpus mixes the
    wi stand-in's sets (small: the stand-in truncates hub degrees) with
    hub-scale sorted sets at the degree range of the paper's real
    datasets (wiki-Vote hubs reach ~1000 neighbors) — set-op cost grows
    with operand size, so hub expansions dominate real mining wall time
    and a time-weighted mix is what the speedup should measure.
    Correctness is asserted inline (outputs and accounted state must
    match pure exactly); the gate in ``test_zz_emit_and_gate`` requires
    at least three ``backend_*`` kernels at >= 2x when a compiled
    backend is present.
    """

    @pytest.fixture(scope="class")
    def kernel_sets(self):
        availability = kernel_backend.available_backends()
        name = next(
            (n for n in ("cext", "numba") if availability[n][0]), None
        )
        if name is None:
            pytest.skip("no compiled backend available (cffi/cc and numba missing)")
        return (
            kernel_backend._get_instance(name),
            kernel_backend._get_instance("pure"),
        )

    @pytest.fixture(scope="class")
    def neighbor_sets(self):
        """wi stand-in top-degree sets plus hub-scale synthetic sets,
        sorted by size.

        Pairing walks this sorted list, so operands meet like-sized
        partners — the shape of same-depth expansions, and the merge
        regime where set-op wall time actually accumulates (cost grows
        with operand size, so hub-hub merges dominate real runs).
        """
        graph = load_dataset("wi", scale=1.0)
        order = np.argsort(graph.degrees)[::-1]
        sets = [graph.neighbors(int(v)) for v in order[:64]]
        sets = [s for s in sets if len(s) >= 4]
        rng = np.random.default_rng(20230613)
        for size in (256, 384, 512, 768, 1024, 1400, 2048):
            for _ in range(10):
                sets.append(as_sorted_array(
                    np.unique(rng.integers(0, size * 4, size * 2))
                ))
        return sorted(sets, key=len)

    def test_backend_intersect(self, kernel_sets, neighbor_sets):
        compiled, pure = kernel_sets
        last = len(neighbor_sets) - 1
        pairs = [
            (neighbor_sets[i], neighbor_sets[min(i + 1, last)])
            for i in range(last)
        ]
        for a, b in pairs[:16]:
            assert list(compiled.intersect(a, b)) == list(pure.intersect(a, b))
        vec = _best_of(lambda: [compiled.intersect(a, b) for a, b in pairs])
        ref = _best_of(lambda: [pure.intersect(a, b) for a, b in pairs])
        _record_kernel(
            "backend_intersect", vec, ref,
            f"{len(pairs)} like-sized neighbor-set intersections "
            f"(wi + hub-scale), {compiled.name} backend vs pure/numpy",
        )

    def test_backend_subtract(self, kernel_sets, neighbor_sets):
        compiled, pure = kernel_sets
        last = len(neighbor_sets) - 1
        pairs = [
            (neighbor_sets[i], neighbor_sets[min(i + 2, last)])
            for i in range(last)
        ]
        for a, b in pairs[:16]:
            assert list(compiled.subtract(a, b)) == list(pure.subtract(a, b))
        vec = _best_of(lambda: [compiled.subtract(a, b) for a, b in pairs])
        ref = _best_of(lambda: [pure.subtract(a, b) for a, b in pairs])
        _record_kernel(
            "backend_subtract", vec, ref,
            f"{len(pairs)} like-sized neighbor-set subtractions "
            f"(wi + hub-scale), {compiled.name} backend vs pure/numpy",
        )

    def test_backend_intersect_multi(self, kernel_sets, neighbor_sets):
        """Chained intersections through the live setops dispatcher."""
        compiled, pure = kernel_sets
        last = len(neighbor_sets) - 1
        triples = [
            [neighbor_sets[i], neighbor_sets[min(i + 1, last)],
             neighbor_sets[min(i + 2, last)]]
            for i in range(last)
        ]
        before = kernel_backend.active()
        try:
            kernel_backend._install(compiled)
            for arrays in triples[:8]:
                assert list(intersect_multi(arrays)) == intersect_multi_reference(
                    [list(a) for a in arrays]
                )
            vec = _best_of(lambda: [intersect_multi(t) for t in triples])
            kernel_backend._install(pure)
            ref = _best_of(lambda: [intersect_multi(t) for t in triples])
        finally:
            kernel_backend._install(before)
        _record_kernel(
            "backend_intersect_multi", vec, ref,
            f"{len(triples)} like-sized three-way intersections "
            f"(wi + hub-scale) through the setops dispatcher, "
            f"{compiled.name} vs pure",
        )

    def test_backend_span_probe(self, kernel_sets):
        compiled, pure = kernel_sets
        size_bytes, assoc, line = 32 * 1024, 4, 64
        # Warm 16-line spans: the simulator's typical residency probe
        # (below the pure backend's numpy tier, in its listcomp tier).
        spans = [(s, s + 15) for s in range(0, 496, 16)] * 8

        def make_warm():
            cache = Cache(size_bytes, assoc, line)
            for first, last in spans:
                cache.insert_span(first, last)
            return cache

        warm_c, warm_p = make_warm(), make_warm()
        assert compiled.span_resident_stamp(warm_c, 0, 15)
        assert pure.span_resident_stamp(warm_p, 0, 15)
        np.testing.assert_array_equal(warm_c._stamps, warm_p._stamps)
        assert warm_c._tick == warm_p._tick
        vec = _best_of(
            lambda: [compiled.span_resident_stamp(warm_c, f, l) for f, l in spans]
        )
        ref = _best_of(
            lambda: [pure.span_resident_stamp(warm_p, f, l) for f, l in spans]
        )
        _record_kernel(
            "backend_span_probe", vec, ref,
            f"{len(spans)} warm 16-line residency probes, 32KB/4-way, "
            f"{compiled.name} vs pure",
        )

    def test_backend_ema_fold(self, kernel_sets):
        compiled, pure = kernel_sets
        scratch = np.zeros(2, dtype=np.float64)
        check_c, check_p = PELatencyWindow(), PELatencyWindow()
        compiled.ema_fold(check_c, 21.5, 48, scratch)
        pure.ema_fold(check_p, 21.5, 48)
        assert (check_c.value, check_c.total_latency, check_c.samples) == (
            check_p.value, check_p.total_latency, check_p.samples,
        )

        def run(kernels, scratch_arg):
            window = PELatencyWindow()
            for _ in range(200):
                kernels.ema_fold(window, 21.5, 48, scratch_arg)
            return window

        vec = _best_of(lambda: run(compiled, scratch))
        ref = _best_of(lambda: run(pure, None))
        _record_kernel(
            "backend_ema_fold", vec, ref,
            f"200 48-sample EMA latency folds, {compiled.name} vs pure",
        )

    def test_engine_macro_drain(self, kernel_sets):
        """Macro-step compiled drain vs per-event booking, end to end.

        A policy-light 4-clique run (lj, plain BFS — scheduler time is
        not drain cost) under the compiled backend, once with the
        macro-step engine core draining whole task bookings in C and
        once pinned to the per-event reference loop.  Metrics are
        asserted identical before timing — the macro core's acceptance
        bar is bit-identity, the speedup is only meaningful against an
        equivalent run.  Like the set-op operands above, this kernel
        deliberately ignores ``REPRO_SCALE``: the drain's advantage
        grows with span length (one C call replaces a whole multi-line
        fetch/issue/writeback pipeline), and the reduced-scale stand-in
        truncates spans below the regime the core targets.  Recorded
        only when a compiled backend exists (this class skips
        otherwise): the interpreted fast path is a parity oracle, not a
        speedup, so a pure-leg record would just trip the 1.0x floor.
        """
        compiled, _ = kernel_sets
        graph = load_dataset("lj", scale=1.0)
        schedule = benchmark_schedule("4cl")
        base = eval_config().replace(backend=compiled.name)
        macro_config = base.replace(macro_step=True)
        per_event_config = base.replace(macro_step=False)

        def run_macro():
            return simulate(graph, schedule, policy="bfs",
                            config=macro_config)

        def run_per_event():
            return simulate(graph, schedule, policy="bfs",
                            config=per_event_config)

        before = kernel_backend.active()
        try:
            vec = _best_of(run_macro, repeats=5, clock=time.process_time)
            ref = _best_of(run_per_event, repeats=5, clock=time.process_time)
            assert run_macro().to_dict() == run_per_event().to_dict()
        finally:
            kernel_backend._install(before)
        _record_kernel(
            "engine_macro_drain", vec, ref,
            f"lj 4-clique BFS end-to-end at full scale, {compiled.name} "
            f"macro-step drain vs per-event booking "
            f"(bit-identical metrics)",
        )


class TestKernelTaskTree:
    """Task-tree scheduler kernels: compiled vs the interpreted mirrors.

    The control-plane kernels (`tree_select`/`tree_fill`/`tree_complete`)
    run over a real ``TaskTreeState`` built from the evaluation config.
    The compiled side binds through the backend's struct binder (or the
    closure fallback, exactly as ``TaskTree._bind_kernels`` does); the
    reference side is the interpreted ``_loops`` body under the pure
    kernel set.  Both sides start from one snapshot and the full array
    state is asserted equal afterwards — a speedup over a divergent
    computation would be meaningless.  ``macro_run_of_tasks`` measures
    the same control plane end to end: a whole shogun cell with the
    scheduler in compiled kernels (batch dispatch included) against the
    interpreted object path, metrics asserted identical.
    """

    @pytest.fixture(scope="class")
    def kernel_sets(self):
        availability = kernel_backend.available_backends()
        name = next(
            (n for n in ("cext", "numba") if availability[n][0]), None
        )
        if name is None:
            pytest.skip("no compiled backend available (cffi/cc and numba missing)")
        return (
            kernel_backend._get_instance(name),
            kernel_backend._get_instance("pure"),
        )

    @staticmethod
    def _make_state(max_depth=5):
        from repro.core.task_tree import TaskTreeState

        return TaskTreeState(eval_config(), max_depth)

    _ARRAYS = (
        "b_in_use", "b_tree", "b_quiesced", "b_active", "b_executing",
        "ring", "ring_head", "ring_len",
        "e_vertex", "e_child_index", "e_token",
        "tok_free", "tok_n", "ctl",
    )

    @classmethod
    def _snapshot(cls, state):
        return {name: getattr(state, name).copy() for name in cls._ARRAYS}

    @classmethod
    def _restore(cls, state, snap):
        # In place: the cext struct binder pinned these buffers.
        for name, saved in snap.items():
            getattr(state, name)[:] = saved

    @classmethod
    def _assert_state_equal(cls, a, b):
        for name in cls._ARRAYS:
            np.testing.assert_array_equal(
                getattr(a, name), getattr(b, name), err_msg=name
            )

    @staticmethod
    def _bind(kernels, state):
        """Bind tree ops the way ``TaskTree._bind_kernels`` does."""
        binder = getattr(kernels, "tree_bind", None)
        if binder is not None:
            return binder(state)
        s = state
        shared = (
            s.b_depth, s.b_cap, s.b_in_use, s.b_tree, s.b_quiesced,
            s.b_active, s.b_executing, s.ring, s.ring_head, s.ring_len,
            s.e_vertex, s.e_child_index, s.e_token,
            s.tok_free, s.tok_n, s.d_start, s.d_end, s.ctl,
            s.nb, s.cap, s.max_depth, s.tokens_per_depth,
        )
        select, fill = kernels.tree_select, kernels.tree_fill

        class _Ops:
            pass

        ops = _Ops()
        ops.select = lambda conservative, k, out: select(
            *shared, conservative, k, out
        )
        ops.fill = lambda b, tree_id, quiesced, vertices, first, count: fill(
            *shared, b, tree_id, quiesced, vertices, first, count
        )
        return ops

    @classmethod
    def _fill_all(cls, state, ops, vertices):
        """Admit a full candidate span into every bunch (depths >= 1)."""
        for b in range(int(state.d_start[1]), state.nb):
            ops.fill(b, 1, 0, vertices, 0, int(state.b_cap[b]))

    def test_tree_select(self, kernel_sets):
        """Batch selection over a fully loaded tree: sibling preference,
        round-robin, token acquisition, and — once each non-leaf depth's
        pool drains — the fruitless token-validity stall scans."""
        compiled, pure = kernel_sets
        vertices = np.arange(64, dtype=np.int64)
        out = np.zeros(256, dtype=np.int64)

        def drain(state, ops):
            while True:
                n = ops.select(0, 8, out)
                if n == 0:
                    return

        sides = {}
        for name, kernels in (("compiled", compiled), ("pure", pure)):
            state = self._make_state()
            ops = self._bind(kernels, state)
            self._fill_all(state, ops, vertices)
            snap = self._snapshot(state)
            drain(state, ops)
            sides[name] = state

            def run(state=state, ops=ops, snap=snap):
                for _ in range(40):
                    self._restore(state, snap)
                    drain(state, ops)

            sides[name + "_s"] = _best_of(run)
        self._assert_state_equal(sides["compiled"], sides["pure"])
        _record_kernel(
            "tree_select", sides["compiled_s"], sides["pure_s"],
            f"40 full-tree batch-select drains ({compiled.name} vs "
            "interpreted loop), tokens exhausting per non-leaf depth",
        )

    def test_tree_fill(self, kernel_sets):
        """Batch child admission: every bunch filled from one contiguous
        candidate span per restore."""
        compiled, pure = kernel_sets
        vertices = np.arange(64, dtype=np.int64)

        sides = {}
        for name, kernels in (("compiled", compiled), ("pure", pure)):
            state = self._make_state()
            ops = self._bind(kernels, state)
            snap = self._snapshot(state)
            self._fill_all(state, ops, vertices)
            sides[name] = state

            def run(state=state, ops=ops, snap=snap):
                for _ in range(100):
                    self._restore(state, snap)
                    self._fill_all(state, ops, vertices)

            sides[name + "_s"] = _best_of(run)
        self._assert_state_equal(sides["compiled"], sides["pure"])
        _record_kernel(
            "tree_fill", sides["compiled_s"], sides["pure_s"],
            f"100 whole-tree bunch admissions ({compiled.name} vs "
            "interpreted loop), 8-entry spans",
        )

    def test_macro_run_of_tasks(self, kernel_sets):
        """The compiled control plane end to end: macro-step booking plus
        scheduler kernels and batch dispatch vs the same run with the
        scheduler pinned to the interpreted object path.  Bit-identical
        metrics asserted before timing.  Full scale, like
        ``engine_macro_drain``: the run-of-tasks win is per decision, and
        the scaled-down stand-ins shrink decision counts until process
        noise dominates."""
        compiled, _ = kernel_sets
        graph = load_dataset("lj", scale=1.0)
        schedule = benchmark_schedule("4cl")
        base = eval_config().replace(backend=compiled.name, macro_step=True)
        kernel_config = base.replace(tree_kernels=True)
        object_config = base.replace(tree_kernels=False)

        def run_kernels():
            return simulate(graph, schedule, policy="shogun",
                            config=kernel_config)

        def run_object():
            return simulate(graph, schedule, policy="shogun",
                            config=object_config)

        before = kernel_backend.active()
        try:
            assert run_kernels().to_dict() == run_object().to_dict()
            vec = _best_of(run_kernels, repeats=5, clock=time.process_time)
            ref = _best_of(run_object, repeats=5, clock=time.process_time)
        finally:
            kernel_backend._install(before)
        _record_kernel(
            "macro_run_of_tasks", vec, ref,
            f"lj 4-clique shogun end-to-end at full scale, {compiled.name} "
            "scheduler kernels + batch dispatch vs interpreted object path "
            "(bit-identical metrics)",
        )


def _noop():
    pass


class TestKernelEngine:
    @staticmethod
    def _storm(engine, fanout=1000):
        def emit(depth):
            if depth < 3:
                for _ in range(2):
                    engine.after(0, lambda: emit(depth + 1))
                engine.after(1, lambda: emit(3))

        for i in range(fanout):
            engine.at(i % 7, lambda: emit(0))

    @staticmethod
    def _prefill(engine, groups=1500, ties=64):
        at = engine.at
        for t in range(groups):
            ft = float(t)
            for _ in range(ties):
                at(ft, _noop)

    def test_coalesced_vs_legacy_drain_loop(self):
        """The same-cycle coalescing drain loop vs the per-event legacy
        loop (the ``max_events`` path).

        Equivalence is asserted on a callback-heavy storm (events
        scheduling same-cycle events mid-drain), but the *timing* uses a
        prefilled tie-heavy queue of no-op callbacks: in the storm the
        closures and ``after`` calls dominate the wall, diluting the
        drain-loop difference below measurement noise.
        """
        def run_storm(max_events):
            engine = Engine()
            self._storm(engine)
            executed = engine.run(max_events=max_events)
            return executed, engine.now

        assert run_storm(None) == run_storm(10_000_000)

        proto = Engine()
        self._prefill(proto)

        def run_drain(max_events):
            engine = Engine()
            # Copy the prefilled time heap and buckets so the (identical)
            # fill cost stays out of the timed drain.
            engine._times = proto._times.copy()
            engine._buckets = {t: list(b) for t, b in proto._buckets.items()}
            engine._pending = proto._pending
            executed = engine.run(max_events=max_events)
            return executed, engine.now

        assert run_drain(None) == run_drain(10_000_000)
        vec = _best_of(lambda: run_drain(None))
        ref = _best_of(lambda: run_drain(10_000_000))
        _record_kernel(
            "engine_coalesced_drain", vec, ref,
            "96k-event tie-heavy no-op drain (1500 cycles x 64 ties), "
            "coalesced vs per-event loop, queue prefilled outside the clock",
        )


class TestKernelGraphLoad:
    """Dataset staging kernels: text parse, binary store, arena attach.

    All three compare against the path they replaced — the line-by-line
    text parser and the synthetic generator rebuild — on the ``lj``
    stand-in at full scale (the largest graph the orchestrator stages).
    """

    def test_edge_list_text_parse(self, tmp_path_factory):
        from repro.graph import load_edge_list_reference, save_edge_list
        from repro.graph.builders import from_edge_array
        from repro.graph.io import _parse_edge_bytes

        graph = load_dataset("lj", scale=1.0)
        path = tmp_path_factory.mktemp("bench-io") / "lj.txt"
        save_edge_list(graph, path)
        data = path.read_bytes()

        def fast():
            pairs = _parse_edge_bytes(data)
            assert pairs is not None  # the fast path must cover this file
            return from_edge_array(pairs, name="lj")

        parsed = fast()
        reference = load_edge_list_reference(path, name="lj")
        assert np.array_equal(parsed.indptr, reference.indptr)
        assert np.array_equal(parsed.indices, reference.indices)
        vec = _best_of(fast, repeats=3)
        ref = _best_of(lambda: load_edge_list_reference(path, name="lj"), repeats=3)
        _record_kernel(
            "graph_load_text", vec, ref,
            f"lj edge list ({graph.num_edges} edges), vectorized tokenizer "
            "vs line-by-line reference parser",
        )

    def test_binary_store_vs_rebuild(self, tmp_path_factory):
        from repro.graph.arena import GraphStore
        from repro.graph.datasets import get_spec

        spec = get_spec("lj")
        graph = load_dataset("lj", scale=1.0)
        store = GraphStore(tmp_path_factory.mktemp("bench-store"))
        store.put("lj", 1.0, graph)

        loaded = store.get("lj", 1.0)
        assert np.array_equal(loaded.indptr, graph.indptr)
        assert np.array_equal(loaded.indices, graph.indices)
        vec = _best_of(lambda: store.get("lj", 1.0), repeats=3)
        ref = _best_of(lambda: spec.builder(1.0), repeats=3)
        _record_kernel(
            "graph_load_binary", vec, ref,
            "lj@1.0 from the content-addressed npz store vs generator rebuild",
        )

    def test_arena_attach_vs_rebuild(self):
        from repro.graph import arena as arena_module
        from repro.graph import datasets as datasets_module
        from repro.graph.arena import GraphArena
        from repro.graph.datasets import get_spec

        if not GraphArena.available():
            pytest.skip("no usable shared memory here")
        spec = get_spec("lj")
        graph = load_dataset("lj", scale=1.0)
        with GraphArena() as arena:
            handle = arena.stage("lj", 1.0, graph)

            def attach_once():
                # Attach from scratch each repeat: drop this process's
                # segment memo, and keep the dataset memo untouched.
                arena_module._reset_local()
                saved = datasets_module._CACHE.pop(("lj", 1.0), None)
                attached = arena_module.attach(handle)
                if saved is not None:
                    datasets_module._CACHE[("lj", 1.0)] = saved
                return attached

            attached = attach_once()
            assert np.array_equal(attached.indptr, graph.indptr)
            assert np.array_equal(attached.indices, graph.indices)
            vec = _best_of(attach_once, repeats=5)
            ref = _best_of(lambda: spec.builder(1.0), repeats=3)
            arena_module._reset_local()
        _record_kernel(
            "arena_attach", vec, ref,
            "lj@1.0 zero-copy shared-memory attach vs generator rebuild",
        )


class TestKernelService:
    def test_service_roundtrip_vs_direct(self, scale, tmp_path_factory):
        """Submit→result latency of a *cached* cell over the in-process
        transport vs executing the same cell directly.  This is the
        daemon's read-through fast path: the whole protocol stack
        (codec round-trip, dispatch, cache lookup, event delivery) must
        stay far cheaper than one simulation."""
        import asyncio

        from repro.experiments.runner import simulate_cell
        from repro.orchestrator import CellSpec, ResultCache, cell_key
        from repro.service import AsyncServiceClient, serve_inproc

        config = eval_config()

        def direct():
            return simulate_cell(
                "wi", "tc", "shogun", config=config, scale=scale, verify=True
            )

        cache = ResultCache(tmp_path_factory.mktemp("bench-service"))
        metrics = direct()
        spec = CellSpec("wi", "tc", "shogun", scale, config, True)
        cache.put(spec, cell_key(spec), metrics, 0.0)
        cell = {"dataset": "wi", "pattern": "tc", "policy": "shogun",
                "scale": scale}

        async def timed_roundtrips():
            async with serve_inproc(jobs=1, cache=cache) as (service, listener):
                async with AsyncServiceClient.inproc(listener) as client:
                    warm = await client.submit_metrics(dict(cell))
                    assert warm["source"] == "cache"
                    assert warm["metrics"]["matches"] == metrics.matches
                    best = float("inf")
                    for _ in range(30):
                        start = time.perf_counter()
                        final = await client.submit_metrics(dict(cell))
                        best = min(best, time.perf_counter() - start)
                        assert final["source"] == "cache"
                    assert service.executor.executions == 0
            return best

        vec = asyncio.run(timed_roundtrips())
        ref = _best_of(direct, repeats=3)
        _record_kernel(
            "service_roundtrip", vec, ref,
            "wi:tc:shogun cached submit over the in-proc transport "
            "(protocol + dispatch + read-through) vs direct execution",
        )


class TestEndToEndCell:
    @staticmethod
    def _time_cell(name, scale, pattern, policy):
        graph = load_dataset("lj", scale=scale)
        schedule = benchmark_schedule(pattern)
        config = eval_config()

        def run():
            return simulate(graph, schedule, policy=policy, config=config)

        metrics = run()
        assert metrics.matches > 0
        cpu = _best_of(run, repeats=5, clock=time.process_time)
        RESULTS["cells"][name] = {
            "scale": scale,
            "cpu_s": cpu,
            "cycles": metrics.cycles,
            "matches": metrics.matches,
            "tasks_executed": metrics.tasks_executed,
        }

    def test_cell_lj_4cl_shogun(self, scale):
        """Policy-heavy gate cell: shogun's monitor + splitting in the loop."""
        self._time_cell("lj:4cl:shogun", scale, "4cl", "shogun")

    def test_cell_lj_tc_bfs(self, scale):
        """Policy-light gate cell: plain BFS, memory system dominates."""
        self._time_cell("lj:tc:bfs", scale, "tc", "bfs")


def test_zz_emit_and_gate(scale):
    """Aggregate, write ``BENCH_kernels.json``, and gate cell walls against
    the committed baseline (name sorts last so every record exists)."""
    assert RESULTS["kernels"] and RESULTS["cells"], "kernel tests did not run"
    calibration = _calibration_cpu()
    payload = {
        "scale": scale,
        "backend": kernel_backend.active().name,
        "calibration_cpu_s": calibration,
        "kernels": RESULTS["kernels"],
        "cells": RESULTS["cells"],
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    if os.environ.get("REPRO_UPDATE_BENCH_BASELINE") == "1":
        BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        pytest.skip(f"baseline rewritten at {BASELINE_PATH}")
    if os.environ.get("REPRO_BENCH_GATE") == "0":
        pytest.skip("regression gate disabled via REPRO_BENCH_GATE=0")
    if not BASELINE_PATH.exists():
        pytest.skip("no committed baseline to gate against")

    baseline = json.loads(BASELINE_PATH.read_text())
    if baseline.get("scale") != scale:
        pytest.skip(
            f"baseline recorded at scale {baseline.get('scale')}, "
            f"current run at {scale}"
        )
    # Rescale baseline CPU times by relative machine speed before
    # comparing (pre-CPU-clock baselines lack the key: skip the cell
    # gate, the kernel floors below still apply).
    baseline_calibration = baseline.get("calibration_cpu_s")
    failures = []
    # Cell timings are only comparable under the same kernel backend: a
    # baseline recorded under cext would make every pure-leg run look
    # like a regression.  Kernel speedup floors below still apply.
    if (
        baseline_calibration
        and baseline.get("backend", payload["backend"]) == payload["backend"]
    ):
        # The rescale only ever *widens* the allowance (slower machine →
        # larger budget).  A ratio below 1.0 is not trusted to shrink
        # it: the L1-resident spin loop can speed up under the very
        # co-tenant load that inflates the memory-heavy cells' CPI, and
        # letting that tighten the gate manufactures false failures.
        speed_ratio = max(calibration / baseline_calibration, 1.0)
        for cell, current in RESULTS["cells"].items():
            before = baseline["cells"].get(cell)
            if before is None or "cpu_s" not in before:
                continue
            allowed = before["cpu_s"] * speed_ratio * REGRESSION_LIMIT
            if current["cpu_s"] > allowed:
                failures.append(
                    f"{cell}: {current['cpu_s']:.3f}s > allowed {allowed:.3f}s "
                    f"(baseline {before['cpu_s']:.3f}s × speed {speed_ratio:.2f} "
                    f"× {REGRESSION_LIMIT})"
                )
    # Every kernel must beat its reference outright: a vectorized path
    # slower than the loop it replaced is a regression regardless of the
    # end-to-end cells (this is what caught engine_coalesced_drain at
    # 0.94×).  Kernel timings are noisier than cell walls, so the floor
    # is 1.0×, not 1.0× + margin.
    for name, record in RESULTS["kernels"].items():
        if record["speedup"] < 1.0:
            failures.append(
                f"kernel {name}: speedup {record['speedup']:.3f}× < 1.0× "
                f"(vectorized {record['vectorized_s']:.4f}s vs reference "
                f"{record['reference_s']:.4f}s)"
            )
    # When a compiled backend ran, it must earn its keep: at least three
    # of the backend_* kernels at >= 2x over pure (the backend layer's
    # acceptance bar — anything less means the C/numba path is not worth
    # its complexity on this machine).
    backend_records = {
        name: record
        for name, record in RESULTS["kernels"].items()
        if name.startswith("backend_")
    }
    if backend_records:
        fast = [n for n, r in backend_records.items() if r["speedup"] >= 2.0]
        if len(fast) < 3:
            summary = ", ".join(
                f"{n}={r['speedup']:.2f}×" for n, r in backend_records.items()
            )
            failures.append(
                f"compiled backend reached 2× on only {len(fast)} kernels "
                f"(need >=3): {summary}"
            )
    # The macro-step engine core's own acceptance bar: when the drain
    # kernel was recorded (i.e. a compiled backend was available), the
    # whole-task compiled drain must at least halve the end-to-end cell
    # wall versus per-event booking — less than 2× means the escape
    # protocol's overhead ate the win and the core needs investigating.
    macro = RESULTS["kernels"].get("engine_macro_drain")
    if macro is not None and macro["speedup"] < 2.0:
        failures.append(
            f"engine_macro_drain: macro-step drain at "
            f"{macro['speedup']:.2f}× < 2.0× over per-event booking "
            f"(macro {macro['vectorized_s']:.3f}s vs per-event "
            f"{macro['reference_s']:.3f}s)"
        )
    # The compiled control plane's acceptance bars (the SoA task tree):
    # the end-to-end gate cell must hold >= 1.3x compiled-vs-per-event
    # (the stricter 2.0x clause above enforces it), at least two of the
    # scheduler kernels must reach 2x over the interpreted loops, and
    # the Shogun gate cell must not regress past the frozen PR 9 record
    # — the rebuilt scheduler is that cell's control plane, so slowing
    # it down would mean the SoA rework cost more than the kernels earn
    # back.
    tree_records = {
        name: RESULTS["kernels"][name]
        for name in ("tree_select", "tree_fill", "macro_run_of_tasks")
        if name in RESULTS["kernels"]
    }
    if tree_records:
        fast = [n for n, r in tree_records.items() if r["speedup"] >= 2.0]
        if len(fast) < 2:
            summary = ", ".join(
                f"{n}={r['speedup']:.2f}×" for n, r in tree_records.items()
            )
            failures.append(
                f"scheduler kernels reached 2× on only {len(fast)} "
                f"(need >=2): {summary}"
            )
    anchor_cell = RESULTS["cells"].get(PR9_GATE_CELL["name"])
    if (
        anchor_cell is not None
        and payload["backend"] == PR9_GATE_CELL["backend"]
        and scale == PR9_GATE_CELL["scale"]
    ):
        anchor_speed = max(
            calibration / PR9_GATE_CELL["calibration_cpu_s"], 1.0
        )
        allowed = (
            PR9_GATE_CELL["cpu_s"] * anchor_speed * ANCHOR_LIMIT
        )
        if anchor_cell["cpu_s"] > allowed:
            failures.append(
                f"{PR9_GATE_CELL['name']}: {anchor_cell['cpu_s']:.3f}s > "
                f"allowed {allowed:.3f}s (PR 9 anchor "
                f"{PR9_GATE_CELL['cpu_s']:.3f}s × speed "
                f"{anchor_speed:.2f} × {ANCHOR_LIMIT})"
            )
    assert not failures, "performance regression:\n" + "\n".join(failures)
