"""Figure 13: sensitivity studies (execution width, bunches per depth)."""

from conftest import save

from repro.experiments import figure13a, figure13b


def test_figure13a(benchmark, results_dir, scale, full_scale):
    """Fig. 13(a): Shogun scales better with execution width than FINGERS."""
    result = benchmark.pedantic(lambda: figure13a(scale=scale), rounds=1, iterations=1)
    save(results_dir, "figure13a", result.render())
    if not full_scale:
        return
    # At the widest configuration of every case, Shogun >= FINGERS.
    by_case = {}
    for case, width, fingers, shogun in result.rows:
        by_case.setdefault(case, []).append((width, fingers, shogun))
    for case, rows in by_case.items():
        _, fingers, shogun = max(rows)
        assert shogun >= fingers * 0.98, case
    # Shogun's own width scaling is positive somewhere.
    assert any(rows[-1][2] > rows[0][2] for rows in by_case.values())


def test_figure13b(benchmark, results_dir, scale, full_scale):
    """Fig. 13(b): Shogun's sensitivity to the bunches-per-depth count.

    Paper: varying 2/4/8 bunches changes performance by less than 10%,
    because out-of-order scheduling can draw tasks from any depth.  The
    scaled datasets' shallow trees make two bunches genuinely starving
    on some cells, so the asserted band is wider here; the 4-to-8-bunch
    step (both non-starved) must be small, and more bunches must never
    hurt.
    """
    result = benchmark.pedantic(lambda: figure13b(scale=scale), rounds=1, iterations=1)
    save(results_dir, "figure13b", result.render())
    if not full_scale:
        return
    by_case = {}
    for case, bunches, rel in result.rows:
        by_case.setdefault(case, {})[bunches] = rel
    for case, rels in by_case.items():
        assert all(0.8 <= r <= 1.6 for r in rels.values()), case
        # The paper's insensitivity claim, asserted on the 4 -> 8 step.
        assert abs(rels[8] / rels[4] - 1.0) < 0.12, case
