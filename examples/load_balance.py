"""Task-tree splitting demo: rescuing straggler PEs at the tail (§4.1).

Run with::

    python examples/load_balance.py

With many PEs and a skewed graph, a few heavy search trees outlive
everything else; this example shows the system scheduler detecting the
many-idle/few-busy pattern, the donor splitting a candidate range off its
task tree, the NoC shipping partition messages, and the makespan
shrinking (Figure 11).
"""

from repro.experiments import eval_config
from repro.experiments.reporting import render_table
from repro.graph import load_dataset
from repro.patterns import benchmark_schedule
from repro.sim import simulate


def main() -> None:
    graph = load_dataset("wi")
    rows = []
    for pattern in ("4cl", "5cl", "4cyc_e"):
        schedule = benchmark_schedule(pattern)
        base_cfg = eval_config(num_pes=20)
        lb_cfg = eval_config(num_pes=20, enable_splitting=True)
        plain = simulate(graph, schedule, policy="shogun", config=base_cfg)
        balanced = simulate(graph, schedule, policy="shogun", config=lb_cfg)
        assert plain.matches == balanced.matches
        rows.append(
            [
                pattern,
                round(plain.cycles),
                round(balanced.cycles),
                f"{(plain.cycles / balanced.cycles - 1) * 100:+.0f}%",
                balanced.partitions_sent,
                balanced.split_rounds,
                balanced.noc_lines,
            ]
        )
    print(
        render_table(
            ["pattern", "cycles (no LB)", "cycles (LB)", "gain",
             "partitions", "rounds", "NoC lines"],
            rows,
            title="Task-tree splitting on wi, 20 PEs (Figure 11)",
        )
    )


if __name__ == "__main__":
    main()
