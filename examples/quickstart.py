"""Quickstart: count 4-cliques on a dataset and compare Shogun to FINGERS.

Run with::

    python examples/quickstart.py

This walks the three layers of the library:

1. ``repro.graph`` — load a synthetic stand-in dataset (Table 4);
2. ``repro.patterns`` + ``repro.mining`` — build the GraphPi-style
   schedule and get the exact match count from the software miner;
3. ``repro.sim`` — simulate the accelerator under two scheduling
   policies and compare cycles (the Figure 9 experiment, one cell).
"""

from repro.experiments import eval_config
from repro.experiments.tables import table3
from repro.graph import compute_stats, load_dataset
from repro.mining import mine
from repro.patterns import benchmark_schedule
from repro.sim import simulate


def main() -> None:
    graph = load_dataset("wi", scale=0.6)
    schedule = benchmark_schedule("4cl")

    print("=== dataset ===")
    print(f"wi stand-in: {compute_stats(graph).describe()}")
    print()
    print("=== schedule ===")
    print(schedule.describe())
    print()

    result = mine(graph, schedule)
    print("=== software miner (ground truth) ===")
    print(f"4-cliques: {result.count}")
    print(f"search-tree tasks: {result.stats.total_tasks} "
          f"(per depth: {result.stats.tasks_per_depth})")
    print()

    print("=== accelerator configuration ===")
    print(table3().render())
    print()

    config = eval_config()
    fingers = simulate(graph, schedule, policy="fingers", config=config)
    shogun = simulate(graph, schedule, policy="shogun", config=config)

    print("=== simulation ===")
    print(fingers.summary())
    print(shogun.summary())
    assert shogun.matches == fingers.matches == result.count
    print()
    print(f"Shogun speedup over FINGERS: {shogun.speedup_over(fingers):.2f}x")


if __name__ == "__main__":
    main()
