"""Compare all five scheduling schemes on one workload (Table 1, measured).

Run with::

    python examples/scheduling_comparison.py [dataset] [pattern]

Reproduces the qualitative comparison of Table 1 with real measurements:
memory footprint (BFS explodes), intermediate-data locality (DFS loses
it), parallel slot usage (DFS wastes the execution width) and barrier
idleness (BFS/pseudo-DFS stall on stragglers; Shogun does not).
"""

import sys

from repro.experiments import eval_config
from repro.experiments.reporting import render_table
from repro.graph import load_dataset
from repro.patterns import benchmark_schedule
from repro.sim import simulate

SCHEMES = ("bfs", "dfs", "pseudo-dfs", "parallel-dfs", "shogun")


def main(dataset: str = "wi", pattern: str = "4cl") -> None:
    graph = load_dataset(dataset, scale=0.6)
    schedule = benchmark_schedule(pattern)
    config = eval_config()

    rows = []
    runs = {}
    for scheme in SCHEMES:
        m = simulate(graph, schedule, policy=scheme, config=config)
        runs[scheme] = m
        rows.append(
            [
                scheme,
                round(m.cycles),
                m.matches,
                f"{m.peak_footprint_bytes}B",
                f"{m.l1_hit_rate:.1%}",
                f"{m.slot_utilization:.1%}",
                f"{m.barrier_idle_fraction:.1%}",
            ]
        )

    counts = {m.matches for m in runs.values()}
    assert len(counts) == 1, "schemes disagree on the match count!"

    print(
        render_table(
            ["scheme", "cycles", "matches", "peak mem", "L1 hit",
             "slot util", "idle w/ work"],
            rows,
            title=f"Scheduling schemes on {dataset}-{pattern} (Table 1, measured)",
        )
    )
    base = runs["pseudo-dfs"]
    print()
    for scheme in SCHEMES:
        print(f"{scheme:13s} speedup over pseudo-DFS: "
              f"{runs[scheme].speedup_over(base):.2f}x")


if __name__ == "__main__":
    main(*sys.argv[1:3])
