"""Insight 2 in action: out-of-order scheduling needs a locality monitor.

Run with::

    python examples/locality_study.py

On a skewed graph with a memory-bound pattern (the paper's yo-tt case),
this compares:

* pseudo-DFS — locality-preserving but barrier-bound;
* parallel-DFS — barrier-free but locality-oblivious (L1 thrashing);
* Shogun with the conservative mode disabled — out-of-order, unprotected;
* Shogun with the monitor active — out-of-order *and* locality-aware.

Watch the L1 hit rate / average latency columns: the monitor trades a
little parallelism for cache stability exactly when thrashing appears
(§3.2.3, Figure 14).
"""

from repro.core import ShogunPolicy
from repro.experiments import eval_config
from repro.experiments.reporting import render_table
from repro.graph import load_dataset
from repro.patterns import benchmark_schedule
from repro.sim import simulate
from repro.sim.accelerator import Accelerator


def run_shogun(graph, schedule, config, conservative_override):
    accel = Accelerator(graph, schedule, config, "shogun")
    for pe in accel.pes:
        pe.policy._conservative_override = conservative_override
    return accel.run()


def main() -> None:
    graph = load_dataset("yo")
    schedule = benchmark_schedule("tt_e")
    # A small L1 makes the scaled hubs thrash-prone, like real Youtube
    # against a 32 KB L1 (see DESIGN.md on hierarchy scaling).
    config = eval_config(l1_kb=2)

    rows = []

    def record(name, metrics, extra=""):
        rows.append(
            [
                name,
                round(metrics.cycles),
                f"{metrics.l1_hit_rate:.1%}",
                round(metrics.l1_avg_latency, 1),
                f"{metrics.conservative_fraction:.0%}",
                extra,
            ]
        )

    record("pseudo-DFS", simulate(graph, schedule, policy="fingers", config=config))
    record("parallel-DFS", simulate(graph, schedule, policy="parallel-dfs", config=config))
    record("shogun (monitor off)", run_shogun(graph, schedule, config, False))
    record("shogun (monitor on)", run_shogun(graph, schedule, config, None))
    record("shogun (always conservative)", run_shogun(graph, schedule, config, True))

    print(
        render_table(
            ["policy", "cycles", "L1 hit", "L1 avg lat", "monitor engaged", ""],
            rows,
            title="Locality study on yo-tt_e (Insight 2 / Figure 14)",
        )
    )
    print(
        "note: 'monitor engaged' reports what the monitor observed; the "
        "off/always rows override its decision, they do not silence it."
    )


if __name__ == "__main__":
    main()
