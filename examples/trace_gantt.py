"""Recreate Figure 2's occupancy view from a live simulation trace.

Run with::

    python examples/trace_gantt.py

Figure 2 of the paper illustrates the scheduling schemes as slot
occupancy over time.  This example attaches a :class:`TraceRecorder` to
one PE, runs the same small workload under DFS, pseudo-DFS and Shogun,
and prints a textual occupancy strip per scheme: each column is a time
bucket, its glyph the number of concurrently executing tasks (the blank
stretches under pseudo-DFS are its group barriers).
"""

from repro.graph import erdos_renyi_gnm
from repro.patterns import benchmark_schedule
from repro.sim import SimConfig, TraceRecorder
from repro.sim.accelerator import Accelerator

GLYPHS = " .:-=+*#%@"


def occupancy_strip(profile, buckets=72):
    if not profile:
        return ""
    step = max(1, len(profile) // buckets)
    chunks = [profile[i : i + step] for i in range(0, len(profile), step)]
    out = []
    for chunk in chunks[:buckets]:
        level = round(sum(chunk) / len(chunk))
        out.append(GLYPHS[min(level, len(GLYPHS) - 1)])
    return "".join(out)


def main() -> None:
    graph = erdos_renyi_gnm(40, 200, seed=9)
    schedule = benchmark_schedule("4cl")
    config = SimConfig(num_pes=1, execution_width=4, bunch_entries=4, tokens_per_depth=4)

    print("PE slot occupancy over time (1 char ~= 1/72 of the run):")
    print(f"{'':12s} |{'-' * 72}|")
    for policy in ("dfs", "pseudo-dfs", "parallel-dfs", "shogun"):
        accel = Accelerator(graph, schedule, config, policy)
        trace = TraceRecorder.attach(accel)
        metrics = accel.run()
        strip = occupancy_strip(trace.concurrency_profile(0, step=5.0))
        print(f"{policy:12s} |{strip:72s}| {metrics.cycles:7.0f} cycles")
    print()
    print(f"glyph scale: ' '=0 tasks, '{GLYPHS[1]}'=1 ... '{GLYPHS[4]}'=4 (width)")


if __name__ == "__main__":
    main()
