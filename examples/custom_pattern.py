"""Bring your own pattern: schedule generation for arbitrary patterns.

Run with::

    python examples/custom_pattern.py

The paper's machinery is not limited to the six benchmark patterns:
``repro.patterns`` generates a symmetry-broken schedule for any small
connected pattern.  This example mines the 5-vertex *house* pattern (a
4-cycle with a roof triangle), validates the schedule against the
brute-force oracle, and runs it through the accelerator.
"""

from repro.experiments import eval_config
from repro.graph import erdos_renyi_gnm
from repro.mining import count_matches, count_unique_subgraphs
from repro.patterns import Pattern, automorphism_count, best_schedule, house
from repro.sim import simulate


def main() -> None:
    pattern = house()
    print(f"pattern: {pattern!r}")
    print(f"|Aut| = {automorphism_count(pattern)}")

    schedule = best_schedule(pattern, num_vertices=200, avg_degree=8.0)
    print()
    print(schedule.describe())

    graph = erdos_renyi_gnm(200, 800, seed=42, name="er200")
    exact = count_matches(graph, schedule)
    oracle = count_unique_subgraphs(graph, pattern)
    print()
    print(f"houses in {graph.name}: {exact} (oracle: {oracle})")
    assert exact == oracle

    metrics = simulate(graph, schedule, policy="shogun", config=eval_config())
    assert metrics.matches == exact
    print(metrics.summary())

    # Vertex-induced variant of the same pattern.
    induced = best_schedule(pattern, induced=True, num_vertices=200, avg_degree=8.0)
    vi = count_matches(graph, induced)
    print(f"vertex-induced houses: {vi} (subset of edge-induced: {vi <= exact})")

    # And a pattern assembled from scratch: the 'bull' (triangle + two horns).
    bull = Pattern(5, [(0, 1), (1, 2), (0, 2), (0, 3), (1, 4)], name="bull")
    bull_schedule = best_schedule(bull)
    print(f"bulls: {count_matches(graph, bull_schedule)}")


if __name__ == "__main__":
    main()
