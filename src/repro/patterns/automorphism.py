"""Automorphism groups of search patterns.

Pattern-aware graph mining guarantees uniqueness by breaking the
symmetries of the pattern: every automorphism of the pattern would
otherwise produce a duplicate match of the same subgraph.  Patterns are
tiny (the paper assumes at most 7 vertices, matching GraphPi), so a
brute-force enumeration over all ``k!`` permutations is both exact and
fast — and doubles as the oracle the test suite validates restriction
generation against.
"""

from __future__ import annotations

from itertools import permutations
from typing import List, Tuple

from .pattern import Pattern


def automorphisms(pattern: Pattern) -> List[Tuple[int, ...]]:
    """All automorphisms of ``pattern`` as permutation tuples.

    A permutation ``perm`` is an automorphism iff ``(u, v)`` is an edge
    exactly when ``(perm[u], perm[v])`` is an edge.  Because pattern
    automorphisms preserve non-edges as well, the group is identical for
    edge-induced and vertex-induced matching.  The identity is included,
    so the result always has at least one element.
    """
    k = pattern.num_vertices
    edges = pattern.edge_set
    found: List[Tuple[int, ...]] = []
    degrees = [pattern.degree(v) for v in range(k)]
    for perm in permutations(range(k)):
        # Degree filter rejects most non-automorphisms cheaply.
        if any(degrees[v] != degrees[perm[v]] for v in range(k)):
            continue
        if all((min(perm[u], perm[v]), max(perm[u], perm[v])) in edges for u, v in edges):
            found.append(perm)
    return found


def automorphism_count(pattern: Pattern) -> int:
    """Order of the automorphism group, ``|Aut(P)|``."""
    return len(automorphisms(pattern))


def orbit_representative(embedding: Tuple[int, ...], autos: List[Tuple[int, ...]]) -> Tuple[int, ...]:
    """Lexicographically largest element of the orbit of ``embedding``.

    ``embedding[i]`` is the data vertex matched to pattern vertex ``i``.
    Used by tests to verify that symmetry-breaking keeps exactly the
    representative of each orbit (the lex-max convention matches the
    ``break``-on-ascending-scan pruning of Algorithm 1 in the paper).
    """
    best = embedding
    for perm in autos:
        candidate = tuple(embedding[perm[i]] for i in range(len(embedding)))
        if candidate > best:
            best = candidate
    return best
