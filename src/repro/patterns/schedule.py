"""Matching schedules: vertex order + symmetry-breaking restrictions.

A *matching schedule* drives the search-tree construction of pattern-aware
graph mining (Algorithm 1 of the paper is the 4-clique instance).  It
consists of:

* an **order**: the permutation of pattern vertices giving the depth at
  which each is matched (depth 0 is the search-tree root),
* a **mode**: edge-induced (pattern edges must exist; extra edges allowed)
  or vertex-induced (pattern non-edges must be absent too),
* **restrictions**: pairwise inequalities between matched data vertices
  that break every automorphism of the pattern so each subgraph is found
  exactly once (§2.1 "completeness and uniqueness").

Restriction convention
----------------------
A restriction ``(i, j)`` with ``i < j`` requires ``emb[j] < emb[i]``: the
surviving embedding is the lexicographically *largest* member of its
automorphism orbit.  Because all vertex sets are sorted ascending, this
turns into a scan upper bound — exactly the ``break`` statements in
Algorithm 1 and the task-pruning rule of §3.2.2 ("the rest of the parent
task's candidates will also satisfy the pruning condition").

The restriction set is derived from the automorphism group: for every
non-identity automorphism (expressed as a permutation of depths) take its
smallest moved depth ``i`` and emit ``(i, tau(i))``.  An embedding
satisfies all such pairs iff it is the lex-max of its orbit, so the scheme
is exact — the test suite checks it against a restriction-free count
divided by ``|Aut(P)|``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Sequence, Tuple

from ..errors import ScheduleError
from .automorphism import automorphisms
from .pattern import Pattern


def depth_permutations(pattern: Pattern, order: Sequence[int]) -> List[Tuple[int, ...]]:
    """Automorphisms of ``pattern`` re-expressed as permutations of depths.

    With ``order[d]`` the pattern vertex matched at depth ``d``, the
    automorphism ``sigma`` acts on depths as
    ``tau(d) = order^-1(sigma(order[d]))``.
    """
    inv = {p: d for d, p in enumerate(order)}
    out = []
    for sigma in automorphisms(pattern):
        out.append(tuple(inv[sigma[order[d]]] for d in range(len(order))))
    return out


def generate_restrictions(pattern: Pattern, order: Sequence[int]) -> Tuple[Tuple[int, int], ...]:
    """Symmetry-breaking restriction pairs for ``order`` (lex-max scheme).

    Returns pairs ``(i, j)`` with ``i < j`` meaning ``emb[j] < emb[i]``,
    after transitive reduction (``emb[j] < emb[k] < emb[i]`` makes
    ``(i, j)`` redundant).
    """
    pairs = set()
    for tau in depth_permutations(pattern, order):
        moved = [d for d in range(len(tau)) if tau[d] != d]
        if not moved:
            continue
        i = moved[0]
        j = tau[i]
        if j < i:
            raise ScheduleError("first moved depth must map upward")  # pragma: no cover
        pairs.add((i, j))
    # Transitive reduction over the partial order emb[i] > emb[j].  Pairs
    # always point upward in depth, so the relation is a DAG and removing
    # any edge covered by a two-edge path of the *original* edge set keeps
    # reachability (each such path can itself only be thinned to longer
    # paths, never broken).
    reduced = set(pairs)
    for (i, j) in sorted(pairs):
        if any((i, k) in pairs and (k, j) in pairs for k in range(i + 1, j)):
            reduced.discard((i, j))
    return tuple(sorted(reduced))


@dataclass(frozen=True)
class MatchingSchedule:
    """An immutable, validated matching schedule.

    Attributes
    ----------
    pattern:
        The search pattern.
    order:
        ``order[d]`` is the pattern vertex matched at search depth ``d``.
    induced:
        Vertex-induced matching when true; edge-induced otherwise.
    restrictions:
        Pairs ``(i, j)``, ``i < j``, meaning ``emb[j] < emb[i]``.
    name:
        Display name, e.g. ``"4cl"`` or ``"tt_v"``.
    """

    pattern: Pattern
    order: Tuple[int, ...]
    induced: bool = False
    restrictions: Tuple[Tuple[int, int], ...] = ()
    name: str = "schedule"

    # Derived, filled by __post_init__ (kept out of equality/hash on purpose).
    connected: Tuple[Tuple[int, ...], ...] = field(
        default=(), compare=False, repr=False
    )
    disconnected: Tuple[Tuple[int, ...], ...] = field(
        default=(), compare=False, repr=False
    )
    upper_bound_depths: Tuple[Tuple[int, ...], ...] = field(
        default=(), compare=False, repr=False
    )

    def __post_init__(self) -> None:
        k = self.pattern.num_vertices
        if sorted(self.order) != list(range(k)):
            raise ScheduleError(f"order {self.order} is not a permutation of 0..{k - 1}")
        connected: List[Tuple[int, ...]] = []
        disconnected: List[Tuple[int, ...]] = []
        for d in range(k):
            conn = tuple(
                e for e in range(d) if self.pattern.has_edge(self.order[e], self.order[d])
            )
            disc = tuple(
                e for e in range(d) if not self.pattern.has_edge(self.order[e], self.order[d])
            )
            if d > 0 and not conn:
                raise ScheduleError(
                    f"order {self.order} is not connectivity-valid at depth {d}"
                )
            connected.append(conn)
            disconnected.append(disc)
        for i, j in self.restrictions:
            if not (0 <= i < j < k):
                raise ScheduleError(f"bad restriction pair ({i}, {j})")
        bounds: List[Tuple[int, ...]] = []
        for d in range(k):
            bounds.append(tuple(i for (i, j) in self.restrictions if j == d))
        object.__setattr__(self, "connected", tuple(connected))
        object.__setattr__(self, "disconnected", tuple(disconnected))
        object.__setattr__(self, "upper_bound_depths", tuple(bounds))

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Number of search depths (= pattern size)."""
        return self.pattern.num_vertices

    @property
    def max_depth(self) -> int:
        """Deepest depth index (``depth - 1``)."""
        return self.pattern.num_vertices - 1

    def bound_for(self, embedding: Sequence[int], d: int) -> int | None:
        """Exclusive upper bound on the vertex matched at depth ``d``.

        ``None`` when no restriction constrains depth ``d``.  The vertex
        scan at depth ``d`` must stop at the first candidate ``>= bound``
        (the ``break`` of Algorithm 1).
        """
        depths = self.upper_bound_depths[d]
        if not depths:
            return None
        return min(int(embedding[i]) for i in depths)

    def describe(self) -> str:
        """Multi-line human-readable description used by examples."""
        lines = [
            f"schedule {self.name}: pattern={self.pattern.name} "
            f"order={self.order} mode={'vertex-induced' if self.induced else 'edge-induced'}"
        ]
        for d in range(self.depth):
            conn = ",".join(str(e) for e in self.connected[d]) or "-"
            disc = ",".join(str(e) for e in self.disconnected[d]) or "-"
            bnd = ",".join(str(e) for e in self.upper_bound_depths[d]) or "-"
            lines.append(
                f"  depth {d}: intersect N(emb[{conn}])"
                + (f" subtract N(emb[{disc}])" if self.induced and self.disconnected[d] else "")
                + f" bound<emb[{bnd}]"
            )
        return "\n".join(lines)


def make_schedule(
    pattern: Pattern,
    order: Sequence[int],
    *,
    induced: bool = False,
    name: str | None = None,
) -> MatchingSchedule:
    """Build a schedule for ``order`` with auto-generated restrictions."""
    restrictions = generate_restrictions(pattern, order)
    return MatchingSchedule(
        pattern=pattern,
        order=tuple(int(v) for v in order),
        induced=induced,
        restrictions=restrictions,
        name=name if name is not None else pattern.name,
    )
