"""GraphPi-style schedule generation and selection.

The paper uses GraphPi [47] to generate the search schedule for every
pattern (Table 3, "Search schedule").  GraphPi enumerates candidate
matching orders, derives symmetry-breaking restrictions for each, and
picks the order minimizing an analytic cost estimate.  This module
reimplements that pipeline:

1. :func:`valid_orders` enumerates connectivity-valid permutations of the
   pattern vertices (every non-root vertex must attach to an earlier one,
   otherwise the candidate set of some depth would be the whole graph);
2. :func:`estimate_cost` prices an order on a random-graph model of the
   target dataset: expected candidate-set sizes per depth shrink
   geometrically with the number of intersected neighbor sets and the
   restriction chains, and the total cost is the expected set-operation
   work summed over the search tree;
3. :func:`best_schedule` returns the cheapest order (deterministic
   tie-break on the order tuple) with its restrictions attached.

Edge-induced (``_e``) and vertex-induced (``_v``) variants share orders
but differ in the per-depth subtraction terms, mirroring §5.1.2 where the
authors "modify GraphPi and also generate vertex-induced schedules".
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, Iterator, List, Sequence, Tuple

from ..errors import ScheduleError
from .pattern import Pattern, get_pattern
from .schedule import MatchingSchedule, generate_restrictions, make_schedule

#: Default random-graph model used when no dataset statistics are given.
DEFAULT_MODEL_VERTICES = 1000
DEFAULT_MODEL_AVG_DEGREE = 10.0


def valid_orders(pattern: Pattern) -> Iterator[Tuple[int, ...]]:
    """Yield all connectivity-valid matching orders of ``pattern``."""
    k = pattern.num_vertices
    for perm in permutations(range(k)):
        ok = True
        for d in range(1, k):
            if not any(pattern.has_edge(perm[e], perm[d]) for e in range(d)):
                ok = False
                break
        if ok:
            yield perm


def estimate_cost(
    pattern: Pattern,
    order: Sequence[int],
    restrictions: Sequence[Tuple[int, int]],
    *,
    num_vertices: int = DEFAULT_MODEL_VERTICES,
    avg_degree: float = DEFAULT_MODEL_AVG_DEGREE,
    induced: bool = False,
) -> float:
    """Expected set-operation work of matching with ``order``.

    The model treats the dataset as Erdős–Rényi with edge probability
    ``p = avg_degree / n``.  The candidate set at depth ``d`` intersects
    ``c = len(connected[d])`` neighbor sets, so its expected size is
    ``n * p**c``; each upper-bound restriction ending at ``d`` halves it
    (a uniformly random bound splits the sorted scan in expectation).
    Vertex-induced subtraction terms do not shrink the set in the sparse
    regime (``p`` small) but do add work.  The work to *compute* a depth-d
    candidate set is the total size of its inputs (sorted-merge cost), and
    the number of such computations is the expected number of partial
    embeddings at depth ``d - 1``.
    """
    n = max(2, int(num_vertices))
    p = min(1.0, avg_degree / n)
    k = pattern.num_vertices

    bound_counts = [0] * k
    for (_, j) in restrictions:
        bound_counts[j] += 1

    connected: List[List[int]] = []
    disconnected: List[List[int]] = []
    for d in range(k):
        connected.append([e for e in range(d) if pattern.has_edge(order[e], order[d])])
        disconnected.append([e for e in range(d) if not pattern.has_edge(order[e], order[d])])

    expected_size = [0.0] * k  # E[|candidate set for depth d|]
    expected_size[0] = float(n)
    for d in range(1, k):
        size = n * (p ** len(connected[d]))
        size *= 0.5 ** bound_counts[d]
        expected_size[d] = max(size, 1e-9)

    embeddings_at = [0.0] * k  # E[# partial embeddings of length d+1]
    embeddings_at[0] = float(n) * (0.5 ** bound_counts[0])
    for d in range(1, k):
        embeddings_at[d] = embeddings_at[d - 1] * expected_size[d]

    total = 0.0
    for d in range(1, k):
        # One candidate-set computation per depth-(d-1) partial embedding.
        input_work = avg_degree * len(connected[d])
        if induced:
            input_work += avg_degree * len(disconnected[d])
        total += embeddings_at[d - 1] * max(input_work, 1.0)
    return total


def best_schedule(
    pattern: Pattern,
    *,
    induced: bool = False,
    num_vertices: int = DEFAULT_MODEL_VERTICES,
    avg_degree: float = DEFAULT_MODEL_AVG_DEGREE,
    name: str | None = None,
) -> MatchingSchedule:
    """The cheapest valid schedule for ``pattern`` under the cost model."""
    best: Tuple[float, Tuple[int, ...]] | None = None
    for order in valid_orders(pattern):
        restrictions = generate_restrictions(pattern, order)
        cost = estimate_cost(
            pattern,
            order,
            restrictions,
            num_vertices=num_vertices,
            avg_degree=avg_degree,
            induced=induced,
        )
        key = (cost, order)
        if best is None or key < best:
            best = key
    if best is None:
        raise ScheduleError(f"pattern {pattern.name!r} admits no valid order")
    schedule_name = name if name is not None else pattern.name + ("_v" if induced else "")
    return make_schedule(pattern, best[1], induced=induced, name=schedule_name)


# ----------------------------------------------------------------------
# The paper's nine benchmark schedules
# ----------------------------------------------------------------------

#: Benchmark schedule codes exactly as Figure 9/10 label them.  Cliques
#: are identical in both modes so only the edge-induced version exists;
#: tt, dia and 4cyc come in ``_e`` and ``_v`` flavors (§5.1.2).
BENCHMARK_CODES: Tuple[str, ...] = (
    "tc",
    "tt_e",
    "tt_v",
    "4cl",
    "5cl",
    "dia_e",
    "dia_v",
    "4cyc_e",
    "4cyc_v",
)

_SCHEDULE_CACHE: Dict[str, MatchingSchedule] = {}


def benchmark_schedule(code: str) -> MatchingSchedule:
    """Schedule for a benchmark code (``tc``, ``tt_e``, ``4cyc_v``, ...)."""
    if code in _SCHEDULE_CACHE:
        return _SCHEDULE_CACHE[code]
    if code.endswith("_e") or code.endswith("_v"):
        base, variant = code[:-2], code[-1]
    else:
        base, variant = code, "e"
    if code not in BENCHMARK_CODES:
        raise ScheduleError(
            f"unknown benchmark code {code!r}; known: {list(BENCHMARK_CODES)}"
        )
    pattern = get_pattern(base)
    schedule = best_schedule(pattern, induced=(variant == "v"), name=code)
    _SCHEDULE_CACHE[code] = schedule
    return schedule


def benchmark_schedules() -> List[MatchingSchedule]:
    """All nine benchmark schedules in Figure 9 order."""
    return [benchmark_schedule(code) for code in BENCHMARK_CODES]
