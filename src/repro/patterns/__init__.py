"""Patterns, automorphism groups and GraphPi-style matching schedules."""

from .automorphism import automorphism_count, automorphisms, orbit_representative
from .graphpi import (
    BENCHMARK_CODES,
    benchmark_schedule,
    benchmark_schedules,
    best_schedule,
    estimate_cost,
    valid_orders,
)
from .pattern import (
    PAPER_PATTERNS,
    Pattern,
    clique,
    cycle,
    diamond,
    four_cycle,
    get_pattern,
    house,
    star,
    tailed_triangle,
    triangle,
)
from .schedule import (
    MatchingSchedule,
    depth_permutations,
    generate_restrictions,
    make_schedule,
)

__all__ = [
    "BENCHMARK_CODES",
    "MatchingSchedule",
    "PAPER_PATTERNS",
    "Pattern",
    "automorphism_count",
    "automorphisms",
    "benchmark_schedule",
    "benchmark_schedules",
    "best_schedule",
    "clique",
    "cycle",
    "depth_permutations",
    "diamond",
    "estimate_cost",
    "four_cycle",
    "generate_restrictions",
    "get_pattern",
    "house",
    "make_schedule",
    "orbit_representative",
    "star",
    "tailed_triangle",
    "triangle",
    "valid_orders",
]
