"""Search patterns: the small graphs that graph mining matches.

A :class:`Pattern` is a tiny undirected, connected, simple graph.  The six
patterns evaluated by the paper (§5.1.2) are provided as named
constructors with the paper's two-to-four-letter codes:

========  =======================  =============================
code      name                     structure
========  =======================  =============================
``tc``    triangle                 3-clique
``tt``    tailed triangle          triangle + pendant edge
``4cl``   4-clique                 K4
``5cl``   5-clique                 K5
``dia``   diamond                  K4 minus one edge
``4cyc``  4-cycle                  C4
========  =======================  =============================
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from ..errors import PatternError


class Pattern:
    """An immutable small undirected simple graph used as a search pattern.

    Vertices are ``0 .. num_vertices - 1``.  Patterns must be connected:
    disconnected patterns cannot be matched by a single search tree.
    """

    __slots__ = ("num_vertices", "edge_set", "_adjacency", "name")

    def __init__(
        self,
        num_vertices: int,
        edges: Iterable[Tuple[int, int]],
        *,
        name: str = "pattern",
    ) -> None:
        if num_vertices < 1:
            raise PatternError("a pattern needs at least one vertex")
        canon = set()
        for u, v in edges:
            u, v = int(u), int(v)
            if u == v:
                raise PatternError(f"pattern self loop at vertex {u}")
            if not (0 <= u < num_vertices and 0 <= v < num_vertices):
                raise PatternError(f"pattern edge ({u}, {v}) out of range")
            canon.add((min(u, v), max(u, v)))
        self.num_vertices = num_vertices
        self.edge_set: FrozenSet[Tuple[int, int]] = frozenset(canon)
        adjacency: List[set] = [set() for _ in range(num_vertices)]
        for u, v in self.edge_set:
            adjacency[u].add(v)
            adjacency[v].add(u)
        self._adjacency = tuple(frozenset(a) for a in adjacency)
        self.name = name
        if num_vertices > 1 and not self._is_connected():
            raise PatternError(f"pattern {name!r} is not connected")

    # ------------------------------------------------------------------
    def _is_connected(self) -> bool:
        seen = {0}
        frontier = [0]
        while frontier:
            u = frontier.pop()
            for v in self._adjacency[u]:
                if v not in seen:
                    seen.add(v)
                    frontier.append(v)
        return len(seen) == self.num_vertices

    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of pattern edges."""
        return len(self.edge_set)

    def adjacency(self, v: int) -> FrozenSet[int]:
        """Neighbors of pattern vertex ``v``."""
        return self._adjacency[v]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether pattern edge ``{u, v}`` exists."""
        return v in self._adjacency[u]

    def degree(self, v: int) -> int:
        """Degree of pattern vertex ``v``."""
        return len(self._adjacency[v])

    def non_edges(self) -> List[Tuple[int, int]]:
        """All vertex pairs that are *not* edges (``u < v``)."""
        return [
            (u, v)
            for u in range(self.num_vertices)
            for v in range(u + 1, self.num_vertices)
            if not self.has_edge(u, v)
        ]

    def relabel(self, mapping: Sequence[int]) -> "Pattern":
        """Pattern with vertex ``i`` renamed to ``mapping[i]``."""
        if sorted(mapping) != list(range(self.num_vertices)):
            raise PatternError("relabel mapping must be a permutation")
        return Pattern(
            self.num_vertices,
            [(mapping[u], mapping[v]) for u, v in self.edge_set],
            name=self.name,
        )

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Pattern)
            and self.num_vertices == other.num_vertices
            and self.edge_set == other.edge_set
        )

    def __hash__(self) -> int:
        return hash((self.num_vertices, self.edge_set))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Pattern({self.name!r}, k={self.num_vertices}, edges={sorted(self.edge_set)})"


# ----------------------------------------------------------------------
# Named patterns
# ----------------------------------------------------------------------

def triangle() -> Pattern:
    """The triangle (3-clique), code ``tc``."""
    return clique(3, name="tc")


def clique(k: int, *, name: str | None = None) -> Pattern:
    """The complete graph on ``k`` vertices."""
    if k < 2:
        raise PatternError("clique size must be >= 2")
    edges = [(u, v) for u in range(k) for v in range(u + 1, k)]
    return Pattern(k, edges, name=name if name is not None else f"{k}cl")


def tailed_triangle() -> Pattern:
    """Triangle with a pendant vertex attached, code ``tt``."""
    return Pattern(4, [(0, 1), (0, 2), (1, 2), (2, 3)], name="tt")


def diamond() -> Pattern:
    """K4 minus one edge, code ``dia``."""
    return Pattern(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)], name="dia")


def cycle(k: int, *, name: str | None = None) -> Pattern:
    """The ``k``-cycle."""
    if k < 3:
        raise PatternError("cycle length must be >= 3")
    edges = [(i, (i + 1) % k) for i in range(k)]
    return Pattern(k, edges, name=name if name is not None else f"{k}cyc")


def four_cycle() -> Pattern:
    """The 4-cycle, code ``4cyc``."""
    return cycle(4)


def house() -> Pattern:
    """A 4-cycle with a roof triangle (extension pattern, not in the paper)."""
    return Pattern(5, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (1, 4)], name="house")


def star(k: int) -> Pattern:
    """A star with ``k`` leaves (extension pattern)."""
    if k < 1:
        raise PatternError("star needs at least one leaf")
    return Pattern(k + 1, [(0, i) for i in range(1, k + 1)], name=f"star{k}")


#: The paper's benchmark patterns by code.
PAPER_PATTERNS: Dict[str, Pattern] = {
    "tc": triangle(),
    "tt": tailed_triangle(),
    "4cl": clique(4),
    "5cl": clique(5),
    "dia": diamond(),
    "4cyc": four_cycle(),
}


def get_pattern(code: str) -> Pattern:
    """Look up a paper pattern by code (``tc``, ``tt``, ``4cl``, ...)."""
    try:
        return PAPER_PATTERNS[code]
    except KeyError:
        raise PatternError(
            f"unknown pattern {code!r}; known: {sorted(PAPER_PATTERNS)}"
        ) from None
