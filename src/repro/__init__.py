"""Shogun: a task scheduling framework for graph mining accelerators.

A from-scratch Python reproduction of the ISCA 2023 paper, comprising:

* :mod:`repro.graph` — CSR graphs, synthetic datasets, statistics;
* :mod:`repro.patterns` — patterns, automorphisms, GraphPi-style schedules;
* :mod:`repro.mining` — set operations, search-tree semantics, reference
  miners (exact counting);
* :mod:`repro.sim` — the event-driven cycle-accounting accelerator
  simulator (PEs, SPM/L1/L2/DRAM/NoC, IU pools);
* :mod:`repro.core` — the Shogun contribution: the task tree, the five
  scheduling policies, the conservative-mode locality monitor, task-tree
  splitting and search-tree merging;
* :mod:`repro.experiments` — the harness regenerating every table and
  figure of the paper's evaluation.

Quick start::

    from repro.graph import load_dataset
    from repro.patterns import benchmark_schedule
    from repro.sim import simulate

    graph = load_dataset("wi", scale=0.5)
    schedule = benchmark_schedule("4cl")
    shogun = simulate(graph, schedule, policy="shogun")
    fingers = simulate(graph, schedule, policy="fingers")
    print(f"speedup: {shogun.speedup_over(fingers):.2f}x")
"""

__version__ = "0.1.0"

from .errors import (
    ConfigError,
    GraphError,
    PatternError,
    ReproError,
    ScheduleError,
    SimulationError,
)

__all__ = [
    "ConfigError",
    "GraphError",
    "PatternError",
    "ReproError",
    "ScheduleError",
    "SimulationError",
    "__version__",
]
