"""Golden-metrics registry: committed RunMetrics snapshots.

A *golden* pins the complete :class:`~repro.sim.metrics.RunMetrics` of
one evaluation cell — (dataset, pattern, policy, scale, config) — as a
JSON file under ``tests/golden/``.  Simulations are deterministic, so
any field drifting from its snapshot means a behavior change the author
must either fix or consciously re-bless with ``repro validate golden
--update`` (then commit the diff).  The registry diffs **field by
field**, recursing into per-PE metrics, and renders the exact paths that
changed — far more actionable than "cycles differ".

The default matrix is all five policies × triangle + 4-clique on the
``wi`` stand-in at scale 0.3 with the evaluation configuration; the
snapshot embeds the config fields so config drift is reported as its own
diff instead of masquerading as a metrics change.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from ..sim.config import SimConfig
from ..sim.metrics import RunMetrics
from .oracle import ORACLE_POLICIES

#: The committed snapshot matrix (dataset × pattern × policy).
GOLDEN_DATASETS: Tuple[str, ...] = ("wi",)
GOLDEN_PATTERNS: Tuple[str, ...] = ("tc", "4cl")
GOLDEN_POLICIES: Tuple[str, ...] = ORACLE_POLICIES
GOLDEN_SCALE = 0.3

#: Snapshot schema version (bump on incompatible layout changes).
SCHEMA_VERSION = 1


def default_golden_dir() -> Path:
    """Snapshot directory: ``REPRO_GOLDEN_DIR`` or ``<repo>/tests/golden``."""
    env = os.environ.get("REPRO_GOLDEN_DIR")
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / "tests" / "golden"


def golden_matrix(
    scale: float = GOLDEN_SCALE,
) -> Iterator[Tuple[str, str, str, float]]:
    """The (dataset, pattern, policy, scale) cells the registry pins."""
    for dataset in GOLDEN_DATASETS:
        for pattern in GOLDEN_PATTERNS:
            for policy in GOLDEN_POLICIES:
                yield dataset, pattern, policy, scale


def snapshot_path(
    dataset: str, pattern: str, policy: str, scale: float,
    *, golden_dir: Optional[Path] = None,
) -> Path:
    """File path of one cell's snapshot."""
    root = golden_dir if golden_dir is not None else default_golden_dir()
    return root / f"{dataset}-{pattern}-{policy}-s{scale:g}.json"


def _config_dict(config: SimConfig) -> Dict[str, object]:
    out = dataclasses.asdict(config)
    # The kernel backend is a speed knob, not a model knob: every backend
    # produces byte-identical metrics (enforced by the parity tests), so
    # goldens are backend-independent by construction and recording the
    # selection would only manufacture spurious config drift.
    out.pop("backend", None)
    # Same reasoning for the macro-step toggle: fast-path vs. per-event
    # booking is bit-identical by construction (the macro parity suite
    # enforces it), so the setting is not part of the pinned model.
    out.pop("macro_step", None)
    # And for the task-tree kernel toggle: compiled vs. interpreted
    # scheduler decisions are bit-identical by construction (the SoA
    # differential suite enforces it).
    out.pop("tree_kernels", None)
    return out


def make_snapshot(
    dataset: str, pattern: str, policy: str, scale: float,
    config: SimConfig, metrics: RunMetrics,
) -> Dict[str, object]:
    """The JSON payload pinned for one cell."""
    return {
        "schema": SCHEMA_VERSION,
        "dataset": dataset,
        "pattern": pattern,
        "policy": policy,
        "scale": scale,
        "config": _config_dict(config),
        "metrics": metrics.to_dict(),
    }


def load_snapshot(path: Path) -> Dict[str, object]:
    """Read one snapshot file."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def write_snapshot(path: Path, payload: Dict[str, object]) -> None:
    """Write one snapshot file atomically (stable key order, trailing
    newline) — parallel ``--update`` runs cannot tear a snapshot."""
    from ..ioutil import atomic_write_json

    atomic_write_json(path, payload, indent=2, sort_keys=True, newline=True)


def diff_values(expected: object, actual: object, path: str = "") -> List[str]:
    """Recursive field-by-field diff; returns readable mismatch lines."""
    diffs: List[str] = []
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual)):
            sub = f"{path}.{key}" if path else str(key)
            if key not in expected:
                diffs.append(f"{sub}: unexpected new field = {actual[key]!r}")
            elif key not in actual:
                diffs.append(f"{sub}: missing (golden has {expected[key]!r})")
            else:
                diffs.extend(diff_values(expected[key], actual[key], sub))
    elif isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            diffs.append(
                f"{path}: length {len(actual)} != golden length {len(expected)}"
            )
        for i, (e, a) in enumerate(zip(expected, actual)):
            diffs.extend(diff_values(e, a, f"{path}[{i}]"))
    else:
        if expected != actual:
            diffs.append(f"{path}: golden {expected!r} != actual {actual!r}")
    return diffs


@dataclass
class GoldenCellResult:
    """Outcome of checking one cell against its snapshot."""

    dataset: str
    pattern: str
    policy: str
    scale: float
    path: Path
    status: str  # "ok" | "missing" | "diff" | "updated" | "created"
    diffs: List[str] = field(default_factory=list)

    @property
    def label(self) -> str:
        return f"{self.dataset}-{self.pattern}-{self.policy}@{self.scale:g}"


@dataclass
class GoldenReport:
    """Aggregate outcome of a golden check/update pass."""

    cells: List[GoldenCellResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.status in ("ok", "updated", "created") for c in self.cells)

    def render(self) -> str:
        lines = []
        for cell in self.cells:
            lines.append(f"golden {cell.label}: {cell.status}")
            for diff in cell.diffs[:20]:
                lines.append(f"    {diff}")
            if len(cell.diffs) > 20:
                lines.append(f"    … {len(cell.diffs) - 20} more difference(s)")
        counts: Dict[str, int] = {}
        for cell in self.cells:
            counts[cell.status] = counts.get(cell.status, 0) + 1
        summary = ", ".join(f"{n} {s}" for s, n in sorted(counts.items()))
        lines.append(f"golden: {summary}")
        if not self.ok:
            lines.append(
                "golden: run `repro validate golden --update` and commit the "
                "refreshed snapshots if the change is intentional"
            )
        return "\n".join(lines)


def _run_cell(dataset, pattern, policy, scale, config) -> RunMetrics:
    from ..experiments import runner

    return runner.run_cell(
        dataset, pattern, policy, config=config, scale=scale, verify=False
    )


def check_golden(
    *,
    scale: float = GOLDEN_SCALE,
    golden_dir: Optional[Path] = None,
    config: Optional[SimConfig] = None,
    update: bool = False,
) -> GoldenReport:
    """Diff (or, with ``update``, rewrite) every cell of the matrix.

    Simulations route through :func:`repro.experiments.runner.run_cell`,
    so golden checks share results with the oracle and the persistent
    cache within one process.
    """
    from ..experiments import runner

    cfg = config if config is not None else runner.eval_config()
    report = GoldenReport()
    for dataset, pattern, policy, cell_scale in golden_matrix(scale):
        path = snapshot_path(
            dataset, pattern, policy, cell_scale, golden_dir=golden_dir
        )
        metrics = _run_cell(dataset, pattern, policy, cell_scale, cfg)
        payload = make_snapshot(dataset, pattern, policy, cell_scale, cfg, metrics)
        cell = GoldenCellResult(
            dataset=dataset, pattern=pattern, policy=policy,
            scale=cell_scale, path=path, status="ok",
        )
        if not path.exists():
            if update:
                write_snapshot(path, payload)
                cell.status = "created"
            else:
                cell.status = "missing"
                cell.diffs.append(f"snapshot file {path} does not exist")
        else:
            expected = load_snapshot(path)
            diffs = diff_values(expected, payload)
            if diffs:
                if update:
                    write_snapshot(path, payload)
                    cell.status = "updated"
                    cell.diffs = diffs
                else:
                    cell.status = "diff"
                    cell.diffs = diffs
        report.cells.append(cell)
    return report


def update_golden(
    *,
    scale: float = GOLDEN_SCALE,
    golden_dir: Optional[Path] = None,
    config: Optional[SimConfig] = None,
) -> GoldenReport:
    """Rewrite every snapshot of the matrix (``repro validate golden --update``)."""
    return check_golden(
        scale=scale, golden_dir=golden_dir, config=config, update=True
    )
