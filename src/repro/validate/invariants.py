"""Live conservation-law checking for accelerator simulations.

The :class:`InvariantChecker` attaches to an
:class:`~repro.sim.accelerator.Accelerator` exactly the way
:class:`~repro.sim.trace.TraceRecorder` does — by wrapping the PE, policy
and memory-system entry points with counting shims.  It adds no
simulation events and changes no timing, so an instrumented run produces
bit-identical metrics; what it adds is an independent set of books that
:meth:`InvariantChecker.finalize` reconciles against the simulator's own
counters after the run.

Checked laws (violation ``code`` in parentheses; the catalogue lives in
``docs/validation.md``):

* every started task completes, and completions match every executed-task
  counter (``task-conservation``);
* executed tasks = dispatched roots + spawned children, i.e. no task is
  lost or double-executed — this holds under task-tree splitting because
  a donor's completion snapshot counts shipped candidates exactly once
  (``spawn-conservation``);
* candidates generated = children kept + children pruned, and kept
  children match the spawn snapshots (``pruning-conservation``);
* every search tree completes exactly once, and total completions equal
  dispatched roots plus received partitions (``tree-completion``);
* leaf completions equal every match counter (``match-conservation``);
* PE slot occupancy stays within ``[0, execution_width]``
  (``slot-occupancy``);
* cache accounting: L1 accesses equal intermediate line fetches, L2
  accesses equal graph line fetches plus L1 misses, latency-window
  samples equal windowed lines (``cache-accounting``);
* token counts never go negative and acquires − releases always equal
  the pool's held count, draining to zero at the end
  (``token-accounting``);
* NoC send/receive conservation: messages sent = partition sends =
  partition receipts (``noc-conservation``);
* live candidate-set footprint returns to zero (``footprint``);
* engine time never moves backwards across observed events
  (``time-monotonic``).

Violations are *recorded*, not raised, so a single run reports every
broken law at once; mutation tests corrupt one counter at a time and
assert exactly that law fires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.task import SimTask
    from ..sim.accelerator import Accelerator
    from ..sim.metrics import RunMetrics

#: Every violation code the checker can emit (the invariant catalogue).
VIOLATION_CODES = (
    "task-conservation",
    "spawn-conservation",
    "pruning-conservation",
    "tree-completion",
    "match-conservation",
    "slot-occupancy",
    "cache-accounting",
    "token-accounting",
    "noc-conservation",
    "footprint",
    "time-monotonic",
)


@dataclass(frozen=True)
class Violation:
    """One broken conservation law."""

    code: str
    message: str
    cycle: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.code}] @{self.cycle:.0f}: {self.message}"


class InvariantChecker:
    """Independent bookkeeping reconciled against a live simulation."""

    def __init__(self, accel: "Accelerator") -> None:
        self.accel = accel
        self.violations: List[Violation] = []
        self._finalized = False

        # Task flow.
        self.tasks_started = 0
        self.tasks_completed = 0
        self.executed_per_depth: List[int] = [0] * accel.schedule.depth
        self.matches_seen = 0
        self.children_spawned = 0
        self.roots_added = 0

        # Tree lifecycle.
        self.tree_completions = 0
        self._done_tree_ids: Set[int] = set()
        self.partitions_received = 0

        # Memory traffic (counted independently of MemorySystem).
        self.l1_lines = 0
        self.windowed_lines = 0
        self.graph_lines = 0

        # NoC and tokens.
        self.noc_sends = 0
        self._pool_books: Dict[int, Dict[str, object]] = {}

        self._last_now = accel.engine.now

    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, accel: "Accelerator") -> "InvariantChecker":
        """Instrument every hook point of ``accel`` and return the checker."""
        checker = cls(accel)
        for pe in accel.pes:
            checker._wrap_pe(pe)
            checker._wrap_policy(pe.policy)
        checker._wrap_memory()
        return checker

    # -- wrapping ------------------------------------------------------
    def _violate(self, code: str, message: str) -> None:
        self.violations.append(Violation(code, message, self.accel.engine.now))

    def _observe_time(self) -> None:
        now = self.accel.engine.now
        if now < self._last_now:
            self._violate(
                "time-monotonic",
                f"engine time moved backwards: {self._last_now} -> {now}",
            )
        self._last_now = now

    def _wrap_pe(self, pe) -> None:
        original_start = pe._start_task
        original_complete = pe._complete_task
        width = pe.config.execution_width

        def start_task(task: "SimTask"):
            self._observe_time()
            result = original_start(task)
            self.tasks_started += 1
            if not 0 <= pe.slots_used <= width:
                self._violate(
                    "slot-occupancy",
                    f"pe{pe.pe_id} slots_used={pe.slots_used} "
                    f"outside [0, {width}] after task start",
                )
            return result

        def complete_task(task: "SimTask"):
            self._observe_time()
            result = original_complete(task)
            self.tasks_completed += 1
            self.executed_per_depth[task.depth] += 1
            if task.depth >= pe.schedule.max_depth:
                self.matches_seen += 1
            elif task.children_vertices is not None:
                # Snapshot before any later split-harvest truncation:
                # shipped candidates are counted exactly once, here.
                self.children_spawned += len(task.children_vertices)
            if pe.slots_used < 0:
                self._violate(
                    "slot-occupancy",
                    f"pe{pe.pe_id} slots_used={pe.slots_used} negative "
                    "after task completion",
                )
            return result

        pe._start_task = start_task
        pe._complete_task = complete_task

    def _wrap_policy(self, policy) -> None:
        original_add_root = policy.add_root
        original_tree_finished = policy._tree_finished

        def add_root(vertex: int):
            self._observe_time()
            self.roots_added += 1
            return original_add_root(vertex)

        def tree_finished():
            self._observe_time()
            self.tree_completions += 1
            return original_tree_finished()

        policy.add_root = add_root
        policy._tree_finished = tree_finished

        tree = getattr(policy, "tree", None)
        if tree is not None and hasattr(tree, "on_tree_done"):
            original_done = tree.on_tree_done

            def on_tree_done(tree_id: int):
                if tree_id in self._done_tree_ids:
                    self._violate(
                        "tree-completion",
                        f"search tree {tree_id} completed more than once",
                    )
                self._done_tree_ids.add(tree_id)
                return original_done(tree_id)

            tree.on_tree_done = on_tree_done
        if tree is not None and hasattr(tree, "tokens"):
            for depth, pool in tree.tokens.items():
                self._wrap_pool(policy.pe.pe_id, depth, pool)

        if hasattr(policy, "receive_partition"):
            original_receive = policy.receive_partition

            def receive_partition(partition):
                self._observe_time()
                self.partitions_received += 1
                return original_receive(partition)

            policy.receive_partition = receive_partition

    def _wrap_pool(self, pe_id: int, depth: int, pool) -> None:
        book = {"acquires": 0, "releases": 0, "pool": pool,
                "label": f"pe{pe_id}/depth{depth}"}
        self._pool_books[id(pool)] = book
        original_acquire = pool.acquire
        original_release = pool.release

        def acquire():
            token = original_acquire()
            if token is not None:
                book["acquires"] += 1
                self._check_pool(book)
            return token

        def release(token: int):
            result = original_release(token)
            book["releases"] += 1
            self._check_pool(book)
            return result

        pool.acquire = acquire
        pool.release = release

    def _check_pool(self, book: Dict[str, object]) -> None:
        pool = book["pool"]
        outstanding = book["acquires"] - book["releases"]
        if outstanding < 0:
            self._violate(
                "token-accounting",
                f"token pool {book['label']}: releases exceed acquires "
                f"({book['releases']} > {book['acquires']})",
            )
        elif pool.held != outstanding or pool.available < 0:
            self._violate(
                "token-accounting",
                f"token pool {book['label']}: held={pool.held} "
                f"available={pool.available} but acquires-releases={outstanding}",
            )

    def _wrap_memory(self) -> None:
        memory = self.accel.memory
        original_fetch = memory.fetch_intermediate
        original_fetch_line = memory.fetch_intermediate_line
        original_fetch_span = memory.fetch_intermediate_span
        original_graph = memory.fetch_graph
        original_graph_spans = memory.fetch_graph_spans
        original_transfer = memory.noc.transfer

        def fetch_intermediate(pe_id, line_addrs, now, *, record_window=True):
            n = len(line_addrs)
            self.l1_lines += n
            if record_window:
                self.windowed_lines += n
            return original_fetch(pe_id, line_addrs, now, record_window=record_window)

        def fetch_intermediate_line(pe_id, line_addr, now):
            self.l1_lines += 1
            return original_fetch_line(pe_id, line_addr, now)

        def fetch_intermediate_span(pe_id, first_line, last_line, now, *, record_window=True):
            n = last_line - first_line + 1
            self.l1_lines += n
            if record_window:
                self.windowed_lines += n
            return original_fetch_span(
                pe_id, first_line, last_line, now, record_window=record_window
            )

        def fetch_graph(pe_id, line_addrs, now):
            self.graph_lines += len(line_addrs)
            return original_graph(pe_id, line_addrs, now)

        def fetch_graph_spans(pe_id, spans, now):
            self.graph_lines += sum(last - first + 1 for first, last in spans)
            return original_graph_spans(pe_id, spans, now)

        def transfer(lines, ready_time):
            self.noc_sends += 1
            return original_transfer(lines, ready_time)

        memory.fetch_intermediate = fetch_intermediate
        memory.fetch_intermediate_line = fetch_intermediate_line
        memory.fetch_intermediate_span = fetch_intermediate_span
        memory.fetch_graph = fetch_graph
        memory.fetch_graph_spans = fetch_graph_spans
        memory.noc.transfer = transfer

    # -- reconciliation ------------------------------------------------
    def finalize(self, metrics: Optional["RunMetrics"] = None) -> List[Violation]:
        """Reconcile all books against the simulator; returns violations.

        Idempotent: a second call returns the first call's findings
        without double-recording them.
        """
        if self._finalized:
            return self.violations
        self._finalized = True
        accel = self.accel
        memory = accel.memory

        if self.tasks_started != self.tasks_completed:
            self._violate(
                "task-conservation",
                f"{self.tasks_started} tasks started but "
                f"{self.tasks_completed} completed",
            )
        pe_executed = sum(pe.tasks_executed for pe in accel.pes)
        if pe_executed != self.tasks_completed:
            self._violate(
                "task-conservation",
                f"PEs report {pe_executed} executed tasks, checker "
                f"observed {self.tasks_completed} completions",
            )
        if metrics is not None and metrics.tasks_executed != self.tasks_completed:
            self._violate(
                "task-conservation",
                f"metrics report {metrics.tasks_executed} executed tasks, "
                f"checker observed {self.tasks_completed}",
            )
        if metrics is not None and list(metrics.tasks_per_depth) != self.executed_per_depth:
            self._violate(
                "task-conservation",
                f"metrics tasks_per_depth={metrics.tasks_per_depth} but "
                f"checker observed {self.executed_per_depth}",
            )

        expected = self.roots_added + self.children_spawned
        if self.tasks_completed != expected:
            self._violate(
                "spawn-conservation",
                f"executed {self.tasks_completed} tasks but roots + spawned "
                f"children = {self.roots_added} + {self.children_spawned} "
                f"= {expected}",
            )

        ctx = accel.context
        if ctx.candidates_seen != ctx.children_kept + ctx.children_pruned:
            self._violate(
                "pruning-conservation",
                f"candidates_seen={ctx.candidates_seen} != kept+pruned="
                f"{ctx.children_kept}+{ctx.children_pruned}",
            )
        if ctx.children_kept != self.children_spawned:
            self._violate(
                "pruning-conservation",
                f"context kept {ctx.children_kept} children but completion "
                f"snapshots spawned {self.children_spawned}",
            )

        expected_trees = self.roots_added + self.partitions_received
        if self.tree_completions != expected_trees:
            self._violate(
                "tree-completion",
                f"{self.tree_completions} tree completions but roots + "
                f"partitions = {self.roots_added} + {self.partitions_received} "
                f"= {expected_trees}",
            )
        policy_trees = sum(pe.policy.trees_completed for pe in accel.pes)
        if policy_trees != self.tree_completions:
            self._violate(
                "tree-completion",
                f"policies report {policy_trees} completed trees, checker "
                f"observed {self.tree_completions}",
            )
        if metrics is not None and metrics.trees_completed != self.tree_completions:
            self._violate(
                "tree-completion",
                f"metrics report {metrics.trees_completed} completed trees, "
                f"checker observed {self.tree_completions}",
            )

        pe_matches = sum(pe.matches for pe in accel.pes)
        leaf_completions = (
            self.executed_per_depth[-1] if self.executed_per_depth else 0
        )
        if not (self.matches_seen == pe_matches == leaf_completions):
            self._violate(
                "match-conservation",
                f"leaf completions={leaf_completions}, checker matches="
                f"{self.matches_seen}, PE matches={pe_matches}",
            )
        if metrics is not None and metrics.matches != self.matches_seen:
            self._violate(
                "match-conservation",
                f"metrics report {metrics.matches} matches, checker "
                f"observed {self.matches_seen}",
            )

        l1_accesses = sum(c.hits + c.misses for c in memory.l1s)
        l1_misses = sum(c.misses for c in memory.l1s)
        if not (self.l1_lines == memory.intermediate_line_fetches == l1_accesses):
            self._violate(
                "cache-accounting",
                f"intermediate lines: checker={self.l1_lines}, memory counter="
                f"{memory.intermediate_line_fetches}, L1 hits+misses={l1_accesses}",
            )
        if self.graph_lines != memory.graph_line_fetches:
            self._violate(
                "cache-accounting",
                f"graph lines: checker={self.graph_lines}, memory counter="
                f"{memory.graph_line_fetches}",
            )
        l2_accesses = memory.l2.hits + memory.l2.misses
        if l2_accesses != self.graph_lines + l1_misses:
            self._violate(
                "cache-accounting",
                f"L2 accesses={l2_accesses} != graph lines + L1 misses = "
                f"{self.graph_lines} + {l1_misses}",
            )
        window_samples = sum(w.samples for w in memory.l1_windows)
        if window_samples != self.windowed_lines:
            self._violate(
                "cache-accounting",
                f"latency-window samples={window_samples} != windowed "
                f"intermediate lines={self.windowed_lines}",
            )

        for book in self._pool_books.values():
            self._check_pool(book)
            pool = book["pool"]
            if pool.held != 0:
                self._violate(
                    "token-accounting",
                    f"token pool {book['label']} still holds {pool.held} "
                    "token(s) after the run drained",
                )

        if not (self.noc_sends == memory.noc.messages):
            self._violate(
                "noc-conservation",
                f"checker observed {self.noc_sends} NoC sends but the NoC "
                f"counted {memory.noc.messages} messages",
            )
        if not (accel.partitions_sent == self.partitions_received == self.noc_sends):
            self._violate(
                "noc-conservation",
                f"partitions sent={accel.partitions_sent}, received="
                f"{self.partitions_received}, NoC sends={self.noc_sends}",
            )

        if accel._footprint != 0:
            self._violate(
                "footprint",
                f"live candidate-set footprint is {accel._footprint} bytes "
                "after the run drained (expected 0)",
            )
        if accel.peak_footprint < 0:
            self._violate(
                "footprint", f"peak footprint {accel.peak_footprint} negative"
            )
        return self.violations

    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        """Whether no law has been violated so far."""
        return not self.violations

    def report(self) -> str:
        """Human-readable digest of the checker's findings."""
        head = (
            f"invariants[{self.accel.policy_name}]: "
            f"{self.tasks_completed} tasks ({self.roots_added} roots + "
            f"{self.children_spawned} spawned), "
            f"{self.tree_completions} trees, {self.matches_seen} matches, "
            f"{self.l1_lines} L1 lines, {self.graph_lines} graph lines"
        )
        if not self.violations:
            return head + " — all invariants hold"
        lines = [head + f" — {len(self.violations)} VIOLATION(S):"]
        lines += [f"  {v}" for v in self.violations]
        return "\n".join(lines)


def checked_simulate(
    graph,
    schedule,
    *,
    policy: str = "shogun",
    config=None,
):
    """Simulate with an attached checker; returns ``(metrics, checker)``.

    The checker is already finalized against the returned metrics —
    callers inspect ``checker.violations`` / ``checker.report()``.
    """
    from ..sim.accelerator import Accelerator
    from ..sim.config import DEFAULT_CONFIG

    accel = Accelerator(graph, schedule, config or DEFAULT_CONFIG, policy)
    checker = InvariantChecker.attach(accel)
    metrics = accel.run()
    checker.finalize(metrics)
    return metrics, checker
