"""Differential validation harness: oracles, invariants, goldens, fuzz.

Simulator results are only trustworthy with explicit cross-checks (the
experience of every scheduler-simulation study); this package is the
correctness backbone the rest of the reproduction regresses against:

* :mod:`~repro.validate.oracle` — run all five scheduling policies plus
  the reference miner (and, on small graphs, the naive counter) on the
  same (graph, pattern) and assert identical match counts and per-depth
  task totals;
* :mod:`~repro.validate.invariants` — a non-invasive
  :class:`InvariantChecker` that attaches to a live
  :class:`~repro.sim.accelerator.Accelerator` (like
  :class:`~repro.sim.trace.TraceRecorder`) and verifies conservation
  laws while the simulation runs;
* :mod:`~repro.validate.golden` — committed ``RunMetrics`` JSON
  snapshots under ``tests/golden/`` with field-by-field diffing and a
  ``--update`` refresh path;
* :mod:`~repro.validate.fuzz` — randomized graphs + perturbed configs
  through oracle and invariant checks, writing a self-contained repro
  bundle on failure.

Everything is reachable from the command line via ``repro validate``
(see ``docs/validation.md``).
"""

from .fuzz import FuzzCase, FuzzReport, load_bundle, run_fuzz
from .golden import (
    GOLDEN_PATTERNS,
    GOLDEN_POLICIES,
    GoldenReport,
    check_golden,
    default_golden_dir,
    golden_matrix,
    load_snapshot,
    snapshot_path,
    update_golden,
)
from .invariants import InvariantChecker, Violation, checked_simulate
from .oracle import ORACLE_POLICIES, OracleReport, oracle_cell, run_oracle

__all__ = [
    "FuzzCase",
    "FuzzReport",
    "GOLDEN_PATTERNS",
    "GOLDEN_POLICIES",
    "GoldenReport",
    "InvariantChecker",
    "ORACLE_POLICIES",
    "OracleReport",
    "Violation",
    "check_golden",
    "checked_simulate",
    "default_golden_dir",
    "golden_matrix",
    "load_bundle",
    "load_snapshot",
    "oracle_cell",
    "run_fuzz",
    "run_oracle",
    "snapshot_path",
    "update_golden",
]
