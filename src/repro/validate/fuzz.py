"""Randomized differential testing with self-contained repro bundles.

Each fuzz case derives a per-case RNG from ``(seed, index)``, draws a
random graph (R-MAT / Erdős–Rényi / power-law configuration model, all
degree-sorted like the dataset stand-ins), a benchmark pattern and a
perturbed-but-valid :class:`~repro.sim.config.SimConfig`, then runs the
full cross-policy oracle with invariant checking enabled
(:func:`repro.validate.oracle.run_oracle` with ``check_invariants``).

On failure the case is written to disk as a **repro bundle**: a single
JSON file holding the seed, index, generator name + parameters, pattern
and config overrides — everything needed to rebuild the exact case with
:func:`load_bundle` / :func:`replay_bundle` on any machine (graph
generation is seeded, so no graph data needs shipping).  CI uploads the
bundle directory as an artifact; triage is ``repro validate fuzz
--replay <bundle.json>`` (see ``docs/validation.md``).
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from ..graph.csr import CSRGraph
from ..graph.generators import (
    degree_sorted,
    erdos_renyi_gnm,
    powerlaw_configuration,
    rmat,
)
from ..patterns.graphpi import benchmark_schedule
from ..sim.config import SimConfig
from .oracle import ORACLE_POLICIES, OracleReport, run_oracle

#: Patterns the fuzzer draws from: edge- and vertex-induced, depths 3–4.
FUZZ_PATTERNS = ("tc", "tt_e", "tt_v", "4cl", "4cyc_v", "dia_e")

#: Naive-counter guard for fuzz cases (kept small: many cases per burst).
FUZZ_NAIVE_LIMIT = 64

#: Bundle directory used when the caller does not pick one.
DEFAULT_BUNDLE_DIR = ".repro-fuzz-failures"


@dataclass
class FuzzCase:
    """One fully determined fuzz input (rebuildable from this record)."""

    index: int
    seed: int
    generator: str
    graph_params: Dict[str, object]
    pattern: str
    config_overrides: Dict[str, object]

    @property
    def label(self) -> str:
        return (
            f"fuzz#{self.index} seed={self.seed} {self.generator}"
            f"{self.graph_params} × {self.pattern}"
        )


def case_rng(seed: int, index: int) -> random.Random:
    """The per-case RNG: independent of every other case in the burst."""
    return random.Random((seed * 1_000_003 + index) & 0xFFFFFFFF)


def make_case(seed: int, index: int) -> FuzzCase:
    """Draw one case. Deterministic in (seed, index)."""
    rng = case_rng(seed, index)
    generator = rng.choice(("rmat", "erdos_renyi", "powerlaw"))
    graph_seed = rng.randrange(1 << 30)
    if generator == "rmat":
        params: Dict[str, object] = {
            "scale_log2": rng.randint(5, 7),
            "avg_degree": rng.choice((3.0, 4.0, 6.0)),
            "seed": graph_seed,
        }
    elif generator == "erdos_renyi":
        n = rng.randint(40, 120)
        params = {
            "n": n,
            "m": n * rng.randint(2, 4),
            "seed": graph_seed,
        }
    else:
        params = {
            "n": rng.randint(50, 120),
            "target_avg_degree": float(rng.randint(4, 8)),
            "exponent": rng.choice((1.9, 2.2, 2.4)),
            "seed": graph_seed,
        }
    pattern = rng.choice(FUZZ_PATTERNS)

    width = rng.choice((2, 4, 8))
    overrides: Dict[str, object] = {
        "num_pes": rng.randint(2, 6),
        "execution_width": width,
        "bunch_entries": width,
        "tokens_per_depth": width,
        "l1_kb": rng.choice((2, 4, 8)),
        "l2_kb": rng.choice((64, 128, 256)),
        "spm_kb": rng.choice((8, 16)),
        "segment_elements": rng.choice((4, 8, 16)),
        "root_dispatch": rng.choice(("static", "dynamic")),
    }
    if rng.random() < 0.3:
        overrides["enable_splitting"] = True
        overrides["lb_check_interval"] = rng.choice((200, 500))
    if rng.random() < 0.2:
        overrides["enable_merging"] = True
    roll = rng.random()
    if roll < 0.15:
        overrides["conservative_override"] = True
    elif roll < 0.3:
        overrides["conservative_override"] = False
    return FuzzCase(
        index=index,
        seed=seed,
        generator=generator,
        graph_params=params,
        pattern=pattern,
        config_overrides=overrides,
    )


def build_graph(case: FuzzCase) -> CSRGraph:
    """Rebuild the case's graph (seeded, so identical everywhere)."""
    builders: Dict[str, Callable[..., CSRGraph]] = {
        "rmat": rmat,
        "erdos_renyi": erdos_renyi_gnm,
        "powerlaw": powerlaw_configuration,
    }
    graph = builders[case.generator](**case.graph_params)
    # Match the dataset stand-ins: canonical descending-degree order.
    return degree_sorted(graph)


def build_config(case: FuzzCase) -> SimConfig:
    """Rebuild the case's perturbed simulator configuration."""
    return SimConfig(**case.config_overrides)


def run_case(
    case: FuzzCase,
    *,
    policies: Sequence[str] = ORACLE_POLICIES,
    naive_limit: int = FUZZ_NAIVE_LIMIT,
) -> OracleReport:
    """Run oracle + invariant checks on one case."""
    graph = build_graph(case)
    schedule = benchmark_schedule(case.pattern)
    return run_oracle(
        graph,
        schedule,
        config=build_config(case),
        policies=policies,
        naive_limit=naive_limit,
        label=f"{case.generator}#{case.index}(n={graph.num_vertices})",
        check_invariants=True,
    )


def write_bundle(
    out_dir: Path, case: FuzzCase, report: OracleReport
) -> Path:
    """Persist a failed case as a self-contained repro bundle."""
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"fuzz-seed{case.seed}-case{case.index}.json"
    payload = {
        "case": asdict(case),
        "failure": {
            "pattern": report.pattern,
            "reference_count": report.reference_count,
            "naive_count": report.naive_count,
            "disagreements": report.disagreements,
        },
        "replay": f"repro validate fuzz --replay {path}",
    }
    from ..ioutil import atomic_write_json

    atomic_write_json(path, payload, indent=2, sort_keys=True, newline=True)
    return path


def load_bundle(path: Path | str) -> FuzzCase:
    """Rebuild the :class:`FuzzCase` stored in a repro bundle."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return FuzzCase(**payload["case"])


def replay_bundle(
    path: Path | str, *, policies: Sequence[str] = ORACLE_POLICIES
) -> OracleReport:
    """Re-run the exact case a bundle describes (triage entry point)."""
    return run_case(load_bundle(path), policies=policies)


@dataclass
class FuzzReport:
    """Outcome of one fuzz burst."""

    runs: int
    seed: int
    failures: List[FuzzCase] = field(default_factory=list)
    bundles: List[Path] = field(default_factory=list)
    reports: List[OracleReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        if self.ok:
            return f"fuzz: {self.runs} case(s), seed {self.seed}: all passed"
        lines = [
            f"fuzz: {len(self.failures)}/{self.runs} case(s) FAILED "
            f"(seed {self.seed}):"
        ]
        for case, bundle in zip(self.failures, self.bundles):
            lines.append(f"  {case.label}")
            lines.append(f"    bundle: {bundle}")
        return "\n".join(lines)


def run_fuzz(
    runs: int,
    seed: int,
    *,
    out_dir: Optional[Path | str] = None,
    policies: Sequence[str] = ORACLE_POLICIES,
    naive_limit: int = FUZZ_NAIVE_LIMIT,
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Run ``runs`` random cases; write a repro bundle per failure."""
    bundle_dir = Path(out_dir) if out_dir is not None else Path(DEFAULT_BUNDLE_DIR)
    report = FuzzReport(runs=runs, seed=seed)
    for index in range(runs):
        case = make_case(seed, index)
        outcome = run_case(case, policies=policies, naive_limit=naive_limit)
        report.reports.append(outcome)
        if outcome.ok:
            if progress is not None:
                progress(f"{case.label}: ok")
            continue
        bundle = write_bundle(bundle_dir, case, outcome)
        report.failures.append(case)
        report.bundles.append(bundle)
        if progress is not None:
            progress(f"{case.label}: FAILED -> {bundle}")
            progress(outcome.render())
    return report
