"""Cross-policy differential oracle.

All five scheduling policies execute the identical logical workload (the
:class:`~repro.mining.tree.SearchContext` invariant), so for any (graph,
pattern) they must report the exact same match count *and* the same
per-depth executed-task totals as the reference software miner.  On
small graphs the naive counting engine (injective maps divided by the
automorphism count — a completely independent algorithm) is added as a
second, implementation-independent ground truth.

Two entry points:

* :func:`run_oracle` — operate on explicit graph/schedule objects (the
  fuzzer's path);
* :func:`oracle_cell` — operate on a (dataset, pattern, scale) cell via
  :func:`repro.experiments.runner.run_cell`, so oracle runs share the
  in-process memo and the orchestrator's persistent result cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..graph.csr import CSRGraph
from ..mining.engine import mine
from ..mining.naive import count_unique_subgraphs
from ..patterns.schedule import MatchingSchedule
from ..sim.metrics import RunMetrics

#: The five scheduling policies the paper evaluates (``fingers`` is an
#: alias of ``pseudo-dfs`` and would only duplicate work here).
ORACLE_POLICIES: Tuple[str, ...] = (
    "bfs", "dfs", "pseudo-dfs", "parallel-dfs", "shogun",
)

#: Run the naive counter only below this vertex count — it enumerates
#: injective maps and is exponential in pattern size.
NAIVE_VERTEX_LIMIT = 120


@dataclass
class PolicyOutcome:
    """One policy's answer for the oracle's (graph, pattern)."""

    policy: str
    matches: int
    tasks_per_depth: List[int]
    cycles: float


@dataclass
class OracleReport:
    """Everything one oracle evaluation produced."""

    label: str
    pattern: str
    reference_count: int
    reference_tasks_per_depth: List[int]
    naive_count: Optional[int] = None
    outcomes: List[PolicyOutcome] = field(default_factory=list)
    disagreements: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every implementation agreed."""
        return not self.disagreements

    def render(self) -> str:
        """Human-readable agreement matrix."""
        naive = (
            f" naive={self.naive_count}" if self.naive_count is not None
            else " naive=skipped"
        )
        lines = [
            f"oracle {self.label} × {self.pattern}: "
            f"reference={self.reference_count}{naive} "
            f"per-depth={self.reference_tasks_per_depth}"
        ]
        for out in self.outcomes:
            mark = "ok" if (
                out.matches == self.reference_count
                and out.tasks_per_depth == self.reference_tasks_per_depth
            ) else "MISMATCH"
            lines.append(
                f"  {out.policy:12s} matches={out.matches:<8d} "
                f"per-depth={out.tasks_per_depth} cycles={out.cycles:.0f}  {mark}"
            )
        for d in self.disagreements:
            lines.append(f"  !! {d}")
        return "\n".join(lines)


def _compare(report: OracleReport, outcome: PolicyOutcome) -> None:
    if outcome.matches != report.reference_count:
        report.disagreements.append(
            f"{outcome.policy}: {outcome.matches} matches, reference miner "
            f"found {report.reference_count}"
        )
    if outcome.tasks_per_depth != report.reference_tasks_per_depth:
        report.disagreements.append(
            f"{outcome.policy}: per-depth task totals {outcome.tasks_per_depth} "
            f"differ from the miner's {report.reference_tasks_per_depth}"
        )


def _maybe_naive(
    report: OracleReport,
    graph: CSRGraph,
    schedule: MatchingSchedule,
    naive_limit: int,
) -> None:
    if graph.num_vertices > naive_limit:
        return
    report.naive_count = count_unique_subgraphs(
        graph, schedule.pattern, induced=schedule.induced
    )
    if report.naive_count != report.reference_count:
        report.disagreements.append(
            f"naive counter found {report.naive_count} matches, reference "
            f"miner found {report.reference_count}"
        )


def run_oracle(
    graph: CSRGraph,
    schedule: MatchingSchedule,
    *,
    config=None,
    policies: Sequence[str] = ORACLE_POLICIES,
    naive_limit: int = NAIVE_VERTEX_LIMIT,
    label: str = "graph",
    check_invariants: bool = False,
) -> OracleReport:
    """Differential oracle on explicit graph/schedule objects.

    With ``check_invariants`` every simulation also runs under an
    attached :class:`~repro.validate.invariants.InvariantChecker`, and
    violations are reported as disagreements (the fuzzer's mode).
    """
    from ..sim.accelerator import simulate
    from .invariants import checked_simulate

    result = mine(graph, schedule)
    report = OracleReport(
        label=label,
        pattern=schedule.pattern.name,
        reference_count=result.count,
        reference_tasks_per_depth=list(result.stats.tasks_per_depth),
    )
    _maybe_naive(report, graph, schedule, naive_limit)
    for policy in policies:
        if check_invariants:
            metrics, checker = checked_simulate(
                graph, schedule, policy=policy, config=config
            )
            for violation in checker.violations:
                report.disagreements.append(f"{policy}: {violation}")
        else:
            metrics = simulate(graph, schedule, policy=policy, config=config)
        outcome = PolicyOutcome(
            policy=policy,
            matches=metrics.matches,
            tasks_per_depth=list(metrics.tasks_per_depth),
            cycles=metrics.cycles,
        )
        report.outcomes.append(outcome)
        _compare(report, outcome)
    return report


def oracle_cell(
    dataset: str,
    pattern: str,
    *,
    scale: Optional[float] = None,
    config=None,
    policies: Sequence[str] = ORACLE_POLICIES,
    naive_limit: int = NAIVE_VERTEX_LIMIT,
) -> OracleReport:
    """Differential oracle over one evaluation cell (cache-aware).

    Simulations route through :func:`repro.experiments.runner.run_cell`,
    so with :func:`repro.orchestrator.attach_persistent_cache` installed
    the oracle's cells are satisfied from — and contribute to — the
    persistent result cache.
    """
    from ..experiments import runner

    scale_val = scale if scale is not None else runner.default_scale()
    graph = runner.get_graph(dataset, scale_val)
    schedule = runner.get_schedule(pattern)
    result = mine(graph, schedule)
    report = OracleReport(
        label=f"{dataset}@{scale_val:g}",
        pattern=pattern,
        reference_count=result.count,
        reference_tasks_per_depth=list(result.stats.tasks_per_depth),
    )
    _maybe_naive(report, graph, schedule, naive_limit)
    for policy in policies:
        metrics: RunMetrics = runner.run_cell(
            dataset, pattern, policy,
            config=config, scale=scale_val, verify=False,
        )
        outcome = PolicyOutcome(
            policy=policy,
            matches=metrics.matches,
            tasks_per_depth=list(metrics.tasks_per_depth),
            cycles=metrics.cycles,
        )
        report.outcomes.append(outcome)
        _compare(report, outcome)
    return report
