"""Edge-list text I/O in the SNAP style used by the paper's datasets.

Format: one ``u v`` pair per line, ``#``-prefixed comment lines ignored,
arbitrary whitespace separation.  Files written by :func:`save_edge_list`
round-trip exactly through :func:`load_edge_list`.

Loading is vectorized: the whole file is tokenized with numpy (comment
lines masked out, integers parsed by a single ``astype``), and the
original line-by-line parser is kept as :func:`load_edge_list_reference`
— both the fallback for files the fast path cannot prove well-formed
(so malformed input always reports the same ``GraphError`` line number)
and the oracle the property tests compare against.
"""

from __future__ import annotations

import itertools
import os
from typing import List, Optional, Tuple

import numpy as np

from ..errors import GraphError
from .builders import from_edge_array, from_edges
from .csr import CSRGraph

#: ASCII whitespace, matching ``bytes.split()`` token boundaries.
_WS_BYTES = (0x20, 0x09, 0x0D, 0x0B, 0x0C)


def _parse_edge_bytes(data: bytes) -> Optional[np.ndarray]:
    """Vectorized parse of a well-formed edge list; None means fall back.

    Well-formed here is exactly two tokens on every non-comment,
    non-blank line with every token an integer literal.  Anything else —
    short lines (``GraphError`` + line number), long lines (extra tokens
    legally ignored), non-integers — is handed to the reference parser
    so behaviour and error reporting stay identical.
    """
    if not data:
        return np.empty((0, 2), dtype=np.int64)
    raw = np.frombuffer(data, dtype=np.uint8)
    is_nl = raw == 0x0A
    is_ws = is_nl.copy()
    for ws in _WS_BYTES:
        is_ws |= raw == ws
    token_start = ~is_ws
    token_start[1:] &= is_ws[:-1]
    starts = np.nonzero(token_start)[0]
    if starts.size == 0:  # blank/whitespace-only file: no edges
        return np.empty((0, 2), dtype=np.int64)
    # Line index per byte, then per token; token counts per line.
    line_of = np.zeros(len(raw), dtype=np.int64)
    np.cumsum(is_nl[:-1], out=line_of[1:])
    token_line = line_of[starts]
    num_lines = int(line_of[-1]) + 1
    counts = np.bincount(token_line, minlength=num_lines)
    nonempty = counts > 0
    # A line is a comment when its first token starts with '#'.
    first_token = np.searchsorted(token_line, np.nonzero(nonempty)[0], side="left")
    is_comment_line = np.zeros(num_lines, dtype=bool)
    is_comment_line[nonempty] = raw[starts[first_token]] == 0x23
    is_data_line = nonempty & ~is_comment_line
    if not np.all(counts[is_data_line] == 2):
        return None  # short line (error) or extra tokens (legal): fall back
    tokens: List[bytes] = data.split()
    keep = is_data_line[token_line]
    if not keep.all():
        tokens = list(itertools.compress(tokens, keep.tolist()))
    if not tokens:
        return np.empty((0, 2), dtype=np.int64)
    try:
        values = np.array(tokens, dtype="S").astype(np.int64)
    except (ValueError, OverflowError):
        return None  # non-integer token: fall back for the line number
    return values.reshape(-1, 2)


def load_edge_list(path: str | os.PathLike, *, name: str | None = None) -> CSRGraph:
    """Load a SNAP-style whitespace-separated edge list file."""
    base = name if name is not None else os.path.splitext(os.path.basename(path))[0]
    with open(path, "rb") as handle:
        data = handle.read()
    from .arena import default_graph_store, edge_list_key

    store = default_graph_store()
    key = edge_list_key(data, base) if store is not None else None
    if store is not None:
        cached = store.get_key(key, name=base)
        if cached is not None:
            return cached
    pairs = _parse_edge_bytes(data)
    if pairs is None:
        graph = load_edge_list_reference(path, name=base)
    else:
        graph = from_edge_array(pairs, name=base)
    if store is not None:
        try:
            store.put_key(key, graph)
        except OSError:
            pass
    return graph


def load_edge_list_reference(
    path: str | os.PathLike, *, name: str | None = None
) -> CSRGraph:
    """The line-by-line reference parser (exact ``GraphError`` lines)."""
    edges: List[Tuple[int, int]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            parts = text.split()
            if len(parts) < 2:
                raise GraphError(f"{path}:{lineno}: expected 'u v', got {text!r}")
            try:
                edges.append((int(parts[0]), int(parts[1])))
            except ValueError as exc:
                raise GraphError(f"{path}:{lineno}: non-integer vertex id") from exc
    base = name if name is not None else os.path.splitext(os.path.basename(path))[0]
    return from_edges(edges, name=base)


def save_edge_list(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write a graph as a SNAP-style edge list (one undirected edge per line)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# {graph.name}: {graph.num_vertices} vertices, {graph.num_edges} edges\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")
