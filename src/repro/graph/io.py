"""Edge-list text I/O in the SNAP style used by the paper's datasets.

Format: one ``u v`` pair per line, ``#``-prefixed comment lines ignored,
arbitrary whitespace separation.  Files written by :func:`save_edge_list`
round-trip exactly through :func:`load_edge_list`.
"""

from __future__ import annotations

import os
from typing import List, Tuple

from ..errors import GraphError
from .builders import from_edges
from .csr import CSRGraph


def load_edge_list(path: str | os.PathLike, *, name: str | None = None) -> CSRGraph:
    """Load a SNAP-style whitespace-separated edge list file."""
    edges: List[Tuple[int, int]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            parts = text.split()
            if len(parts) < 2:
                raise GraphError(f"{path}:{lineno}: expected 'u v', got {text!r}")
            try:
                edges.append((int(parts[0]), int(parts[1])))
            except ValueError as exc:
                raise GraphError(f"{path}:{lineno}: non-integer vertex id") from exc
    base = name if name is not None else os.path.splitext(os.path.basename(path))[0]
    return from_edges(edges, name=base)


def save_edge_list(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write a graph as a SNAP-style edge list (one undirected edge per line)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# {graph.name}: {graph.num_vertices} vertices, {graph.num_edges} edges\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")
