"""Dataset staging: binary graph store and shared-memory graph arena.

Two complementary mechanisms move graph structure to compute without
rebuilding it (see docs/orchestrator.md, "Dataset staging"):

* :class:`GraphStore` — a content-addressed binary cache of CSR arrays
  under ``<cache-root>/graphs/``.  A dataset's key digests its code,
  scale and the source of every graph-defining module, so repeated cold
  runs skip the synthetic generators (and edge-list text parsing)
  entirely while a behavioural change to the generators still turns the
  store cold.  The store also persists exact reference match counts per
  ``(graph, pattern)``, keyed by a wider salt that includes the miner.
* :class:`GraphArena` — parent-side ``multiprocessing.shared_memory``
  segments holding one graph's ``indptr``/``indices`` arrays.  The
  orchestrator stages every distinct ``(dataset, scale)`` once, passes
  the picklable :class:`ArenaHandle` descriptors to its workers, and
  each worker attaches **read-only, zero-copy** views instead of
  rebuilding the graph per process.

Both layers are pure caches of immutable inputs: every graph a consumer
observes is bit-identical to the one the builders produce, which is what
keeps every accounted simulator metric byte-stable through the staged
path (tests/golden is the referee).

Worker-side attachment keeps a per-process ``(code, scale) → CSRGraph``
memo.  Pool workers share the creating process's ``resource_tracker``
(the tracker fd is inherited on fork and forwarded on spawn), whose
registry is a set — a worker's duplicate registration on attach is a
no-op, and only the creator unlinks (guaranteed by the orchestrator on
success, failure and ``BrokenProcessPool``).  Crucially, workers must
*not* unregister on attach: that would strip the creator's registration
from the shared tracker, losing crash cleanup and making the creator's
own unlink-time unregister an error.
"""

from __future__ import annotations

import hashlib
import json
import os
import secrets
import time
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..ioutil import atomic_open, atomic_write_json
from .csr import CSRGraph

#: Bump when the on-disk graph entry format changes; part of every key,
#: so old entries become misses instead of needing a migration.
STORE_SCHEMA = 1

#: Modules whose source defines what a *graph* is (generation, CSR
#: normalization, parsing).  Editing any of them invalidates every
#: stored graph.
GRAPH_SALT_SOURCES = ("csr.py", "builders.py", "generators.py", "datasets.py", "io.py")

#: Additional package subtrees that define what a *match count* is.
COUNT_SALT_SOURCES = ("mining", "patterns")

_SHM_PREFIX = "repro-arena-"


# ----------------------------------------------------------------------
# environment knobs
# ----------------------------------------------------------------------

def _env_flag(name: str, default: str = "1") -> bool:
    return os.environ.get(name, default).lower() not in ("0", "false", "off")


def store_enabled() -> bool:
    """Whether the binary graph store is on (``REPRO_CACHE`` and
    ``REPRO_GRAPH_STORE`` must both be unset or truthy)."""
    return _env_flag("REPRO_CACHE") and _env_flag("REPRO_GRAPH_STORE")


def arena_enabled() -> bool:
    """Whether shared-memory staging is on (``REPRO_ARENA``)."""
    return _env_flag("REPRO_ARENA")


def _cache_root() -> Path:
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro-cache"))


# ----------------------------------------------------------------------
# content salts
# ----------------------------------------------------------------------

def _digest_sources(rels: Tuple[str, ...], package_root: Path) -> "hashlib._Hash":
    digest = hashlib.sha256()
    for rel in rels:
        path = package_root / rel
        sources = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for source in sources:
            digest.update(str(source.relative_to(package_root)).encode())
            digest.update(source.read_bytes())
    return digest


@lru_cache(maxsize=1)
def graph_salt() -> str:
    """Digest of the graph-defining source (or ``REPRO_CACHE_SALT``)."""
    env = os.environ.get("REPRO_CACHE_SALT")
    if env:
        return f"graph-{env}"
    package_root = Path(__file__).resolve().parent  # src/repro/graph
    digest = _digest_sources(GRAPH_SALT_SOURCES, package_root)
    digest.update(str(STORE_SCHEMA).encode())
    return digest.hexdigest()[:16]


@lru_cache(maxsize=1)
def count_salt() -> str:
    """Digest of the count-defining source: graphs plus the miner."""
    env = os.environ.get("REPRO_CACHE_SALT")
    if env:
        return f"count-{env}"
    package_root = Path(__file__).resolve().parents[1]  # src/repro
    digest = _digest_sources(COUNT_SALT_SOURCES, package_root)
    digest.update(graph_salt().encode())
    return digest.hexdigest()[:16]


def dataset_graph_key(code: str, scale: float) -> str:
    """Content-addressed key for one registry dataset at one scale."""
    blob = json.dumps(
        {"code": code, "scale": repr(float(scale)), "salt": graph_salt()},
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def edge_list_key(data: bytes, name: str) -> str:
    """Content-addressed key for a parsed edge-list file."""
    digest = hashlib.sha256()
    digest.update(b"edge-list\0")
    digest.update(name.encode("utf-8", "replace") + b"\0")
    digest.update(graph_salt().encode())
    digest.update(data)
    return digest.hexdigest()


# ----------------------------------------------------------------------
# binary graph store
# ----------------------------------------------------------------------

@dataclass
class GraphStoreInfo:
    """Aggregate statistics for ``repro cache graphs info``."""

    root: str
    graphs: int
    counts: int
    bytes: int
    salt: str

    def render(self) -> str:
        return (
            f"graph store:  {self.root}\n"
            f"graphs:       {self.graphs}\n"
            f"count files:  {self.counts}\n"
            f"size:         {self.bytes} bytes\n"
            f"graph salt:   {self.salt}"
        )


class GraphStore:
    """Content-addressed binary CSR cache (``<cache-root>/graphs/``).

    Layout mirrors the result cache: ``<root>/<key[:2]>/<key>.npz`` for
    graphs and ``<key>.counts.json`` sidecars for exact match counts.
    Writes are atomic (temp file + ``os.replace``); corrupt or
    stale-salt entries read as misses and are removed.
    """

    def __init__(self, root: "os.PathLike | str | None" = None) -> None:
        self.root = Path(root) if root is not None else _cache_root() / "graphs"

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.npz"

    def counts_path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.counts.json"

    # ------------------------------------------------------------------
    def get_key(self, key: str, *, name: str) -> Optional[CSRGraph]:
        """Load one graph by key, or None on miss/corruption."""
        path = self.path_for(key)
        try:
            with np.load(path, allow_pickle=False) as data:
                indptr = np.ascontiguousarray(data["indptr"], dtype=np.int64)
                indices = np.ascontiguousarray(data["indices"], dtype=np.int64)
            return CSRGraph(indptr, indices, name=name, validate=False)
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError):
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put_key(self, key: str, graph: CSRGraph) -> None:
        """Atomically persist one graph under ``key``."""
        with atomic_open(self.path_for(key), "wb") as handle:
            np.savez(handle, indptr=graph.indptr, indices=graph.indices)

    def get(self, code: str, scale: float) -> Optional[CSRGraph]:
        """Load one registry dataset, or None."""
        return self.get_key(dataset_graph_key(code, scale), name=code)

    def put(self, code: str, scale: float, graph: CSRGraph) -> None:
        """Persist one registry dataset."""
        self.put_key(dataset_graph_key(code, scale), graph)

    # ------------------------------------------------------------------
    # exact reference counts (sidecar per graph key)
    # ------------------------------------------------------------------
    def get_count(self, code: str, scale: float, pattern: str) -> Optional[int]:
        """Persisted exact match count, or None (stale salt = miss)."""
        path = self.counts_path_for(dataset_graph_key(code, scale))
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            entry = data[pattern]
            if entry.get("salt") != count_salt():
                return None
            return int(entry["count"])
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            return None

    def put_count(self, code: str, scale: float, pattern: str, count: int) -> None:
        """Merge one exact count into the dataset's sidecar (atomic)."""
        path = self.counts_path_for(dataset_graph_key(code, scale))
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            if not isinstance(data, dict):
                data = {}
        except (OSError, ValueError):
            data = {}
        data[pattern] = {"count": int(count), "salt": count_salt()}
        atomic_write_json(path, data)

    # ------------------------------------------------------------------
    def _entry_paths(self):
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if shard.is_dir() and len(shard.name) == 2:
                yield from sorted(shard.glob("*.npz"))
                yield from sorted(shard.glob("*.counts.json"))

    def info(self) -> GraphStoreInfo:
        graphs = counts = size = 0
        for path in self._entry_paths():
            if path.name.endswith(".npz"):
                graphs += 1
            else:
                counts += 1
            try:
                size += path.stat().st_size
            except OSError:
                pass
        return GraphStoreInfo(
            root=str(self.root), graphs=graphs, counts=counts,
            bytes=size, salt=graph_salt(),
        )

    def clear(self) -> int:
        """Remove every stored graph and count file; returns the count."""
        removed = 0
        for path in list(self._entry_paths()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for shard in list(self.root.iterdir()) if self.root.is_dir() else []:
            if shard.is_dir() and len(shard.name) == 2:
                try:
                    shard.rmdir()
                except OSError:
                    pass
        return removed


def default_graph_store() -> Optional[GraphStore]:
    """The environment-configured store, or None when disabled."""
    if not store_enabled():
        return None
    return GraphStore()


# ----------------------------------------------------------------------
# shared-memory arena
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ArenaHandle:
    """Picklable descriptor of one staged graph (crosses the pool)."""

    code: str
    scale: float
    graph_name: str
    shm_name: str
    indptr_len: int
    indices_len: int

    @property
    def key(self) -> Tuple[str, float]:
        return (self.code, float(self.scale))


_AVAILABLE: Optional[bool] = None


class GraphArena:
    """Parent-side owner of shared-memory graph segments.

    One segment per staged graph, holding ``indptr`` then ``indices``
    as contiguous ``int64``.  The creator is the only tracked owner;
    :meth:`close` (idempotent, also run by the context manager) closes
    and unlinks every segment, so neither success, failure nor a broken
    pool can leave ``/dev/shm`` residue.
    """

    def __init__(self) -> None:
        self._segments: List[object] = []
        self._handles: Dict[Tuple[str, float], ArenaHandle] = {}
        self._closed = False

    # ------------------------------------------------------------------
    @staticmethod
    def available() -> bool:
        """Whether shared-memory segments can be created here."""
        global _AVAILABLE
        if not arena_enabled():
            return False
        if _AVAILABLE is None:
            try:
                from multiprocessing import shared_memory

                probe = shared_memory.SharedMemory(create=True, size=8)
                probe.close()
                probe.unlink()
                _AVAILABLE = True
            except Exception:
                _AVAILABLE = False
        return _AVAILABLE

    # ------------------------------------------------------------------
    def stage(self, code: str, scale: float, graph: CSRGraph) -> ArenaHandle:
        """Copy one graph's CSR arrays into a fresh shared segment."""
        if self._closed:
            raise RuntimeError("arena is closed")
        key = (code, float(scale))
        if key in self._handles:
            return self._handles[key]
        from multiprocessing import shared_memory

        nbytes = graph.indptr.nbytes + graph.indices.nbytes
        shm = None
        for _ in range(8):  # name collisions are unlikely but possible
            name = f"{_SHM_PREFIX}{os.getpid()}-{secrets.token_hex(6)}"
            try:
                shm = shared_memory.SharedMemory(
                    create=True, size=max(nbytes, 8), name=name
                )
                break
            except FileExistsError:
                continue
        if shm is None:  # pragma: no cover - 8 collisions in a row
            raise OSError("could not allocate a shared-memory segment name")
        try:
            view = np.ndarray(graph.indptr.shape, dtype=np.int64, buffer=shm.buf)
            view[:] = graph.indptr
            view = np.ndarray(
                graph.indices.shape, dtype=np.int64,
                buffer=shm.buf, offset=graph.indptr.nbytes,
            )
            view[:] = graph.indices
            del view  # release the exported buffer so close() can succeed
        except BaseException:
            shm.close()
            try:
                shm.unlink()
            except OSError:
                pass
            raise
        handle = ArenaHandle(
            code=code, scale=float(scale), graph_name=graph.name,
            shm_name=shm.name, indptr_len=len(graph.indptr),
            indices_len=len(graph.indices),
        )
        self._segments.append(shm)
        self._handles[key] = handle
        return handle

    def handles(self) -> List[ArenaHandle]:
        return list(self._handles.values())

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close and unlink every segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for shm in self._segments:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - lingering export
                pass
            try:
                shm.unlink()
            except (FileNotFoundError, OSError):
                pass
        self._segments = []
        self._handles = {}

    def __enter__(self) -> "GraphArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - belt and braces
        try:
            self.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
# worker-side attachment
# ----------------------------------------------------------------------

#: Handles announced by the pool initializer, by ``(code, scale)``.
_HANDLES: Dict[Tuple[str, float], ArenaHandle] = {}
#: Per-process attached graphs (the zero-rebuild memo).
_ATTACHED: Dict[Tuple[str, float], CSRGraph] = {}
#: Attached segments, kept referenced so their mappings stay alive.
_SEGMENTS: List[object] = []


def attach(handle: ArenaHandle) -> CSRGraph:
    """Attach one staged graph read-only (memoized per process).

    The returned :class:`CSRGraph` wraps zero-copy, non-writable views
    of the shared segment.  Attaching re-registers the name with the
    resource tracker shared with the creator — a set, so a no-op — and
    deliberately does not unregister: only the creator unlinks, and its
    unlink must find the registration intact.
    """
    key = handle.key
    if key in _ATTACHED:
        return _ATTACHED[key]
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=handle.shm_name)
    indptr = np.ndarray((handle.indptr_len,), dtype=np.int64, buffer=shm.buf)
    indices = np.ndarray(
        (handle.indices_len,), dtype=np.int64,
        buffer=shm.buf, offset=handle.indptr_len * 8,
    )
    indptr.flags.writeable = False
    indices.flags.writeable = False
    graph = CSRGraph(indptr, indices, name=handle.graph_name, validate=False)
    _SEGMENTS.append(shm)
    _ATTACHED[key] = graph
    from . import datasets

    datasets._CACHE[key] = graph  # load_dataset() now resolves to the arena
    return graph


def worker_init(handles: List[ArenaHandle]) -> None:
    """Pool initializer: announce and eagerly attach every staged graph.

    Attachment failures are silently ignored — the worker falls back to
    the binary store / rebuild path with identical results.
    """
    for handle in handles:
        _HANDLES[handle.key] = handle
        try:
            attach(handle)
        except Exception:
            pass


def resolve_graph(
    code: str,
    scale: float,
    handle: Optional[ArenaHandle] = None,
) -> Tuple[CSRGraph, str, float]:
    """Materialize one dataset the cheapest way available.

    Returns ``(graph, source, seconds)`` where ``source`` is one of
    ``arena`` (shared-memory attach), ``memo`` (already materialized in
    this process — the parent's serial path or a forked worker's
    inheritance), ``binary-cache`` (the :class:`GraphStore`) or
    ``rebuilt`` (the synthetic generator ran).
    """
    key = (code, float(scale))
    start = time.perf_counter()
    if key in _ATTACHED:
        return _ATTACHED[key], "arena", time.perf_counter() - start
    from . import datasets

    if key in datasets._CACHE:
        return datasets._CACHE[key], "memo", time.perf_counter() - start
    staged = handle if handle is not None else _HANDLES.get(key)
    if staged is not None:
        try:
            graph = attach(staged)
            return graph, "arena", time.perf_counter() - start
        except Exception:
            pass
    graph, source = datasets.load_dataset_with_source(code, scale=scale)
    return graph, source, time.perf_counter() - start


def live_segment_names() -> "set[str]":
    """Names of every live ``repro-arena-*`` segment on this host.

    The shm-hygiene invariant — no sweep, daemon, worker death or chaos
    scenario may leave a segment behind — is asserted against this by
    the test suites and mirrors the CI jobs' ``ls /dev/shm`` check.
    """
    try:
        return {
            name for name in os.listdir("/dev/shm")
            if name.startswith(_SHM_PREFIX)
        }
    except OSError:  # no /dev/shm on this platform
        return set()


def _reset_local() -> None:
    """Drop this process's attachments (tests only)."""
    _HANDLES.clear()
    _ATTACHED.clear()
    for shm in _SEGMENTS:
        try:
            shm.close()
        except Exception:
            pass
    _SEGMENTS.clear()
