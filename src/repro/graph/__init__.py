"""Graph substrate: CSR graphs, builders, synthetic datasets, statistics."""

from .arena import ArenaHandle, GraphArena, GraphStore, default_graph_store
from .builders import (
    from_adjacency,
    from_edge_array,
    from_edges,
    from_networkx,
    induced_subgraph,
    relabel_by_degree,
)
from .csr import GRAPH_REGION_BASE, VERTEX_BYTES, CSRGraph, NeighborArena, empty_graph
from .datasets import (
    DatasetSpec,
    dataset_codes,
    get_spec,
    load_dataset,
    load_dataset_with_source,
)
from .generators import (
    degree_sorted,
    rmat,
    erdos_renyi_gnm,
    powerlaw_cluster,
    powerlaw_configuration,
    random_regularish,
)
from .io import load_edge_list, load_edge_list_reference, save_edge_list
from .stats import GraphStats, compute_stats, degree_skewness, global_clustering, triangle_count

__all__ = [
    "ArenaHandle",
    "CSRGraph",
    "GraphArena",
    "GraphStore",
    "NeighborArena",
    "DatasetSpec",
    "GraphStats",
    "GRAPH_REGION_BASE",
    "VERTEX_BYTES",
    "compute_stats",
    "default_graph_store",
    "dataset_codes",
    "degree_skewness",
    "degree_sorted",
    "empty_graph",
    "erdos_renyi_gnm",
    "from_adjacency",
    "from_edge_array",
    "from_edges",
    "from_networkx",
    "get_spec",
    "global_clustering",
    "induced_subgraph",
    "load_dataset",
    "load_dataset_with_source",
    "load_edge_list",
    "load_edge_list_reference",
    "powerlaw_cluster",
    "powerlaw_configuration",
    "random_regularish",
    "relabel_by_degree",
    "rmat",
    "save_edge_list",
    "triangle_count",
]
