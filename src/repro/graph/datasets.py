"""Registry of the six evaluated datasets (Table 4) as synthetic stand-ins.

The paper evaluates Wiki-Vote, AstroPh, Youtube, Patents, LiveJournal and
Orkut.  Offline we substitute seeded synthetic graphs that preserve the
properties the evaluation narrative depends on (see DESIGN.md §1):

======  ==================  =============================================
code    paper dataset       stand-in character
======  ==================  =============================================
``wi``  Wiki-Vote           small, fairly dense, skewed degrees
``as``  AstroPh             small collaboration graph, high clustering
``yo``  Youtube             sparse, *very* skewed, low diameter
``pa``  Patents             sparse, low degree variance
``lj``  LiveJournal         larger, moderate skew, higher degree
``or``  Orkut               high average degree (memory-bandwidth bound)
======  ==================  =============================================

Graphs are scaled so a Python event simulator can run the full evaluation
grid; a ``scale`` knob lets benchmarks grow or shrink every dataset
proportionally.  All graphs are relabelled by descending degree, the
canonical order assumed by the symmetry-breaking restrictions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..errors import GraphError
from .csr import CSRGraph
from .generators import (
    degree_sorted,
    powerlaw_cluster,
    powerlaw_configuration,
    random_regularish,
)

#: Dataset codes in the order the paper tables list them.
DATASET_CODES: Tuple[str, ...] = ("wi", "as", "yo", "pa", "lj", "or")


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one evaluated dataset."""

    code: str
    paper_name: str
    paper_vertices: str
    paper_edges: str
    builder: Callable[[float], CSRGraph]
    notes: str


def _scaled(n: int, scale: float, minimum: int = 32) -> int:
    return max(minimum, int(round(n * scale)))


def _build_wi(scale: float) -> CSRGraph:
    # Wiki-Vote is a core-periphery graph: a densely interconnected set
    # of high-degree vertices drives both its clique counts and the task
    # runtime variance behind the paper's 20-PE load-imbalance study
    # (Figure 11).  The stand-in plants a random dense core over the
    # hubs of a skewed configuration-model graph.
    import numpy as np

    n = _scaled(360, scale)
    g = powerlaw_configuration(
        n,
        target_avg_degree=14.0,
        exponent=2.0,
        seed=101,
        max_degree=max(16, n // 2),
        name="wi",
    )
    hubs = list(np.argsort(-g.degrees)[: max(12, n // 15)])
    rng = np.random.default_rng(1101)
    extra = [
        (int(hubs[i]), int(hubs[j]))
        for i in range(len(hubs))
        for j in range(i + 1, len(hubs))
        if rng.random() < 0.6
    ]
    from .builders import from_edges

    combined = from_edges(
        list(g.edges()) + extra, num_vertices=n, name="wi"
    )
    return degree_sorted(combined)


def _build_as(scale: float) -> CSRGraph:
    g = powerlaw_cluster(
        _scaled(900, scale),
        edges_per_vertex=6,
        triangle_prob=0.6,
        seed=202,
        name="as",
    )
    return degree_sorted(g)


def _build_yo(scale: float) -> CSRGraph:
    n = _scaled(2600, scale)
    g = powerlaw_configuration(
        n,
        target_avg_degree=4.0,
        exponent=1.8,
        seed=303,
        max_degree=max(8, n // 3),
        name="yo",
    )
    return degree_sorted(g)


def _build_pa(scale: float) -> CSRGraph:
    g = random_regularish(
        _scaled(3400, scale),
        degree=6,
        seed=404,
        jitter=0.3,
        name="pa",
    )
    return degree_sorted(g)


def _build_lj(scale: float) -> CSRGraph:
    g = powerlaw_configuration(
        _scaled(2200, scale),
        target_avg_degree=10.0,
        exponent=2.3,
        seed=505,
        name="lj",
    )
    return degree_sorted(g)


def _build_or(scale: float) -> CSRGraph:
    g = powerlaw_configuration(
        _scaled(1000, scale),
        target_avg_degree=20.0,
        exponent=2.5,
        seed=606,
        name="or",
    )
    return degree_sorted(g)


REGISTRY: Dict[str, DatasetSpec] = {
    "wi": DatasetSpec(
        "wi", "Wiki-Vote", "7.12 K", "100.37 K", _build_wi,
        "small graph, fully on-chip cacheable; skewed degrees",
    ),
    "as": DatasetSpec(
        "as", "AstroPh", "18.77 K", "198.11 K", _build_as,
        "small collaboration graph with high clustering",
    ),
    "yo": DatasetSpec(
        "yo", "Youtube", "1.13 M", "2.99 M", _build_yo,
        "medium, very low average degree, very high skew",
    ),
    "pa": DatasetSpec(
        "pa", "Patents", "3.77 M", "16.52 M", _build_pa,
        "medium, very low average degree, low skew",
    ),
    "lj": DatasetSpec(
        "lj", "LiveJournal", "4.00 M", "34.68 M", _build_lj,
        "large, memory-bound neighbor-set access",
    ),
    "or": DatasetSpec(
        "or", "Orkut", "3.07 M", "117.19 M", _build_or,
        "large, highest average degree",
    ),
}

_CACHE: Dict[Tuple[str, float], CSRGraph] = {}


def dataset_codes() -> List[str]:
    """Dataset codes in the paper's order."""
    return list(DATASET_CODES)


def get_spec(code: str) -> DatasetSpec:
    """Look up the :class:`DatasetSpec` for a dataset code."""
    try:
        return REGISTRY[code]
    except KeyError:
        raise GraphError(
            f"unknown dataset {code!r}; known: {sorted(REGISTRY)}"
        ) from None


def load_dataset(code: str, *, scale: float = 1.0) -> CSRGraph:
    """Build (and memoize) the synthetic stand-in for a dataset code.

    ``scale`` multiplies the vertex count; the same seeds are used at all
    scales, so results at a given scale are fully reproducible.  Cold
    processes consult the binary graph store first (see
    :mod:`repro.graph.arena`), so repeated runs skip generation.
    """
    return load_dataset_with_source(code, scale=scale)[0]


def load_dataset_with_source(code: str, *, scale: float = 1.0) -> Tuple[CSRGraph, str]:
    """Like :func:`load_dataset`, also reporting how the graph arrived.

    The source is ``"memo"`` (in-process cache), ``"binary-cache"`` (the
    content-addressed :class:`~repro.graph.arena.GraphStore`) or
    ``"rebuilt"`` (the synthetic generator ran; the result is persisted
    to the store when one is enabled).
    """
    if scale <= 0:
        raise GraphError("scale must be positive")
    key = (code, float(scale))
    if key in _CACHE:
        return _CACHE[key], "memo"
    spec = get_spec(code)  # validates the code before any store probe
    from .arena import default_graph_store

    store = default_graph_store()
    if store is not None:
        graph = store.get(code, float(scale))
        if graph is not None:
            _CACHE[key] = graph
            return graph, "binary-cache"
    graph = spec.builder(float(scale))
    _CACHE[key] = graph
    if store is not None:
        try:
            store.put(code, float(scale), graph)
        except OSError:  # a read-only checkout must not break loading
            pass
    return graph, "rebuilt"


def clear_cache() -> None:
    """Drop memoized graphs (mainly for tests)."""
    _CACHE.clear()
