"""Seeded synthetic graph generators.

The paper evaluates on six SNAP graphs (Table 4).  Those datasets are not
available offline and are far too large for a Python cycle simulator, so
the reproduction uses scaled-down synthetic stand-ins whose *qualitative*
properties match what the paper's analysis actually relies on:

* size class (small / medium / large relative to the on-chip caches),
* average degree (computation density),
* degree skewness (task-runtime variance, which drives barrier idle time
  and load imbalance),
* clustering (clique-type pattern frequency).

All generators are deterministic given a seed and return canonical
:class:`~repro.graph.csr.CSRGraph` objects.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..errors import GraphError
from .builders import from_edges, relabel_by_degree
from .csr import CSRGraph


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def erdos_renyi_gnm(n: int, m: int, seed: int = 0, *, name: str = "gnm") -> CSRGraph:
    """Uniform random simple graph with ``n`` vertices and ``m`` edges."""
    if n < 0 or m < 0:
        raise GraphError("n and m must be non-negative")
    max_m = n * (n - 1) // 2
    if m > max_m:
        raise GraphError(f"m={m} exceeds the maximum {max_m} for n={n}")
    rng = _rng(seed)
    chosen: set = set()
    edges: List[Tuple[int, int]] = []
    # Rejection sampling is fine for the sparse regimes we use.
    while len(edges) < m:
        need = m - len(edges)
        us = rng.integers(0, n, size=need * 2 + 8)
        vs = rng.integers(0, n, size=need * 2 + 8)
        for u, v in zip(us, vs):
            if u == v:
                continue
            key = (min(u, v), max(u, v))
            if key in chosen:
                continue
            chosen.add(key)
            edges.append(key)
            if len(edges) == m:
                break
    return from_edges(edges, num_vertices=n, name=name)


def powerlaw_configuration(
    n: int,
    target_avg_degree: float,
    exponent: float = 2.2,
    seed: int = 0,
    *,
    min_degree: int = 1,
    max_degree: int | None = None,
    name: str = "powerlaw",
) -> CSRGraph:
    """Configuration-model graph with a truncated power-law degree sequence.

    Degrees are drawn from ``P(k) ~ k^-exponent`` on
    ``[min_degree, max_degree]``, rescaled so the mean matches
    ``target_avg_degree``, then stubs are paired uniformly at random.
    Self loops and parallel edges produced by the pairing are dropped, so
    the realized average degree is slightly below the target for very
    skewed sequences — exactly the behaviour of real scale-free graphs.
    """
    if n <= 1:
        raise GraphError("powerlaw_configuration needs n >= 2")
    rng = _rng(seed)
    if max_degree is None:
        max_degree = max(min_degree + 1, int(np.sqrt(n) * target_avg_degree / 2))
    max_degree = min(max_degree, n - 1)
    ks = np.arange(min_degree, max_degree + 1, dtype=np.float64)
    probs = ks ** (-exponent)
    probs /= probs.sum()
    degrees = rng.choice(ks.astype(np.int64), size=n, p=probs)
    # Rescale the mean towards the target by stochastic rounding.
    mean = degrees.mean()
    if mean > 0:
        scale = target_avg_degree / mean
        scaled = degrees * scale
        degrees = np.floor(scaled).astype(np.int64)
        degrees += (rng.random(n) < (scaled - degrees)).astype(np.int64)
    degrees = np.clip(degrees, min_degree, max_degree)
    if degrees.sum() % 2 == 1:
        degrees[int(rng.integers(0, n))] += 1
    stubs = np.repeat(np.arange(n, dtype=np.int64), degrees)
    rng.shuffle(stubs)
    half = len(stubs) // 2
    edges = list(zip(stubs[:half].tolist(), stubs[half : 2 * half].tolist()))
    return from_edges(edges, num_vertices=n, name=name)


def powerlaw_cluster(
    n: int,
    edges_per_vertex: int,
    triangle_prob: float,
    seed: int = 0,
    *,
    name: str = "plc",
) -> CSRGraph:
    """Holme–Kim growing graph: preferential attachment + triangle closure.

    Produces the high clustering typical of collaboration networks such as
    AstroPh.  Each arriving vertex attaches ``edges_per_vertex`` edges; with
    probability ``triangle_prob`` an attachment step closes a triangle with
    a random neighbor of the previously chosen target.
    """
    if edges_per_vertex < 1:
        raise GraphError("edges_per_vertex must be >= 1")
    if not 0.0 <= triangle_prob <= 1.0:
        raise GraphError("triangle_prob must be in [0, 1]")
    if n < edges_per_vertex + 1:
        raise GraphError("n must exceed edges_per_vertex")
    rng = _rng(seed)
    adjacency: List[set] = [set() for _ in range(n)]
    repeated: List[int] = []  # vertices repeated once per degree (pref. attachment)

    # Seed clique over the first m+1 vertices.
    m = edges_per_vertex
    for u in range(m + 1):
        for v in range(u + 1, m + 1):
            adjacency[u].add(v)
            adjacency[v].add(u)
            repeated.extend((u, v))

    for u in range(m + 1, n):
        targets: set = set()
        last_target = None
        while len(targets) < m:
            close = (
                last_target is not None
                and adjacency[last_target]
                and rng.random() < triangle_prob
            )
            if close:
                nbrs = [w for w in adjacency[last_target] if w != u and w not in targets]
                if nbrs:
                    t = int(nbrs[int(rng.integers(0, len(nbrs)))])
                    targets.add(t)
                    last_target = t
                    continue
            t = int(repeated[int(rng.integers(0, len(repeated)))])
            if t != u and t not in targets:
                targets.add(t)
                last_target = t
        for t in targets:
            adjacency[u].add(t)
            adjacency[t].add(u)
            repeated.extend((u, t))

    edges = [(u, v) for u in range(n) for v in adjacency[u] if u < v]
    return from_edges(edges, num_vertices=n, name=name)


def random_regularish(
    n: int,
    degree: int,
    seed: int = 0,
    *,
    jitter: float = 0.25,
    name: str = "regularish",
) -> CSRGraph:
    """Low-skew graph: near-constant degrees with small multiplicative jitter.

    Stands in for citation-style graphs (Patents) whose degree variance is
    small, so task runtimes are uniform and barriers cost little.
    """
    rng = _rng(seed)
    degs = np.maximum(
        1, np.round(degree * (1.0 + jitter * (rng.random(n) - 0.5) * 2)).astype(np.int64)
    )
    degs = np.minimum(degs, n - 1)
    if degs.sum() % 2 == 1:
        degs[int(rng.integers(0, n))] += 1
    stubs = np.repeat(np.arange(n, dtype=np.int64), degs)
    rng.shuffle(stubs)
    half = len(stubs) // 2
    edges = list(zip(stubs[:half].tolist(), stubs[half : 2 * half].tolist()))
    return from_edges(edges, num_vertices=n, name=name)


def rmat(
    scale_log2: int,
    avg_degree: float,
    seed: int = 0,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    name: str = "rmat",
) -> CSRGraph:
    """Recursive-matrix (R-MAT/Kronecker) generator.

    The standard synthetic workload of the accelerator literature
    (Graph500 uses ``a,b,c = 0.57,0.19,0.19``): each edge picks one
    quadrant of the adjacency matrix recursively ``scale_log2`` times,
    yielding a skewed, community-free graph.  Self loops and duplicates
    are dropped, so the realized edge count is slightly below
    ``n * avg_degree / 2``.
    """
    if scale_log2 < 1 or scale_log2 > 24:
        raise GraphError("scale_log2 must be in [1, 24]")
    if not 0.0 < a + b + c < 1.0:
        raise GraphError("quadrant probabilities must sum below 1")
    rng = _rng(seed)
    n = 1 << scale_log2
    num_edges = max(1, int(n * avg_degree / 2))
    # Vectorized quadrant walk: one (levels x edges) random draw.
    draws = rng.random((scale_log2, num_edges))
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    ab, abc = a + b, a + b + c
    for level in range(scale_log2):
        bit = 1 << (scale_log2 - 1 - level)
        d = draws[level]
        # Quadrants: [0,a) -> (0,0); [a,a+b) -> (0,1); [a+b,a+b+c) -> (1,0);
        # the remainder -> (1,1).
        right = ((d >= a) & (d < ab)) | (d >= abc)
        down = d >= ab
        dst += bit * right.astype(np.int64)
        src += bit * down.astype(np.int64)
    edges = list(zip(src.tolist(), dst.tolist()))
    return from_edges(edges, num_vertices=n, name=name)


def degree_sorted(graph: CSRGraph) -> CSRGraph:
    """Relabel a generated graph by descending degree (mining-canonical)."""
    out = relabel_by_degree(graph, descending=True)
    out.name = graph.name
    return out
