"""Builders that turn raw edge data into validated :class:`CSRGraph` objects.

All builders normalize to the library-wide canonical form: undirected,
simple (no self loops, no parallel edges), sorted adjacency.  The degree
relabelling helper implements the standard graph-mining preprocessing step
(used by GraphPi / FlexMiner / FINGERS alike) of renumbering vertices by
descending degree so that symmetry-breaking restrictions prune early.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from ..errors import GraphError
from .csr import CSRGraph


def from_edges(
    edges: Iterable[Tuple[int, int]],
    num_vertices: int | None = None,
    *,
    name: str = "graph",
) -> CSRGraph:
    """Build an undirected simple CSR graph from an edge iterable.

    Self loops are dropped; duplicate and reversed duplicates are merged.
    ``num_vertices`` may be given to include isolated trailing vertices;
    otherwise it is inferred as ``max vertex id + 1``.
    """
    pairs = []
    for e in edges:
        try:
            u, v = int(e[0]), int(e[1])
        except (TypeError, ValueError, IndexError) as exc:
            raise GraphError(f"bad edge {e!r}") from exc
        pairs.append((u, v))
    arr = (
        np.asarray(pairs, dtype=np.int64)
        if pairs
        else np.empty((0, 2), dtype=np.int64)
    )
    return from_edge_array(arr, num_vertices, name=name)


def from_edge_array(
    pairs: np.ndarray,
    num_vertices: int | None = None,
    *,
    name: str = "graph",
) -> CSRGraph:
    """Vectorized :func:`from_edges` over an ``(E, 2)`` integer array.

    Identical normalization and error behaviour: negative ids raise,
    self loops are dropped (after contributing to the inferred vertex
    count), duplicates and reversed duplicates merge.
    """
    arr = np.ascontiguousarray(pairs, dtype=np.int64)
    if arr.size == 0:
        arr = arr.reshape(0, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise GraphError(f"edge array must be (E, 2), got shape {arr.shape}")

    max_v = -1
    if len(arr):
        negative = arr < 0
        if negative.any():
            u, v = arr[np.nonzero(negative.any(axis=1))[0][0]]
            raise GraphError(f"negative vertex id in edge ({u}, {v})")
        max_v = int(arr.max())

    inferred = max_v + 1
    if num_vertices is None:
        num_vertices = inferred
    elif num_vertices < inferred:
        raise GraphError(
            f"num_vertices={num_vertices} but edges reference vertex {max_v}"
        )

    # Normalize (u < v) and drop self loops, then merge duplicates.
    arr = arr[arr[:, 0] != arr[:, 1]]
    if not len(arr):
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        return CSRGraph(indptr, np.empty(0, dtype=np.int64), name=name, validate=False)
    arr = np.stack([arr.min(axis=1), arr.max(axis=1)], axis=1)
    arr = np.unique(arr, axis=0)
    # Symmetrize: every undirected edge appears once per endpoint.
    src = np.concatenate([arr[:, 0], arr[:, 1]])
    dst = np.concatenate([arr[:, 1], arr[:, 0]])
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    counts = np.bincount(src, minlength=num_vertices)
    indptr[1:] = np.cumsum(counts)
    return CSRGraph(indptr, dst, name=name, validate=False)


def from_adjacency(
    adjacency: Mapping[int, Sequence[int]] | Sequence[Sequence[int]],
    *,
    name: str = "graph",
) -> CSRGraph:
    """Build a graph from an adjacency mapping or list of neighbor lists."""
    if isinstance(adjacency, Mapping):
        items: Iterable[Tuple[int, Sequence[int]]] = adjacency.items()
        num_vertices = max(adjacency.keys(), default=-1) + 1
    else:
        items = enumerate(adjacency)
        num_vertices = len(adjacency)
    edges = []
    for u, nbrs in items:
        for v in nbrs:
            edges.append((u, int(v)))
            num_vertices = max(num_vertices, int(v) + 1)
    return from_edges(edges, num_vertices=num_vertices, name=name)


def from_networkx(nx_graph, *, name: str | None = None) -> CSRGraph:
    """Convert a ``networkx`` graph (relabelling nodes to ``0..n-1``)."""
    nodes = sorted(nx_graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    edges = [(index[u], index[v]) for u, v in nx_graph.edges()]
    return from_edges(
        edges,
        num_vertices=len(nodes),
        name=name if name is not None else str(getattr(nx_graph, "name", "graph") or "graph"),
    )


def relabel_by_degree(graph: CSRGraph, *, descending: bool = True) -> CSRGraph:
    """Renumber vertices by degree (stable sort; default descending).

    Pattern-aware miners apply symmetry-breaking restrictions of the form
    ``u_i < u_j`` on vertex indices; relabelling by descending degree makes
    the high-degree vertices (which dominate the work) come first so that
    the restriction prunes candidate scans as early as possible.
    """
    degs = graph.degrees
    key = -degs if descending else degs
    order = np.argsort(key, kind="stable")
    rank = np.empty_like(order)
    rank[order] = np.arange(len(order))
    edges = [(int(rank[u]), int(rank[v])) for u, v in graph.edges()]
    return from_edges(edges, num_vertices=graph.num_vertices, name=graph.name)


def induced_subgraph(graph: CSRGraph, vertices: Sequence[int]) -> CSRGraph:
    """Subgraph induced by ``vertices`` (relabelled ``0..k-1`` in order)."""
    vset: Dict[int, int] = {int(v): i for i, v in enumerate(vertices)}
    if len(vset) != len(vertices):
        raise GraphError("induced_subgraph vertices must be distinct")
    edges: List[Tuple[int, int]] = []
    for v, i in vset.items():
        for w in graph.neighbors(v):
            j = vset.get(int(w))
            if j is not None and i < j:
                edges.append((i, j))
    return from_edges(edges, num_vertices=len(vertices), name=f"{graph.name}[{len(vertices)}]")
