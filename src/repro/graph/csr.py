"""Compressed sparse row (CSR) graph representation.

The entire library operates on undirected simple graphs stored in CSR
form with the adjacency of every vertex sorted by ascending vertex index.
Sorted adjacency is a standing assumption of pattern-aware graph mining
(GraphPi, FlexMiner, FINGERS all require it): symmetry-breaking turns into
a bounded scan, and set intersection/subtraction run as sorted merges.

The CSR graph also carries the *byte address map* used by the accelerator
simulator.  Following the paper, graph data lives in a dedicated region of
the physical address space (it is streamed through the L2 only); the
neighbor set of vertex ``v`` occupies the byte range
``[graph_base + 4 * indptr[v], graph_base + 4 * indptr[v + 1])``
where 4 is the size of one vertex id in bytes.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from ..errors import GraphError

#: Size in bytes of one vertex id as stored in the accelerator memory.
VERTEX_BYTES = 4

#: Base byte address of the graph (CSR) region in the simulated address
#: space.  Intermediate-result regions are allocated below this base so the
#: two kinds of traffic can never alias.
GRAPH_REGION_BASE = 1 << 40


class NeighborArena:
    """Pre-sliced, read-only neighbor views for one CSR graph.

    The hot paths of the miner and the simulator fetch the same neighbor
    slices over and over (once per set-operation input).  Creating a
    numpy view per call is cheap but not free; the arena materializes
    every per-vertex slice **once** — as zero-copy views of a read-only
    alias of ``indices`` — so a fetch is a single list index.  Read-only
    views make the shared adjacency immune to accidental mutation by any
    kernel downstream.
    """

    __slots__ = ("slices", "degrees")

    def __init__(self, graph: "CSRGraph") -> None:
        frozen = graph.indices.view()
        frozen.flags.writeable = False
        indptr = graph.indptr.tolist()
        self.slices: List[np.ndarray] = [
            frozen[indptr[v] : indptr[v + 1]] for v in range(graph.num_vertices)
        ]
        self.degrees: List[int] = graph.degrees.tolist()

    def __getitem__(self, v: int) -> np.ndarray:
        return self.slices[v]

    def __len__(self) -> int:
        return len(self.slices)


class CSRGraph:
    """An immutable undirected simple graph in CSR form.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``num_vertices + 1``; row pointer.
    indices:
        ``int32``/``int64`` array of length ``2 * num_undirected_edges``;
        concatenated sorted adjacency lists.
    validate:
        When true (the default) the constructor checks all CSR invariants;
        pass ``False`` only for arrays produced by trusted builders.
    """

    __slots__ = ("indptr", "indices", "_degrees", "_arena", "name")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        *,
        name: str = "graph",
        validate: bool = True,
    ) -> None:
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.name = name
        self._degrees = np.diff(self.indptr)
        self._arena: "NeighborArena | None" = None
        if validate:
            self._validate()

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if self.indptr.ndim != 1 or self.indices.ndim != 1:
            raise GraphError("indptr and indices must be one-dimensional")
        if len(self.indptr) == 0:
            raise GraphError("indptr must have at least one entry")
        if self.indptr[0] != 0:
            raise GraphError("indptr[0] must be 0")
        if self.indptr[-1] != len(self.indices):
            raise GraphError("indptr[-1] must equal len(indices)")
        if np.any(np.diff(self.indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        n = self.num_vertices
        if len(self.indices) and (self.indices.min() < 0 or self.indices.max() >= n):
            raise GraphError("indices contain out-of-range vertex ids")
        for v in range(n):
            row = self.neighbors(v)
            if len(row) > 1 and np.any(np.diff(row) <= 0):
                raise GraphError(f"adjacency of vertex {v} is not strictly sorted")
            if np.any(row == v):
                raise GraphError(f"vertex {v} has a self loop")

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        """Number of *undirected* edges (each stored twice in CSR)."""
        return len(self.indices) // 2

    @property
    def degrees(self) -> np.ndarray:
        """Array of vertex degrees (read-only view)."""
        return self._degrees

    @property
    def max_degree(self) -> int:
        """Largest degree in the graph (0 for an empty graph)."""
        return int(self._degrees.max()) if self.num_vertices else 0

    @property
    def average_degree(self) -> float:
        """Mean degree; 0.0 for the empty graph."""
        if self.num_vertices == 0:
            return 0.0
        return float(len(self.indices)) / self.num_vertices

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        return int(self._degrees[v])

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor array of vertex ``v`` (zero-copy view)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    @property
    def nbytes(self) -> int:
        """Bytes of CSR payload (``indptr`` + ``indices``) — the size a
        shared-memory staging segment needs (see graph/arena.py)."""
        return int(self.indptr.nbytes + self.indices.nbytes)

    def freeze(self) -> "CSRGraph":
        """Mark both CSR arrays read-only (shared graphs stay immutable)."""
        self.indptr.flags.writeable = False
        self.indices.flags.writeable = False
        return self

    def arena(self) -> NeighborArena:
        """The memoized :class:`NeighborArena` of pre-built slices."""
        if self._arena is None:
            self._arena = NeighborArena(self)
        return self._arena

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` exists (binary search)."""
        if u == v:
            return False
        # Search in the smaller adjacency for speed.
        if self.degree(u) > self.degree(v):
            u, v = v, u
        row = self.neighbors(u)
        pos = int(np.searchsorted(row, v))
        return pos < len(row) and row[pos] == v

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate undirected edges as ``(u, v)`` with ``u < v``."""
        for u in range(self.num_vertices):
            for v in self.neighbors(u):
                if u < v:
                    yield (u, int(v))

    def vertices(self) -> range:
        """Range over all vertex ids."""
        return range(self.num_vertices)

    # ------------------------------------------------------------------
    # simulator address map
    # ------------------------------------------------------------------
    def neighbor_set_bytes(self, v: int) -> int:
        """Size in bytes of the neighbor set of ``v``."""
        return self.degree(v) * VERTEX_BYTES

    def neighbor_set_address(self, v: int) -> int:
        """Base byte address of the neighbor set of ``v`` in the graph region."""
        return GRAPH_REGION_BASE + int(self.indptr[v]) * VERTEX_BYTES

    # ------------------------------------------------------------------
    # dunder / misc
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.num_vertices

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CSRGraph(name={self.name!r}, vertices={self.num_vertices}, "
            f"edges={self.num_edges})"
        )

    def to_edge_list(self) -> List[Tuple[int, int]]:
        """Materialize the undirected edge list with ``u < v``."""
        return list(self.edges())

    def subgraph_degrees(self, vertices: Sequence[int]) -> List[int]:
        """Degrees of ``vertices`` restricted to the induced subgraph."""
        vset = set(int(v) for v in vertices)
        out = []
        for v in vertices:
            out.append(sum(1 for w in self.neighbors(v) if int(w) in vset))
        return out

    def is_isomorphic_embedding(self, vertices: Sequence[int], adjacency: Sequence[Sequence[int]]) -> bool:
        """Check that mapping pattern vertex ``i`` to ``vertices[i]`` embeds
        ``adjacency`` (pattern adjacency lists) edge-for-edge.

        Used by tests and the naive miner; not performance critical.
        """
        for i, nbrs in enumerate(adjacency):
            for j in nbrs:
                if not self.has_edge(int(vertices[i]), int(vertices[j])):
                    return False
        return True


def empty_graph(num_vertices: int = 0) -> CSRGraph:
    """A graph with ``num_vertices`` vertices and no edges."""
    if num_vertices < 0:
        raise GraphError("num_vertices must be non-negative")
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    return CSRGraph(indptr, np.empty(0, dtype=np.int64), validate=False)
