"""Graph statistics used for dataset characterization (Table 4 context).

The paper's per-dataset analysis keys off a handful of structural
properties — average degree, degree skewness ("yo has a more significant
degree variance than pa"), clustering, and size class.  These helpers
compute them so the dataset registry and the Table 4 bench can report the
same characterization for the synthetic stand-ins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a graph."""

    num_vertices: int
    num_edges: int
    average_degree: float
    max_degree: int
    degree_skewness: float
    clustering: float
    triangles: int

    def describe(self) -> str:
        """Human-readable one-liner used by example scripts."""
        return (
            f"|V|={self.num_vertices} |E|={self.num_edges} "
            f"avg_deg={self.average_degree:.2f} max_deg={self.max_degree} "
            f"skew={self.degree_skewness:.2f} cc={self.clustering:.3f} "
            f"tri={self.triangles}"
        )


def degree_skewness(graph: CSRGraph) -> float:
    """Sample skewness (Fisher-Pearson) of the degree distribution."""
    degs = graph.degrees.astype(np.float64)
    if len(degs) == 0:
        return 0.0
    mean = degs.mean()
    std = degs.std()
    if std == 0:
        return 0.0
    return float(((degs - mean) ** 3).mean() / std**3)


def triangle_count(graph: CSRGraph) -> int:
    """Exact triangle count via sorted-adjacency merge (forward algorithm)."""
    total = 0
    for u in range(graph.num_vertices):
        nu = graph.neighbors(u)
        nu_gt = nu[nu > u]
        for v in nu_gt:
            nv = graph.neighbors(int(v))
            nv_gt = nv[nv > v]
            total += len(np.intersect1d(nu_gt, nv_gt, assume_unique=True))
    return int(total)


def global_clustering(graph: CSRGraph) -> float:
    """Global clustering coefficient: ``3 * triangles / wedges``."""
    degs = graph.degrees.astype(np.int64)
    wedges = int((degs * (degs - 1) // 2).sum())
    if wedges == 0:
        return 0.0
    return 3.0 * triangle_count(graph) / wedges


def compute_stats(graph: CSRGraph) -> GraphStats:
    """Compute the full :class:`GraphStats` summary for a graph."""
    return GraphStats(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        average_degree=graph.average_degree,
        max_degree=graph.max_degree,
        degree_skewness=degree_skewness(graph),
        clustering=global_clustering(graph),
        triangles=triangle_count(graph),
    )
