"""The distributed sweep worker: register, heartbeat, pull, execute, push.

A worker is a small asyncio process around the same
:class:`~repro.orchestrator.executor.PersistentCellExecutor` the
``repro serve`` daemon runs on — which is precisely what makes its
results byte-identical to the serial path: the identical
``_execute_cell`` body produces the metrics, the identical wire codec
round-trips them (JSON float round-tripping is exact).

Life of a worker::

    connect -> register -> [heartbeat every interval]
                             |
                  +--------> pull
                  |           |-- cell  -> stage graph once per group,
                  |           |            execute, push result --+
                  |           |-- wait  -> sleep poll_interval     |
                  |           `-- drain -> close executor, exit    |
                  +-----------------------------------------------+

Cells execute off the event loop (the executor's worker thread/pool),
so heartbeats keep flowing while a simulation runs.  The fault injector
(:mod:`repro.service.faults`) is consulted at every protocol boundary;
with no ``REPRO_FAULTS`` set every check is a no-op, so chaos runs and
production runs exercise the same code path.

``spawn_local_workers`` is the ``--spawn-workers N`` convenience: it
launches ``python -m repro worker`` subprocesses against the
scheduler's own address, which is also how the chaos suite gets real
SIGKILL-able victims.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import subprocess
import sys
import time
from typing import Callable, List, Optional

from ..orchestrator.executor import PersistentCellExecutor
from ..service.client import AsyncServiceClient
from ..service.faults import ENV_VAR as FAULTS_ENV_VAR
from ..service.faults import FaultInjector
from ..service.protocol import cell_from_wire


class WorkerAgent:
    """One worker's protocol loop over any transport client.

    Parameters
    ----------
    address:
        Scheduler address (``unix:/path`` / ``tcp:host:port`` / bare
        path).  Ignored when ``client`` is injected (in-process tests).
    slots:
        Concurrent cells this worker runs.  ``1`` (the default) uses
        the executor's single warm worker thread — no arena segments,
        so even a SIGKILL leaves ``/dev/shm`` clean.
    faults:
        A :class:`~repro.service.faults.FaultInjector`; defaults to an
        empty (no-op) plan.
    client:
        Pre-connected :class:`~repro.service.client.AsyncServiceClient`
        for in-process transports.
    """

    def __init__(
        self,
        address: Optional[str] = None,
        *,
        name: Optional[str] = None,
        slots: int = 1,
        connect_timeout: float = 30.0,
        poll_interval: float = 0.05,
        faults: Optional[FaultInjector] = None,
        log: Optional[Callable[[str], None]] = None,
        client: Optional[AsyncServiceClient] = None,
    ) -> None:
        self.address = address
        self.name = name or f"worker-{os.getpid()}"
        self.slots = max(1, int(slots))
        self.connect_timeout = connect_timeout
        self.poll_interval = poll_interval
        self.faults = faults or FaultInjector()
        self.log = log
        self.worker_id: Optional[str] = None
        self.completed = 0
        self.severed = False
        self._client = client

    def _log(self, line: str) -> None:
        if self.log is not None:
            self.log(f"[{self.name}] {line}")

    # ------------------------------------------------------------------
    async def run(self) -> dict:
        """Register, work until drained, return a summary dict."""
        client = self._client
        if client is None:
            client = await AsyncServiceClient.connect(
                self.address, timeout=self.connect_timeout
            )
        executor: Optional[PersistentCellExecutor] = None
        try:
            # Resolve the kernel backend up front (honoring
            # REPRO_BACKEND) and report the resolution with the
            # registration: the one-time fallback warning is invisible
            # on a remote worker, so the roster carries it instead.
            from ..sim import backend as kernel_backend

            kernel_backend.activate(None)
            resolution = kernel_backend.resolution()
            reply = await client.request(
                "register",
                name=self.name,
                pid=os.getpid(),
                slots=self.slots,
                backend=resolution["resolved"],
                backend_fallback=resolution["fallback"],
            )
            if not reply.get("ok"):
                error = reply.get("error", {})
                raise ConnectionError(
                    f"register rejected: {error.get('type', 'Error')}: "
                    f"{error.get('message', '')}"
                )
            self.worker_id = reply["worker"]
            interval = float(reply.get("heartbeat_interval", 1.0))
            timeout = reply.get("timeout")
            self._log(f"registered as {self.worker_id} "
                      f"(heartbeat every {interval:g}s)")
            executor = PersistentCellExecutor(
                jobs=self.slots,
                timeout=float(timeout) if timeout is not None else None,
            )
            heartbeat = asyncio.get_running_loop().create_task(
                self._heartbeat_loop(client, interval)
            )
            try:
                await asyncio.gather(
                    *(self._slot_loop(client, executor)
                      for _ in range(self.slots))
                )
            finally:
                heartbeat.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await heartbeat
            # Drain path: release the pool and unlink arena segments
            # *before* the connection drops, so the scheduler observing
            # our EOF can trust /dev/shm is already clean.
            executor.close()
            self._log(f"drained after {self.completed} cell(s)")
            return {
                "worker": self.worker_id,
                "completed": self.completed,
                "severed": self.severed,
            }
        finally:
            if executor is not None:
                # Second invocation on the drain path, first on every
                # error path — the executor's close() is convergent
                # under exactly this double-close pattern.
                executor.close()
            with contextlib.suppress(Exception):
                await client.close()

    # ------------------------------------------------------------------
    async def _heartbeat_loop(self, client: AsyncServiceClient, interval: float) -> None:
        while True:
            await asyncio.sleep(interval)
            if self.faults.drop_heartbeat():
                continue
            delay = self.faults.heartbeat_delay()
            if delay:
                await asyncio.sleep(delay)
            try:
                reply = await client.request("heartbeat", worker=self.worker_id)
            except ConnectionError:
                return
            if reply.get("ok") and not reply.get("live", True):
                # The scheduler already buried us (our heartbeats were
                # too late); our cells are being retried elsewhere.
                # Keep pulling — the next pull replies drain.
                self._log("scheduler declared this worker dead; draining")

    # ------------------------------------------------------------------
    async def _slot_loop(
        self, client: AsyncServiceClient, executor: PersistentCellExecutor
    ) -> None:
        loop = asyncio.get_running_loop()
        while True:
            try:
                reply = await client.request("pull", worker=self.worker_id)
            except ConnectionError:
                return
            if not reply.get("ok") or reply.get("drain"):
                return
            if reply.get("wait"):
                await asyncio.sleep(self.poll_interval)
                continue
            key = reply["key"]
            spec = cell_from_wire(reply["cell"])
            # Chaos boundary: a planned SIGKILL fires here, after the
            # cell was assigned (it is "running" scheduler-side) and
            # before any work happens — the worst moment to die.
            self.faults.on_cell_start()
            if not executor.is_staged(spec.dataset, spec.scale):
                self._log(f"staging {spec.dataset}@{spec.scale:g}")
                await loop.run_in_executor(
                    None, executor.stage, spec.dataset, spec.scale
                )
            metrics, error, seconds, record = await executor.run_cell(spec, key)
            record = dict(record or {})
            record.setdefault("pid", os.getpid())
            record["worker"] = self.name
            if self.faults.should_sever_result():
                # Chaos boundary: the result exists but the connection
                # dies before it is delivered.  The scheduler must
                # retry the cell elsewhere and must not double count.
                self.severed = True
                self._log("severing connection before result delivery")
                with contextlib.suppress(Exception):
                    await client.close()
                return
            try:
                ack = await client.request(
                    "result",
                    worker=self.worker_id,
                    key=key,
                    metrics=metrics.to_dict() if metrics is not None else None,
                    error=error,
                    seconds=seconds,
                    record=record,
                )
            except ConnectionError:
                return
            if metrics is not None and ack.get("status") == "recorded":
                self.completed += 1


# ----------------------------------------------------------------------
# process entry points
# ----------------------------------------------------------------------

def run_worker(
    address: str,
    *,
    name: Optional[str] = None,
    slots: int = 1,
    connect_timeout: float = 30.0,
    log: Optional[Callable[[str], None]] = None,
) -> int:
    """Blocking worker entry point (``repro worker``); returns exit code.

    SIGTERM/SIGINT cancel the protocol loop, which unwinds through the
    executor's ``finally`` close — a terminated worker never leaves
    arena segments behind.  Faults are read from ``REPRO_FAULTS``.
    """
    if log is None:
        def log(line: str) -> None:
            print(line, file=sys.stderr, flush=True)

    agent = WorkerAgent(
        address, name=name, slots=slots,
        connect_timeout=connect_timeout,
        faults=FaultInjector.from_env(), log=log,
    )

    async def main() -> dict:
        loop = asyncio.get_running_loop()
        task = asyncio.current_task()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
                loop.add_signal_handler(signum, task.cancel)
        return await agent.run()

    try:
        asyncio.run(main())
    except asyncio.CancelledError:
        log(f"[{agent.name}] terminated; cleaned up")
        return 0
    except (ConnectionError, OSError) as exc:
        log(f"[{agent.name}] failed: {type(exc).__name__}: {exc}")
        return 1
    return 0


def spawn_local_workers(
    address: str,
    count: int,
    *,
    slots: int = 1,
    faults_for_first: Optional[str] = None,
    connect_timeout: float = 60.0,
    python: Optional[str] = None,
) -> List[subprocess.Popen]:
    """Launch ``count`` worker subprocesses against ``address``.

    Workers run ``python -m repro worker`` with ``src`` prepended to
    ``PYTHONPATH`` so they resolve the same tree as the parent.
    ``faults_for_first`` injects a ``REPRO_FAULTS`` plan into worker 1
    only (the chaos victim); every other worker gets a clean
    environment even if the parent had a plan set.
    """
    import repro

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    base_env = dict(os.environ)
    existing = base_env.get("PYTHONPATH")
    base_env["PYTHONPATH"] = (
        src_root + (os.pathsep + existing if existing else "")
    )
    base_env.pop(FAULTS_ENV_VAR, None)
    procs: List[subprocess.Popen] = []
    for index in range(max(0, int(count))):
        env = dict(base_env)
        if index == 0 and faults_for_first:
            env[FAULTS_ENV_VAR] = faults_for_first
        command = [
            python or sys.executable, "-m", "repro", "worker", address,
            "--name", f"spawn-{index + 1}",
            "--slots", str(slots),
            "--connect-timeout", str(connect_timeout),
        ]
        procs.append(subprocess.Popen(command, env=env))
    return procs


def terminate_workers(
    procs: List[subprocess.Popen], *, grace: float = 5.0
) -> None:
    """SIGTERM every live worker, escalate to SIGKILL after ``grace``."""
    for proc in procs:
        if proc.poll() is None:
            with contextlib.suppress(OSError):
                proc.terminate()
    deadline = time.monotonic() + grace
    for proc in procs:
        remaining = max(0.1, deadline - time.monotonic())
        try:
            proc.wait(timeout=remaining)
        except subprocess.TimeoutExpired:
            with contextlib.suppress(OSError):
                proc.kill()
            with contextlib.suppress(Exception):
                proc.wait(timeout=5.0)
