"""Distributed sweep execution: scheduler/worker over the service stack.

The multi-host generalization of the batch orchestrator (see
docs/distributed.md):

* :mod:`~repro.distributed.protocol` — worker lifecycle states and the
  register/heartbeat/pull/result message schema (NDJSON over the
  :mod:`repro.service.transports`);
* :mod:`~repro.distributed.board` — the deterministic scheduling state
  machine: locality-aware placement, work stealing, heartbeat expiry,
  failure-domain retries, first-result-wins dedup;
* :mod:`~repro.distributed.scheduler` — the asyncio scheduler server
  and the :class:`DistributedOrchestrator` behind ``repro experiment
  --workers ADDR``;
* :mod:`~repro.distributed.worker` — the worker agent, the ``repro
  worker`` entry point, and local worker spawning (chaos victims
  included).

Fault injection for the chaos suite lives in
:mod:`repro.service.faults`.
"""

from .board import CellBoard, DeathReport, WorkerEntry
from .protocol import (
    BUSY,
    DEAD,
    DRAINING,
    IDLE,
    JOINING,
    LIVE_STATES,
    SUSPECT,
    WORKER_STATES,
)
from .scheduler import DistributedOrchestrator, DistributedScheduler
from .worker import (
    WorkerAgent,
    run_worker,
    spawn_local_workers,
    terminate_workers,
)

__all__ = [
    "BUSY",
    "CellBoard",
    "DEAD",
    "DRAINING",
    "DeathReport",
    "DistributedOrchestrator",
    "DistributedScheduler",
    "IDLE",
    "JOINING",
    "LIVE_STATES",
    "SUSPECT",
    "WORKER_STATES",
    "WorkerAgent",
    "WorkerEntry",
    "run_worker",
    "spawn_local_workers",
    "terminate_workers",
]
