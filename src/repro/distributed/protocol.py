"""Wire protocol of the distributed sweep: worker lifecycle + messages.

The distributed scheduler speaks the same NDJSON framing, transports
and reply shapes as ``repro serve`` (:mod:`repro.service.protocol`) —
one JSON object per line, client-chosen ``id`` echoed on every reply so
requests multiplex over one connection.  What is new here is the
*worker* side of the conversation and its lifecycle.

Requests (worker → scheduler)
-----------------------------
``register``
    ``{"op": "register", "id": ..., "name": ..., "pid": ..., "slots": N}``.
    Replies ``{"ok": true, "worker": <worker-id>, "heartbeat_interval":
    S, "timeout": S | null, "protocol": 1}``.  The scheduler owns the
    heartbeat cadence and the per-cell timeout; workers adopt both.
``heartbeat``
    ``{"op": "heartbeat", "id": ..., "worker": ...}``.  Replies
    ``{"ok": true, "live": bool}`` — ``live`` false means the scheduler
    already declared this worker dead (its cells were reclaimed); the
    worker should finish what it is running and drain.  **Only this
    message refreshes liveness**: a worker whose heartbeats stop is
    declared dead even if it keeps pulling, so a wedged heartbeat task
    cannot hide behind an otherwise busy connection.
``pull``
    ``{"op": "pull", "id": ..., "worker": ...}``.  One of three
    replies: ``{"ok": true, "key": ..., "cell": <cell>}`` (run this
    cell — ``<cell>`` is the full :func:`~repro.service.protocol.cell_to_wire`
    payload), ``{"ok": true, "wait": true}`` (nothing assignable right
    now, poll again), or ``{"ok": true, "drain": true}`` (the sweep is
    complete or this worker is dead to the scheduler — exit).
``result``
    ``{"op": "result", "id": ..., "worker": ..., "key": ...,
    "metrics": <RunMetrics dict> | null, "error": <report> | null,
    "seconds": S, "record": {...}}``.  Replies ``{"ok": true,
    "status": "recorded" | "retry" | "failed" | "duplicate"}`` —
    ``duplicate`` means another attempt of the cell already resolved it
    (first result wins; the late result is discarded, never double
    counted).
``ping`` / ``stats``
    Liveness probe and scheduler counters, as in the serve protocol.

Worker lifecycle
----------------
Scheduler-side view of one worker::

    joining -> idle <-> busy
                 |        |
                 v        v
              suspect (heartbeat overdue, still scheduled)
                 |
                 v
       draining (told to exit)     dead (expired / disconnected / killed)

``dead`` is terminal: the worker's queued cells are reclaimed for other
workers immediately, and each *running* cell is retried elsewhere with
its failure domain (the dead worker's identity) recorded — or, if it
has now died with too many workers, failed with a structured
``WorkerLost`` report listing every domain it took down.
"""

from __future__ import annotations

# Worker lifecycle states (scheduler-side).
JOINING = "joining"
IDLE = "idle"
BUSY = "busy"
SUSPECT = "suspect"
DRAINING = "draining"
DEAD = "dead"

#: Every worker state, in lifecycle order.
WORKER_STATES = (JOINING, IDLE, BUSY, SUSPECT, DRAINING, DEAD)

#: States in which a worker can still be assigned (or keep) cells.
LIVE_STATES = frozenset({JOINING, IDLE, BUSY, SUSPECT})

#: Operations a worker may send.
WORKER_OPS = ("register", "heartbeat", "pull", "result", "ping", "stats")

SCHEDULER_NAME = "repro-dist-scheduler"
