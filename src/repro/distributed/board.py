"""The scheduler's brain: a pure, deterministic cell-placement board.

:class:`CellBoard` owns every scheduling decision of the distributed
sweep — locality-aware placement, work stealing, heartbeat liveness,
failure-domain retries, first-result-wins deduplication — as a plain
synchronous state machine with an injectable clock.  The asyncio
scheduler (:mod:`repro.distributed.scheduler`) is a thin transport
shell around it; the property tests
(``tests/test_distributed_board.py``) drive the board directly with
scripted event orders, which is what makes statements like "a straggler
loses exactly its queued cells" provable instead of probabilistic.

Placement
---------
Cells are grouped by :func:`~repro.orchestrator.cells.group_key`
(``(dataset, pattern, scale)``) — the same grouping PR 4's batch
scheduler uses per process — ordered largest-first (key as the
tie-break, so the order is deterministic).  A worker that pulls with an
empty queue is handed a whole unassigned group, preferring one whose
graph it has already staged; the group's graph is then considered
staged on that worker, so every later cell of the group lands where its
graph lives.

Stealing
--------
A worker with nothing queued, no unassigned group and a live sweep
steals **all queued cells** from the straggler with the deepest queue
(preferring a victim whose cells' graph the thief already staged; the
victim's running cells are never touched).  The stolen cells keep their
group identity, so the thief stages the graph once and runs them all.

Failure semantics
-----------------
A worker is declared dead when its heartbeats go silent past the
timeout, when its connection drops, or when the transport layer reports
it killed.  Death reclaims its queued cells instantly (they were never
started — free requeue) and retries each *running* cell elsewhere,
appending the dead worker to the cell's failure-domain list.  A cell
that keeps killing workers is failed with a ``WorkerLost`` report
naming every domain.  Cell-level errors (the structured reports the
worker body already produces) spend the ordinary retry budget, exactly
as in the batch scheduler.  Results are first-wins: once a cell is
resolved, any later result for it — from a resurrected worker, a
severed-and-retried delivery, a stale queue entry — is counted as a
duplicate and discarded, so a severed connection can produce neither a
lost cell nor a double-counted one.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple

from ..orchestrator.cells import CellSpec, graph_key, group_key
from .protocol import BUSY, DEAD, DRAINING, IDLE, JOINING, LIVE_STATES, SUSPECT

GroupKey = Tuple[str, str, float]


@dataclass
class WorkerEntry:
    """Scheduler-side record of one registered worker."""

    worker_id: str
    name: str
    pid: int
    slots: int = 1
    state: str = JOINING
    registered_at: float = 0.0
    last_heartbeat: float = 0.0
    #: Cells assigned but not yet pulled into execution.
    queued: Deque[str] = field(default_factory=deque)
    #: Cells pulled and presumed executing, key -> pull time.
    running: Dict[str, float] = field(default_factory=dict)
    #: Graphs this worker has (or is about to have) staged.
    staged: Set[Tuple[str, float]] = field(default_factory=set)
    completed: int = 0
    cause: Optional[str] = None
    #: Kernel backend the worker process resolved at startup, and the
    #: fallback detail when its request could not be honored.  The
    #: one-time "toolchain missing" warning is easy to lose in worker
    #: processes; recording the resolution here keeps a silent
    #: cext→pure downgrade visible in the run manifest roster.
    backend: Optional[str] = None
    backend_fallback: Optional[str] = None

    @property
    def live(self) -> bool:
        return self.state in LIVE_STATES

    def record(self) -> Dict[str, object]:
        """Manifest roster entry for this worker."""
        return {
            "worker": self.worker_id,
            "name": self.name,
            "pid": self.pid,
            "slots": self.slots,
            "state": DEAD if self.state == DEAD else "drained",
            "completed": self.completed,
            "staged": sorted(f"{d}@{s:g}" for d, s in self.staged),
            **({"cause": self.cause} if self.cause else {}),
            **({"backend": self.backend} if self.backend else {}),
            **(
                {"backend_fallback": self.backend_fallback}
                if self.backend_fallback
                else {}
            ),
        }


@dataclass
class DeathReport:
    """What one worker death did to the schedule."""

    worker: WorkerEntry
    cause: str
    #: Queued (never started) cells returned to the unassigned pool.
    reclaimed: List[str] = field(default_factory=list)
    #: Running cells requeued for another worker (failure domain noted).
    retried: List[str] = field(default_factory=list)
    #: Running cells that exhausted their death budget -> WorkerLost.
    failed: List[str] = field(default_factory=list)


class CellBoard:
    """Deterministic scheduling state for one distributed sweep.

    Parameters
    ----------
    specs:
        The pending cells, by content-addressed key (cache hits are
        resolved before the board is built).
    retries:
        Extra attempts a cell whose *execution* failed is granted —
        identical semantics to the batch scheduler.
    death_retries:
        Extra attempts a cell is granted after the worker running it
        died (tracked separately: a worker crash is not the cell's
        fault, but a cell that kills every host it touches must still
        converge to a failure).  Defaults to ``max(1, retries)``.
    heartbeat_timeout:
        Seconds of heartbeat silence after which a worker is dead.
    clock:
        Injectable monotonic clock (property tests drive virtual time).
    """

    def __init__(
        self,
        specs: Dict[str, CellSpec],
        *,
        retries: int = 1,
        death_retries: Optional[int] = None,
        heartbeat_timeout: float = 5.0,
        clock=time.monotonic,
    ) -> None:
        self.specs: Dict[str, CellSpec] = dict(specs)
        self.retries = max(0, int(retries))
        self.death_retries = (
            max(1, self.retries) if death_retries is None else max(0, death_retries)
        )
        self.heartbeat_timeout = float(heartbeat_timeout)
        self._clock = clock

        grouped: Dict[GroupKey, List[str]] = {}
        for key in sorted(self.specs):
            grouped.setdefault(group_key(self.specs[key]), []).append(key)
        order = sorted(grouped, key=lambda g: (-len(grouped[g]), g))
        #: Unassigned cells by group, largest group first.
        self._unassigned: "OrderedDict[GroupKey, Deque[str]]" = OrderedDict(
            (g, deque(grouped[g])) for g in order
        )

        self.workers: Dict[str, WorkerEntry] = {}
        self._ids = 0
        #: Keys resolved successfully (payloads live with the caller).
        self.resolved: Set[str] = set()
        #: Keys that exhausted their budgets, with structured errors.
        self.failures: Dict[str, dict] = {}
        #: Execution attempts per key (results received, ok or not).
        self.attempts: Dict[str, int] = {}
        #: Worker deaths charged to each key.
        self.death_attempts: Dict[str, int] = {}
        #: Failure domains: every dead worker a key was running on.
        self.domains: Dict[str, List[str]] = {}
        self.stats: Dict[str, int] = {
            "registered": 0, "heartbeats": 0, "pulls": 0, "steals": 0,
            "stolen_cells": 0, "reclaimed": 0, "death_retries": 0,
            "retries": 0, "duplicates": 0, "expired": 0, "disconnected": 0,
        }
        #: Last register/heartbeat/result time (idle-scheduler watchdog).
        self.last_activity: float = self._clock()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return len(self.resolved) + len(self.failures) == len(self.specs)

    def pending(self) -> List[str]:
        """Keys not yet resolved or failed, in deterministic order."""
        return [
            key for key in sorted(self.specs)
            if key not in self.resolved and key not in self.failures
        ]

    def live_workers(self) -> List[WorkerEntry]:
        return [w for w in self.workers.values() if w.live]

    def describe(self) -> List[Dict[str, object]]:
        """Worker roster for the manifest, in registration order."""
        return [self.workers[wid].record() for wid in sorted(
            self.workers, key=lambda wid: int(wid[1:])
        )]

    def _now(self, now: Optional[float]) -> float:
        return self._clock() if now is None else now

    def _resolved(self, key: str) -> bool:
        return key in self.resolved or key in self.failures

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        pid: int,
        slots: int = 1,
        backend: Optional[str] = None,
        backend_fallback: Optional[str] = None,
        now: Optional[float] = None,
    ) -> WorkerEntry:
        now = self._now(now)
        self._ids += 1
        worker = WorkerEntry(
            worker_id=f"w{self._ids}", name=str(name), pid=int(pid),
            slots=max(1, int(slots)), registered_at=now, last_heartbeat=now,
            backend=str(backend) if backend else None,
            backend_fallback=str(backend_fallback) if backend_fallback else None,
        )
        self.workers[worker.worker_id] = worker
        self.stats["registered"] += 1
        self.last_activity = now
        return worker

    def heartbeat(self, worker_id: str, now: Optional[float] = None) -> bool:
        """Refresh one worker's liveness; False if it is already dead."""
        worker = self.workers.get(worker_id)
        self.stats["heartbeats"] += 1
        if worker is None or worker.state == DEAD:
            return False
        now = self._now(now)
        worker.last_heartbeat = now
        self.last_activity = now
        if worker.state == SUSPECT:
            worker.state = BUSY if worker.running else IDLE
        return True

    def pull(
        self, worker_id: str, now: Optional[float] = None
    ) -> Tuple[str, Optional[str]]:
        """One worker asks for work: ``("cell", key)`` / ``("wait", None)``
        / ``("drain", None)``.

        Deliberately does **not** refresh liveness — only heartbeats do
        (see the protocol doc), so a worker with a wedged heartbeat
        task cannot stay scheduled just by polling.
        """
        worker = self.workers.get(worker_id)
        self.stats["pulls"] += 1
        if worker is None or worker.state in (DEAD, DRAINING):
            return ("drain", None)
        self._prune(worker)
        while not worker.queued:
            if not (self._acquire_group(worker) or self._steal_for(worker)):
                break
            self._prune(worker)
        if worker.queued:
            key = worker.queued.popleft()
            worker.running[key] = self._now(now)
            worker.state = BUSY
            return ("cell", key)
        if self.done:
            worker.state = DRAINING
            return ("drain", None)
        if worker.state != SUSPECT:
            worker.state = BUSY if worker.running else IDLE
        return ("wait", None)

    def complete(
        self,
        worker_id: str,
        key: str,
        *,
        ok: bool,
        error: Optional[dict] = None,
        now: Optional[float] = None,
    ) -> str:
        """A result arrived: ``recorded`` / ``retry`` / ``failed`` /
        ``duplicate``.  First result wins; callers only persist payloads
        for ``recorded`` and only report failure for ``failed``."""
        if key not in self.specs:
            raise KeyError(f"unknown cell key: {key}")
        now = self._now(now)
        self.last_activity = now
        worker = self.workers.get(worker_id)
        if worker is not None:
            worker.running.pop(key, None)
            if worker.state == BUSY and not worker.running and not worker.queued:
                worker.state = IDLE
        if self._resolved(key):
            self.stats["duplicates"] += 1
            return "duplicate"
        self.attempts[key] = self.attempts.get(key, 0) + 1
        if ok:
            self.resolved.add(key)
            if worker is not None:
                worker.completed += 1
            return "recorded"
        if self.attempts[key] <= self.retries:
            self._requeue(key)
            self.stats["retries"] += 1
            return "retry"
        report = dict(error or {})
        report.setdefault("type", "Error")
        if self.domains.get(key):
            report["domains"] = list(self.domains[key])
        self.failures[key] = report
        return "failed"

    def expire(self, now: Optional[float] = None) -> List[DeathReport]:
        """Declare heartbeat-silent workers dead; mark overdue ones suspect."""
        now = self._now(now)
        reports: List[DeathReport] = []
        for worker in list(self.workers.values()):
            if not worker.live:
                continue
            silence = now - worker.last_heartbeat
            if silence > self.heartbeat_timeout:
                self.stats["expired"] += 1
                reports.append(self._kill(worker, "heartbeat-expired"))
            elif silence > self.heartbeat_timeout / 2 and worker.state in (IDLE, BUSY):
                worker.state = SUSPECT
        return reports

    def disconnect(self, worker_id: str) -> Optional[DeathReport]:
        """A worker's connection dropped.

        A draining worker leaving is the expected end of its life — as
        is any worker leaving once the sweep is done (the scheduler may
        close listeners before a worker collects its drain reply); any
        other disconnect is a death (the transport saw EOF before the
        scheduler saw a drain)."""
        worker = self.workers.get(worker_id)
        if worker is None or worker.state in (DEAD, DRAINING):
            return None
        if self.done:
            worker.state = DRAINING
            return None
        self.stats["disconnected"] += 1
        return self._kill(worker, "disconnected")

    def fail_pending(self, error: dict) -> List[str]:
        """Fail every unresolved cell (no workers left / interrupted)."""
        failed = []
        for key in self.pending():
            report = dict(error)
            if self.domains.get(key):
                report["domains"] = list(self.domains[key])
            self.failures[key] = report
            failed.append(key)
        for worker in self.workers.values():
            worker.queued.clear()
            worker.running.clear()
        self._unassigned.clear()
        return failed

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _prune(self, worker: WorkerEntry) -> None:
        """Drop queued keys that were resolved while waiting (a stale
        retry whose original result arrived first, for example)."""
        while worker.queued and self._resolved(worker.queued[0]):
            worker.queued.popleft()

    def _acquire_group(self, worker: WorkerEntry) -> bool:
        """Hand the worker an unassigned group, preferring staged graphs."""
        chosen: Optional[GroupKey] = None
        for group in self._unassigned:
            if (group[0], group[2]) in worker.staged:
                chosen = group
                break
        if chosen is None and self._unassigned:
            chosen = next(iter(self._unassigned))
        if chosen is None:
            return False
        keys = self._unassigned.pop(chosen)
        live = [key for key in keys if not self._resolved(key)]
        if not live:
            return bool(self._unassigned) and self._acquire_group(worker)
        worker.queued.extend(live)
        worker.staged.add((chosen[0], chosen[2]))
        return True

    def _steal_for(self, thief: WorkerEntry) -> bool:
        """Move a straggler's entire queue to an idle thief.

        The victim keeps what it is running; it loses exactly the
        queued cells.  Victim choice is deterministic: staged-graph
        match first, then deepest queue, then lowest worker id."""
        victims = []
        for worker in self.workers.values():
            if worker is thief or not worker.live:
                continue
            self._prune(worker)
            if worker.queued:
                victims.append(worker)
        if not victims:
            return False

        def rank(victim: WorkerEntry):
            head = victim.queued[0]
            affinity = 1 if graph_key(self.specs[head]) in thief.staged else 0
            return (-affinity, -len(victim.queued), int(victim.worker_id[1:]))

        victim = sorted(victims, key=rank)[0]
        stolen = list(victim.queued)
        victim.queued.clear()
        if victim.state == BUSY and not victim.running:
            victim.state = IDLE
        thief.queued.extend(stolen)
        for key in stolen:
            thief.staged.add(graph_key(self.specs[key]))
        self.stats["steals"] += 1
        self.stats["stolen_cells"] += len(stolen)
        return True

    def _requeue(self, key: str) -> None:
        """Return a cell to the unassigned pool, at the front.

        Front placement keeps retries prompt, and going through the
        pool (instead of pinning to a worker) lets the staged-graph
        preference pick the best surviving home."""
        group = group_key(self.specs[key])
        queue = self._unassigned.get(group)
        if queue is None:
            queue = deque()
            self._unassigned[group] = queue
        queue.appendleft(key)
        self._unassigned.move_to_end(group, last=False)

    def _kill(self, worker: WorkerEntry, cause: str) -> DeathReport:
        report = DeathReport(worker=worker, cause=cause)
        worker.state = DEAD
        worker.cause = cause
        for key in list(worker.queued):
            if not self._resolved(key):
                self._requeue(key)
                report.reclaimed.append(key)
                self.stats["reclaimed"] += 1
        worker.queued.clear()
        for key in list(worker.running):
            if self._resolved(key):
                continue
            self.domains.setdefault(key, []).append(worker.worker_id)
            self.death_attempts[key] = self.death_attempts.get(key, 0) + 1
            if self.death_attempts[key] > self.death_retries:
                self.failures[key] = {
                    "type": "WorkerLost",
                    "message": (
                        f"cell died with {self.death_attempts[key]} worker(s); "
                        f"last: {worker.name} ({cause})"
                    ),
                    "traceback": "",
                    "domains": list(self.domains[key]),
                }
                report.failed.append(key)
            else:
                self._requeue(key)
                report.retried.append(key)
                self.stats["death_retries"] += 1
        worker.running.clear()
        return report
