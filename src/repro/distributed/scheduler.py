"""The distributed sweep scheduler and its batch-orchestrator facade.

:class:`DistributedScheduler` is the transport shell around the
:class:`~repro.distributed.board.CellBoard`: an asyncio server on the
service transports (unix socket / TCP / in-process) that answers worker
``register`` / ``heartbeat`` / ``pull`` / ``result`` requests, runs a
monitor task that expires silent workers, and records every outcome —
cache write-through, manifest cells, failure domains — the moment a
result arrives.  All scheduling *decisions* live in the board; this
module only moves messages.

:class:`DistributedOrchestrator` is the drop-in ``repro experiment
--workers ADDR`` entry point: it subclasses the batch
:class:`~repro.orchestrator.scheduler.Orchestrator` and overrides only
``run_cells`` — planning, cache read-through, replayed rendering and
manifest semantics are inherited unchanged, which is what keeps a
distributed run byte-identical to a serial one (same planner, same
cache keys, same ``_execute_cell`` body worker-side, same replay
render).
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..orchestrator.cache import ResultCache
from ..orchestrator.cells import CellSpec
from ..orchestrator.manifest import CellOutcome, RunManifest
from ..orchestrator.scheduler import Orchestrator, _InterruptGuard
from ..service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    cell_to_wire,
    error_reply,
    ok_reply,
)
from ..service.transports import listener_for
from ..sim.metrics import RunMetrics
from .board import CellBoard, DeathReport
from .protocol import SCHEDULER_NAME
from .worker import spawn_local_workers, terminate_workers


class DistributedScheduler:
    """Serve one sweep's cells to workers until every cell resolves.

    Parameters largely mirror the batch orchestrator; the heartbeat
    knobs are new:

    heartbeat_interval:
        Cadence workers are told to beat at (seconds).
    heartbeat_timeout:
        Silence after which a worker is declared dead and its cells
        reclaimed/retried.
    register_timeout:
        Seconds the scheduler tolerates having *no live worker* (none
        ever registered, or all died) before failing the remaining
        cells with a structured ``NoWorkers`` report instead of
        hanging forever.
    """

    def __init__(
        self,
        specs: Dict[str, CellSpec],
        *,
        cache: Optional[ResultCache] = None,
        manifest: Optional[RunManifest] = None,
        retries: int = 1,
        timeout: Optional[float] = None,
        heartbeat_interval: float = 1.0,
        heartbeat_timeout: float = 5.0,
        register_timeout: float = 120.0,
        progress=None,
        progress_done: int = 0,
        progress_total: Optional[int] = None,
        clock=time.monotonic,
    ) -> None:
        self.specs = dict(specs)
        self.cache = cache
        self.manifest = manifest if manifest is not None else RunManifest()
        self.timeout = timeout
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.register_timeout = float(register_timeout)
        self.progress = progress
        self._clock = clock
        self.board = CellBoard(
            specs,
            retries=retries,
            heartbeat_timeout=heartbeat_timeout,
            clock=clock,
        )
        self.results: Dict[str, RunMetrics] = {}
        self._done_count = progress_done
        self._total = progress_total if progress_total is not None else len(specs)
        self._done_event: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------
    def _report(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    def _check_done(self) -> None:
        if self.board.done and self._done_event is not None:
            self._done_event.set()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, connection) -> None:
        worker_id: Optional[str] = None
        try:
            while True:
                message = await connection.recv()
                if message is None:
                    break
                req_id = message.get("id")
                try:
                    reply, worker_id = self._dispatch(message, worker_id)
                except ProtocolError as exc:
                    reply = error_reply("ProtocolError", str(exc), req_id)
                except Exception as exc:  # never kill the accept loop
                    reply = error_reply(type(exc).__name__, str(exc), req_id)
                if reply is not None:
                    try:
                        await connection.send(reply)
                    except ConnectionError:
                        break
        finally:
            if worker_id is not None:
                self._record_death(self.board.disconnect(worker_id))
                self._check_done()

    def _dispatch(
        self, message: dict, worker_id: Optional[str]
    ) -> Tuple[Optional[dict], Optional[str]]:
        op = message.get("op")
        req_id = message.get("id")
        if op == "ping":
            return ok_reply(
                req_id, server=SCHEDULER_NAME, protocol=PROTOCOL_VERSION
            ), worker_id
        if op == "register":
            worker = self.board.register(
                name=message.get("name") or "worker",
                pid=int(message.get("pid") or 0),
                slots=int(message.get("slots") or 1),
                backend=message.get("backend"),
                backend_fallback=message.get("backend_fallback"),
            )
            detail = f"pid {worker.pid}, {worker.slots} slot(s)"
            if worker.backend:
                detail += f", backend {worker.backend}"
            if worker.backend_fallback:
                detail += f" (fallback: {worker.backend_fallback})"
            self._report(f"[join] {worker.name} -> {worker.worker_id} ({detail})")
            return ok_reply(
                req_id,
                worker=worker.worker_id,
                heartbeat_interval=self.heartbeat_interval,
                timeout=self.timeout,
                protocol=PROTOCOL_VERSION,
            ), worker.worker_id
        if op == "heartbeat":
            live = self.board.heartbeat(str(message.get("worker")))
            return ok_reply(req_id, live=live), worker_id
        if op == "pull":
            kind, key = self.board.pull(str(message.get("worker")))
            if kind == "cell":
                return ok_reply(
                    req_id, key=key, cell=cell_to_wire(self.specs[key])
                ), worker_id
            if kind == "drain":
                return ok_reply(req_id, drain=True), worker_id
            return ok_reply(req_id, wait=True), worker_id
        if op == "result":
            return self._on_result(message, req_id), worker_id
        if op == "stats":
            return ok_reply(
                req_id,
                stats=dict(self.board.stats),
                workers=self.board.describe(),
                pending=len(self.board.pending()),
            ), worker_id
        raise ProtocolError(f"unknown op: {op!r}")

    # ------------------------------------------------------------------
    def _on_result(self, message: dict, req_id) -> dict:
        wid = str(message.get("worker"))
        key = message.get("key")
        if key not in self.specs:
            return error_reply("UnknownCell", f"unknown cell key: {key}", req_id)
        spec = self.specs[key]
        metrics_dict = message.get("metrics")
        error = message.get("error")
        seconds = float(message.get("seconds") or 0.0)
        record = dict(message.get("record") or {})
        worker = self.board.workers.get(wid)
        if worker is not None:
            record.setdefault("worker_id", worker.worker_id)
        status = self.board.complete(
            wid, key, ok=metrics_dict is not None, error=error
        )
        if status == "recorded":
            metrics = RunMetrics.from_dict(metrics_dict)
            self.results[key] = metrics
            self.manifest.cells.append(
                CellOutcome(
                    key, spec.label(), "computed", seconds,
                    self.board.attempts.get(key, 1), worker=record,
                )
            )
            if self.cache is not None:
                self.cache.put(spec, key, metrics, seconds)
            self._done_count += 1
            self._report(
                f"[{self._done_count}/{self._total}] {spec.label()} ok "
                f"({seconds:.2f}s) on {record.get('worker', wid)}"
            )
        elif status == "retry":
            self._report(
                f"[retry {self.board.attempts.get(key, 0)}/"
                f"{self.board.retries}] {spec.label()}: "
                f"{(error or {}).get('type', 'Error')}"
            )
        elif status == "failed":
            report = self.board.failures[key]
            self.manifest.cells.append(
                CellOutcome(
                    key, spec.label(), "failed", seconds,
                    self.board.attempts.get(key, 0), report, record,
                )
            )
            self._report(
                f"[{self._done_count}/{self._total}] {spec.label()} FAILED "
                f"({report.get('type', 'Error')})"
            )
        # duplicates are silently discarded (first result won)
        self._check_done()
        return ok_reply(req_id, status=status)

    # ------------------------------------------------------------------
    def _record_death(self, report: Optional[DeathReport]) -> None:
        if report is None:
            return
        worker = report.worker
        self._report(
            f"[death] {worker.name} ({worker.worker_id}) {report.cause}: "
            f"{len(report.reclaimed)} reclaimed, {len(report.retried)} "
            f"retried, {len(report.failed)} failed"
        )
        for key in report.failed:
            spec = self.specs[key]
            attempts = (
                self.board.attempts.get(key, 0)
                + self.board.death_attempts.get(key, 0)
            )
            self.manifest.cells.append(
                CellOutcome(
                    key, spec.label(), "failed", 0.0, attempts,
                    self.board.failures[key],
                    {"worker_id": worker.worker_id, "worker": worker.name},
                )
            )

    async def _monitor(self) -> None:
        tick = max(0.05, min(self.heartbeat_interval / 2,
                             self.heartbeat_timeout / 4))
        while not self.board.done:
            await asyncio.sleep(tick)
            for report in self.board.expire():
                self._record_death(report)
            if self.board.done:
                break
            if not self.board.live_workers():
                idle_for = self._clock() - self.board.last_activity
                if idle_for > self.register_timeout:
                    self._fail_pending(
                        "NoWorkers",
                        f"no live workers for {idle_for:.0f}s "
                        f"({self.board.stats['registered']} ever registered)",
                    )
                    break
        self._check_done()

    def _fail_pending(self, error_type: str, message: str) -> None:
        error = {"type": error_type, "message": message, "traceback": ""}
        for key in self.board.fail_pending(error):
            spec = self.specs[key]
            self.manifest.cells.append(
                CellOutcome(
                    key, spec.label(), "failed", 0.0,
                    self.board.attempts.get(key, 0),
                    self.board.failures[key],
                )
            )
            self._report(f"FAILED {spec.label()}: {message}")

    # ------------------------------------------------------------------
    async def run(
        self,
        addresses: Sequence[str] = (),
        *,
        listeners: Sequence = (),
        spawn: int = 0,
        spawn_slots: int = 1,
        spawn_faults: Optional[str] = None,
    ) -> Tuple[Dict[str, RunMetrics], Dict[str, dict]]:
        """Serve until every cell resolves; returns (results, failures).

        ``addresses`` are bound as unix/TCP listeners; ``listeners``
        accepts pre-built (e.g. in-process) listeners.  ``spawn``
        launches that many local worker subprocesses against the first
        address — the ``--spawn-workers`` convenience and the chaos
        suite's victim supply.
        """
        self._done_event = asyncio.Event()
        active: List = []
        procs: List = []
        monitor: Optional[asyncio.Task] = None
        try:
            for address in addresses:
                listener = listener_for(address)
                await listener.start(self._handle_connection)
                active.append(listener)
            for listener in listeners:
                await listener.start(self._handle_connection)
                active.append(listener)
            if spawn:
                if not addresses:
                    raise ValueError("--spawn-workers needs a socket address")
                procs = spawn_local_workers(
                    addresses[0], spawn, slots=spawn_slots,
                    faults_for_first=spawn_faults,
                )
                self._report(f"spawned {len(procs)} local worker(s)")
            if not self.board.done:
                monitor = asyncio.get_running_loop().create_task(self._monitor())
                await self._done_event.wait()
            await self._let_workers_drain(procs)
        finally:
            if monitor is not None:
                monitor.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await monitor
            for listener in active:
                with contextlib.suppress(Exception):
                    await listener.close()
            terminate_workers(procs)
        return dict(self.results), dict(self.board.failures)

    async def _let_workers_drain(self, procs) -> None:
        """Give workers a moment to pull their drain replies and exit.

        Spawned workers that exit by themselves produce clean logs and
        prove the drain path; the deadline keeps a wedged worker from
        stalling the sweep (terminate_workers reaps it right after).
        """
        deadline = self._clock() + max(2.0, 20 * self.heartbeat_interval)
        while self._clock() < deadline:
            if all(proc.poll() is not None for proc in procs):
                break
            await asyncio.sleep(0.05)


# ----------------------------------------------------------------------
# the batch-facade orchestrator
# ----------------------------------------------------------------------

class DistributedOrchestrator(Orchestrator):
    """``repro experiment --workers ADDR``: the batch API, served remotely.

    Inherits planning, cache read-through and replayed rendering from
    the batch orchestrator; only cell *execution* is overridden to run
    through a :class:`DistributedScheduler`.
    """

    def __init__(
        self,
        address: str,
        *,
        spawn_workers: int = 0,
        worker_slots: int = 1,
        heartbeat_interval: float = 1.0,
        heartbeat_timeout: float = 5.0,
        register_timeout: float = 120.0,
        spawn_faults: Optional[str] = None,
        **kwargs,
    ) -> None:
        kwargs.setdefault("jobs", max(1, spawn_workers))
        super().__init__(**kwargs)
        self.address = address
        self.spawn_workers = max(0, int(spawn_workers))
        self.worker_slots = max(1, int(worker_slots))
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.register_timeout = register_timeout
        self.spawn_faults = spawn_faults
        #: The last sweep's scheduler (tests inspect board stats).
        self.last_scheduler: Optional[DistributedScheduler] = None

    def run_cells(
        self,
        specs: Dict[str, CellSpec],
        manifest: Optional[RunManifest] = None,
    ):
        manifest = manifest if manifest is not None else RunManifest(jobs=self.jobs)
        results: Dict[str, RunMetrics] = {}
        failures: Dict[str, dict] = {}
        pending = self._readthrough(specs, manifest, results)
        if not pending:
            return results, failures
        scheduler = DistributedScheduler(
            pending,
            cache=self.cache,
            manifest=manifest,
            retries=self.retries,
            timeout=self.timeout,
            heartbeat_interval=self.heartbeat_interval,
            heartbeat_timeout=self.heartbeat_timeout,
            register_timeout=self.register_timeout,
            progress=self.progress,
            progress_done=len(results),
            progress_total=len(specs),
        )
        self.last_scheduler = scheduler
        guard = _InterruptGuard()
        try:
            with guard:
                dist_results, dist_failures = asyncio.run(
                    scheduler.run(
                        [self.address],
                        spawn=self.spawn_workers,
                        spawn_slots=self.worker_slots,
                        spawn_faults=self.spawn_faults,
                    )
                )
        except KeyboardInterrupt:
            name = signal.Signals(guard.signum).name if guard.signum else "SIGINT"
            self._report(f"{name}: draining — abandoning distributed sweep")
            results.update(scheduler.results)
            failures.update(scheduler.board.failures)
            for key, spec in pending.items():
                if key in results or key in failures:
                    continue
                failures[key] = {
                    "type": "Interrupted",
                    "message": f"sweep interrupted by {name}",
                    "traceback": "",
                }
                manifest.cells.append(
                    CellOutcome(key, spec.label(), "failed", 0.0,
                                scheduler.board.attempts.get(key, 0),
                                failures[key])
                )
            manifest.workers = scheduler.board.describe()
            raise
        results.update(dist_results)
        failures.update(dist_failures)
        manifest.workers = scheduler.board.describe()
        return results, failures
