"""Search-tree merging: two search trees per PE (§4.2).

A PE statically bound to one search tree can leave both compute and the
aggregated memory bandwidth underused for low-degree graphs (the paper's
yo/pa cases).  With the task tree holding two depth-0/depth-1 bunches, a
PE can interleave two independent trees, sharing the accelerator among up
to ``2 × #PEs`` trees.

Each PE decides independently.  The three §4.2 enable conditions:

1. the FU (IU) utilization rate leaves headroom,
2. the L1 is not thrashing (out-of-order across trees would make it worse),
3. the L2/DRAM path is not saturated.

Recovery: if severe locality loss appears while merged, the controller
*quiesces* one tree — the one with the smaller maximum depth and fewer
occupied bunches, since its frozen resources cost least.  Ready/Resting
entries freeze instantly; Executing entries drain first (their memory
requests cannot be recalled — yanking them would leave messages hanging
and deadlock, hence the paper's Quiesce state).  The quiesced tree wakes
when the other completes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.pe import PE
    from .task_tree import TaskTree


class MergeController:
    """Per-PE decisions for running (and quiescing) a second tree."""

    def __init__(self, pe: "PE", tree: "TaskTree") -> None:
        self.pe = pe
        self.tree = tree
        self.config = pe.config
        self.merges = 0
        self.quiesces = 0

    # ------------------------------------------------------------------
    def can_merge(self) -> bool:
        """Whether taking a second search tree is worthwhile right now."""
        if len(self.tree.live_tree_ids()) >= self.config.root_bunches:
            return False
        if self.tree.quiesced_tree_ids():
            return False
        config = self.config
        pe = self.pe
        util_ok = pe.recent_iu_utilization() < config.merge_iu_util_ceiling
        l1_ok = (
            pe.memory.recent_l1_latency(pe.pe_id) < config.merge_l1_latency_ceiling
        )
        mem_ok = (
            pe.memory.memory_pressure(pe.engine.now) < config.merge_mem_latency_ceiling
        )
        if util_ok and l1_ok and mem_ok:
            self.merges += 1
            return True
        return False

    # ------------------------------------------------------------------
    def maybe_quiesce(self, conservative: bool) -> None:
        """Quiesce one tree if merged exploration is thrashing the L1."""
        live = self.tree.live_tree_ids()
        if len(live) < 2 or self.tree.quiesced_tree_ids():
            return
        thrashing = (
            self.pe.memory.recent_l1_latency(self.pe.pe_id)
            > self.config.l1_latency_threshold
        )
        if not (thrashing or conservative):
            return
        victim = self._pick_victim(live)
        if victim is not None:
            self.tree.quiesce_tree(victim)
            self.quiesces += 1

    def _pick_victim(self, live) -> Optional[int]:
        """Smaller max depth, then fewer occupied bunches (§4.2)."""
        best = None
        best_key = None
        for tree_id in live:
            stats = self.tree.tree_stats(tree_id)
            key = (stats["max_depth"], stats["bunches"])
            if best_key is None or key < best_key:
                best, best_key = tree_id, key
        return best

    def on_tree_done(self, tree_id: int) -> None:
        """Wake the quiesced tree once its sibling completes."""
        for quiesced in self.tree.quiesced_tree_ids():
            self.tree.wake_tree(quiesced)
