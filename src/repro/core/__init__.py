"""Shogun core: tasks, the task tree, tokens, scheduling policies."""

from .locality import LocalityMonitor
from .merging import MergeController
from .policies.base import SchedulingPolicy, chunked
from .policies.bfs import BFSPolicy
from .policies.group_dfs import DFSPolicy, GroupDFSPolicy
from .policies.parallel_dfs import ParallelDFSPolicy
from .policies.shogun import ShogunPolicy
from .splitting import Partition, apportion_helpers, plan_partitions
from .task import SimTask, TaskState
from .task_tree import Bunch, TaskTree
from .tokens import INTERMEDIATE_REGION_BASE, SetBufferMap, TokenPool

__all__ = [
    "BFSPolicy",
    "Bunch",
    "DFSPolicy",
    "GroupDFSPolicy",
    "INTERMEDIATE_REGION_BASE",
    "LocalityMonitor",
    "MergeController",
    "ParallelDFSPolicy",
    "Partition",
    "SchedulingPolicy",
    "SetBufferMap",
    "ShogunPolicy",
    "SimTask",
    "TaskState",
    "TaskTree",
    "TokenPool",
    "apportion_helpers",
    "chunked",
    "plan_partitions",
]
