"""Conservative-mode locality monitor (§3.2.3 and Figure 7).

Shogun's out-of-order scheduling trades intermediate-data locality for
parallelism.  Insight 2 says that is usually fine — *except* when the
loss triggers L1 cache thrashing, which must be detected and damped.

The monitor enters **conservative mode** when both Table 3 conditions
hold:

1. the L1 is thrashing — judged by the average L1 access latency
   exceeding ``l1_latency_threshold`` (50 cycles): under thrashing a
   recently visited block is evicted before reuse, so accesses keep
   paying the L2/DRAM path;
2. the PE throughput is low — the IU utilization rate is below
   ``iu_util_threshold`` (50 %), i.e. the thrashing is actually hurting
   and restoring locality can pay off.

While conservative, the scheduler strictly disallows non-sibling tasks
from executing together.  The mode is sticky: it exits only after
``monitor_exit_epochs`` consecutive healthy observations, avoiding
oscillation at the threshold.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a package cycle)
    from ..sim.config import SimConfig


class LocalityMonitor:
    """Hysteretic thrashing detector driving the conservative mode."""

    def __init__(self, config: "SimConfig") -> None:
        if config.monitor_exit_epochs < 1:
            raise ConfigError("monitor_exit_epochs must be >= 1")
        self.config = config
        self.conservative = False
        self._healthy_streak = 0
        self.entries = 0
        self.observations = 0
        self.conservative_observations = 0

    def observe(self, l1_avg_latency: float, iu_utilization: float) -> bool:
        """Fold one (latency, utilization) observation; returns the mode.

        Called by the PE at epoch boundaries with its recent L1 average
        access latency and recent IU utilization rate.
        """
        self.observations += 1
        thrashing = l1_avg_latency > self.config.l1_latency_threshold
        starving = iu_utilization < self.config.iu_util_threshold
        if not self.conservative:
            if thrashing and starving:
                self.conservative = True
                self.entries += 1
                self._healthy_streak = 0
        else:
            if thrashing and starving:
                self._healthy_streak = 0
            else:
                self._healthy_streak += 1
                if self._healthy_streak >= self.config.monitor_exit_epochs:
                    self.conservative = False
                    self._healthy_streak = 0
        if self.conservative:
            self.conservative_observations += 1
        return self.conservative

    @property
    def conservative_fraction(self) -> float:
        """Fraction of observations spent in conservative mode."""
        if self.observations == 0:
            return 0.0
        return self.conservative_observations / self.observations
