"""Address tokens and intermediate-result buffer mapping.

The accelerator preallocates empty vertex sets for each search depth
before the application begins (§3.2.3, following Dryadic and GraphPi);
each preallocated set is tagged with a unique *token*, and tasks of the
same depth contend for that depth's token pool.  A task may only be
scheduled if a token is available for its output candidate set — this is
the memory-footprint control knob shared by every scheduling policy.

:class:`SetBufferMap` gives every (PE, depth, token) buffer a fixed byte
address in the simulated intermediate-result region, below the graph
(CSR) region so the two traffic classes never alias.  Fixed addresses
matter: a token reused by a later task maps to the same cache lines,
which is how buffer recycling interacts with the L1 in the real design.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import SimulationError

#: Base of the intermediate-result address region (below GRAPH_REGION_BASE).
INTERMEDIATE_REGION_BASE = 1 << 20


class TokenPool:
    """A pool of address tokens for one search depth.

    The pool tracks *capacity*, not token identity: ``resize`` changes
    how many tokens may circulate, minting fresh ones to grow and
    retiring tokens to shrink (free ones immediately, held ones lazily
    on release, so a live candidate set is never invalidated).
    """

    def __init__(self, count: int) -> None:
        if count < 1:
            raise SimulationError("token pool needs at least one token")
        self.target = count
        self._next_fresh = count
        self._free: List[int] = list(range(count - 1, -1, -1))
        self._held: set = set()
        self._retired: set = set()  # held tokens that must not return

    @property
    def available(self) -> int:
        """Number of free tokens."""
        return len(self._free)

    @property
    def held(self) -> int:
        """Number of tokens currently held by live candidate sets."""
        return len(self._held)

    def acquire(self) -> Optional[int]:
        """Take a token, or ``None`` when the pool is exhausted."""
        if not self._free:
            return None
        token = self._free.pop()
        self._held.add(token)
        return token

    def release(self, token: int) -> None:
        """Return a token to the pool; double release is a simulator bug."""
        if token not in self._held:
            raise SimulationError(f"release of token {token} not held")
        self._held.remove(token)
        if token in self._retired:
            # A pending shrink consumed this token's capacity.
            self._retired.remove(token)
        else:
            self._free.append(token)

    def resize(self, count: int) -> None:
        """Change the pool capacity (the paper's dynamic token knob)."""
        if count < 1:
            raise SimulationError("token pool cannot shrink below one")
        if count > self.target:
            need = count - self.target
            # A pending shrink can be cancelled before minting fresh tokens.
            while need and self._retired:
                self._retired.pop()
                need -= 1
                # The un-retired token is still held; it returns on release.
            self._free.extend(range(self._next_fresh, self._next_fresh + need))
            self._next_fresh += need
        else:
            drop = self.target - count
            while drop and self._free:
                self._free.pop()
                drop -= 1
            for token in sorted(self._held, reverse=True):
                if not drop:
                    break
                if token not in self._retired:
                    self._retired.add(token)
                    drop -= 1
        self.target = count


class ArrayTokenPool:
    """:class:`TokenPool`-compatible view over the task tree's token arrays.

    The struct-of-arrays task tree keeps its token state in two flat
    ``int64`` arrays (a LIFO free stack per depth plus a free count) so
    compiled scheduler kernels can acquire and release without touching
    Python.  This adapter exposes the slice of those arrays for one depth
    through the :class:`TokenPool` object API — ``acquire``/``release``/
    ``available``/``held`` — which is what the validation harness wraps
    and checks.  Because the adapter reads and writes the *same* memory
    the kernels do, the object view and the kernel view can never drift.

    Deliberately a plain class (no ``__slots__``): the invariant checker
    installs instrumented ``acquire``/``release`` as instance attributes.

    The stack discipline is bit-compatible with :class:`TokenPool`:
    the free stack is initialized ``[count-1 .. 0]`` with the top at the
    end, so token 0 is acquired first and releases push back on top.
    ``resize`` is unsupported — the tree never resizes its pools.
    """

    def __init__(self, free_view, count_view, target: int) -> None:
        self._free = free_view          # int64[target] slice, shared memory
        self._count = count_view        # int64[1] slice, shared memory
        self.target = target

    @property
    def available(self) -> int:
        """Number of free tokens."""
        return int(self._count[0])

    @property
    def held(self) -> int:
        """Number of tokens currently held by live candidate sets."""
        return self.target - int(self._count[0])

    def acquire(self) -> Optional[int]:
        """Take a token, or ``None`` when the pool is exhausted."""
        n = int(self._count[0])
        if n == 0:
            return None
        n -= 1
        self._count[0] = n
        return int(self._free[n])

    def release(self, token: int) -> None:
        """Return a token to the pool; double release is a simulator bug."""
        n = int(self._count[0])
        if n >= self.target or token < 0 or token >= self.target:
            raise SimulationError(f"release of token {token} not held")
        free = self._free
        for i in range(n):
            if free[i] == token:
                raise SimulationError(f"release of token {token} not held")
        free[n] = token
        self._count[0] = n + 1


class SetBufferMap:
    """Byte addresses of preallocated intermediate-set buffers.

    Every buffer holds one candidate set and is sized for the worst case
    (``buffer_lines`` cache lines, normally ``ceil(max_degree * 4 / 64)``),
    so addresses are static for the whole run.  Buffer indices beyond
    ``buffers_per_depth`` (BFS's unbounded frontier, or a grown token
    pool) spill into a per-depth overflow region; addresses stay distinct
    per (depth, index), and the resulting cache pressure *is* the BFS
    memory-consumption explosion the paper describes.
    """

    #: Overflow buffers reserved per depth past the preallocated ones.
    OVERFLOW_SLOTS = 1 << 20

    def __init__(
        self,
        pe_id: int,
        max_depth: int,
        buffers_per_depth: int,
        buffer_lines: int,
        line_bytes: int = 64,
        *,
        base: int = INTERMEDIATE_REGION_BASE,
    ) -> None:
        if buffer_lines < 1:
            buffer_lines = 1
        self.pe_id = pe_id
        self.max_depth = max_depth
        self.buffers_per_depth = buffers_per_depth
        self.buffer_bytes = buffer_lines * line_bytes
        self.line_bytes = line_bytes
        depth_region = self.OVERFLOW_SLOTS * self.buffer_bytes
        pe_region = (max_depth + 1) * depth_region
        self._depth_region = depth_region
        self.base = base + pe_id * pe_region

    def address(self, depth: int, buffer_index: int) -> int:
        """Base byte address of buffer ``buffer_index`` at ``depth``."""
        if depth < 0 or depth > self.max_depth:
            raise SimulationError(f"depth {depth} outside buffer map")
        if buffer_index < 0 or buffer_index >= self.OVERFLOW_SLOTS:
            raise SimulationError(f"buffer_index {buffer_index} out of range")
        return self.base + depth * self._depth_region + buffer_index * self.buffer_bytes

    def lines_for_bytes(self, num_bytes: int) -> int:
        """Cache lines covering ``num_bytes`` (zero only for empty sets)."""
        if num_bytes <= 0:
            return 0
        return -(-num_bytes // self.line_bytes)
