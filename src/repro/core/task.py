"""Task model: the unit of scheduling in graph mining accelerators.

Each node of a search tree (Figure 1 of the paper) is a *task*: matching
one data vertex at one search depth.  Executing a non-leaf task computes
the candidate set its children are drawn from; leaf tasks report a match.
The two-tuple representation of §3.2.1 (depth, vertex — plus the link to
the parent entry) is what the task SPM stores; the simulator keeps the
full embedding on the Python object for convenience, which a hardware
task tree reconstructs by walking parent pointers.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..mining.tree import Expansion


class TaskState(enum.Enum):
    """Task SPM entry states (the four basic states of Figure 4(b)).

    Transient ``WAIT_*`` states of Figure 6 are modelled as fixed
    latencies on the transitions rather than explicit states — the event
    simulator charges their cycles without materializing each arc.
    """

    IDLE = "idle"
    READY = "ready"
    EXECUTING = "executing"
    RESTING = "resting"
    COMPLETE = "complete"
    QUIESCED = "quiesced"


_task_ids = itertools.count()


@dataclass(slots=True)
class SimTask:
    """One schedulable task (a search-tree node) inside the simulator.

    Attributes
    ----------
    depth:
        Search depth (0 = search-tree root).
    vertex:
        The data vertex this task matches.
    embedding:
        Data vertices matched at depths ``0..depth``.
    parent:
        The parent task (``None`` for roots).
    tree:
        Identifier of the search tree instance this task belongs to
        (distinguishes merged trees sharing a PE).
    """

    depth: int
    vertex: int
    embedding: Tuple[int, ...]
    parent: Optional["SimTask"]
    tree: int
    task_id: int = field(default_factory=lambda: next(_task_ids))
    #: Position of ``vertex`` in the parent's candidate list.  The task
    #: tree fetches the vertex from that set when spawning/extending
    #: (Wait_Vertex, Figure 6), so this indexes the cache line the fetch
    #: touches — consecutive siblings share lines, which is precisely the
    #: sibling locality the scheduler tries to preserve.
    child_index: int = 0

    # Scheduling state ---------------------------------------------------
    state: TaskState = TaskState.READY
    token: Optional[int] = None
    set_address: Optional[int] = None

    # Filled at execution time -------------------------------------------
    expansion: Optional[Expansion] = None
    children_vertices: Optional[List[int]] = None
    next_child: int = 0
    live_children: int = 0

    # Simulator back-pointers (hot-path bookkeeping) ----------------------
    #: Global index of the task-tree bunch currently holding this entry
    #: (an index into the tree's struct-of-arrays state; ``None`` for
    #: tasks built outside the tree).
    bunch: Optional[int] = None
    #: Global entry-slot index inside the task tree's SoA state (-1 for
    #: tasks that never occupied an entry).
    slot: int = -1
    #: Materialized ancestor candidate sets visible to this task's
    #: children, cached so siblings share one list instead of each child
    #: re-walking the parent chain.
    child_sets: Optional[List[object]] = None

    # ------------------------------------------------------------------
    @property
    def is_root(self) -> bool:
        """Whether this is a depth-0 (search-tree root) task."""
        return self.depth == 0

    @property
    def unexplored(self) -> int:
        """Number of candidate children not yet turned into tasks."""
        if self.children_vertices is None:
            return 0
        return len(self.children_vertices) - self.next_child

    def take_next_child(self) -> int:
        """Pop the next unexplored candidate vertex (ascending order).

        This is the ``fetch the corresponding vertex from the parent
        task's candidate set`` step of spawning/extending (§3.2.2); the
        symmetry-breaking prune has already truncated the list.
        """
        if self.unexplored <= 0:
            raise IndexError("no unexplored candidates left")
        v = self.children_vertices[self.next_child]
        self.next_child += 1
        return v

    def split_children(self, parts: int) -> List[List[int]]:
        """Carve the unexplored candidate range into ``parts`` shares.

        Used by task-tree splitting (§4.1): only the *unexplored* depth-1
        range of a depth-0 task is divided; this task keeps the first
        share and the rest are shipped to idle PEs.  Returns ``parts``
        lists (possibly fewer if there are not enough candidates); this
        task's own range is truncated to the first share by the caller.
        """
        remaining = self.children_vertices[self.next_child :]
        if parts < 1:
            raise ValueError("parts must be >= 1")
        chunk = -(-len(remaining) // parts) if len(remaining) else 0
        shares = [remaining[i : i + chunk] for i in range(0, len(remaining), chunk)] if chunk else []
        return shares

    def ancestor_at_depth(self, depth: int) -> "SimTask":
        """Walk parent links to the ancestor task at ``depth``."""
        node: Optional[SimTask] = self
        while node is not None and node.depth > depth:
            node = node.parent
        if node is None or node.depth != depth:
            raise LookupError(f"no ancestor at depth {depth}")
        return node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimTask(id={self.task_id}, d={self.depth}, v={self.vertex}, "
            f"state={self.state.value})"
        )
