"""Task-tree splitting: fine-grained load balance across PEs (§4.1).

Root vertices are dispatched to PEs dynamically, so imbalance appears at
the *tail* of a run: most PEs drain their last search trees while a few
grind through heavy ones.  The system scheduler detects this state and
instructs heavily loaded PEs to split their task trees.

Splitting is deliberately conservative and hardware-friendly: only the
depth-0 task's **unexplored depth-1 candidate range** is divided.  That
choice needs just a range split in the donor's task tree, and the only
intermediate data the helpers need is the root's neighbor set (its
depth-1 candidate set) — one bounded transfer instead of ongoing proxy
traffic.  The scheduler grants at most ``lb_max_helpers`` (4) idle PEs
per busy PE per round and re-runs the procedure if imbalance remains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .policies.shogun import ShogunPolicy


@dataclass(frozen=True)
class Partition:
    """One partition message bundle (the three §4.1 message types).

    ``prefix`` is the embedding down to (and including) the split task —
    just the root vertex in the paper's depth-0-only scheme.
    ``set_lines`` is the payload of the prefix's candidate-set cache
    lines; the prefix + range and the set sizes ride along as two extra
    header lines on the NoC.
    """

    prefix: Tuple[int, ...]
    children: Tuple[int, ...]
    set_lines: int
    donor_pe: int

    @property
    def message_lines(self) -> int:
        """Total NoC payload (headers + set data) in cache lines."""
        return self.set_lines + 2


def plan_partitions(policy: "ShogunPolicy", helpers: int) -> List[Partition]:
    """Donor side: split the best task's candidate range into shares.

    The donor keeps the first share (its task tree just sees a truncated
    candidate list); each remaining share becomes a :class:`Partition`
    for one helper.  Returns an empty list when nothing is splittable —
    the multi-round procedure will try again later if imbalance remains.
    """
    if helpers < 1:
        return []
    task = policy.tree.splittable_task(policy.pe.config.split_depth_limit)
    if task is None or task.children_vertices is None:
        return []
    pool = policy.tree.harvest_split_pool(task)
    if len(pool) < 2:
        # Put whatever was withdrawn back; nothing worth shipping.
        task.children_vertices = task.children_vertices + pool
        return []
    chunk = -(-len(pool) // (helpers + 1))
    shares = [pool[i : i + chunk] for i in range(0, len(pool), chunk)]
    # Donor keeps the first share: re-append it to its candidate list.
    task.children_vertices = task.children_vertices + shares[0]
    line_bytes = policy.pe.config.cache_line_bytes
    set_lines = 0
    node = task
    while node is not None:
        if node.expansion is not None:
            set_lines += -(-len(node.expansion.candidates) * 4 // line_bytes)
        node = node.parent
    return [
        Partition(
            prefix=tuple(task.embedding),
            children=tuple(share),
            set_lines=set_lines,
            donor_pe=policy.pe.pe_id,
        )
        for share in shares[1:]
    ]


def apportion_helpers(
    busy: Sequence[int], idle: Sequence[int], max_helpers: int
) -> Dict[int, List[int]]:
    """Evenly apportion idle PEs to busy PEs (§4.1 step 1).

    Returns ``{busy_pe: [idle_pe, ...]}`` granting at most ``max_helpers``
    helpers per busy PE; leftover idle PEs stay unassigned until the next
    round.
    """
    assignment: Dict[int, List[int]] = {pe: [] for pe in busy}
    if not busy or not idle:
        return assignment
    pool = list(idle)
    cursor = 0
    while pool:
        target = busy[cursor % len(busy)]
        if len(assignment[target]) >= max_helpers:
            if all(len(assignment[b]) >= max_helpers for b in busy):
                break
            cursor += 1
            continue
        assignment[target].append(pool.pop(0))
        cursor += 1
    return assignment
