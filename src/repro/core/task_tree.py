"""The Shogun task tree: decoupled task generation and execution (§3.2).

The task tree is the structure that distinguishes Shogun from the task
*stack* of prior designs: completed tasks spawn children immediately
(no barrier), children wait in the tree as Ready entries, and a scheduler
picks execution order with both parallelism and locality in mind.

Layout (§3.2.1, Table 3): the task SPM is statically arranged as
Depth × Bunch.  A *bunch* groups same-parent sibling tasks; its entry
count equals the PE execution width so a full bunch can occupy the whole
PE (locality), while multiple bunches per depth provide non-sibling
candidates when siblings run short (parallelism).  Depth 0 and 1 have
``root_bunches`` bunches (2, for search-tree merging); deeper depths have
``bunches_per_depth`` (4).

State machine (§3.2.2, Figures 5/6): entries move through
Idle → Ready → Executing → Resting → Idle.  Spawning takes an idle bunch
at the next depth and fills it from the parent's candidate set; a task
that cannot spawn *extends* — it reuses its entry (and address token) to
explore the parent's next unexplored candidate; pruned candidates never
enter the tree (the symmetry bound already truncated the children list).
When a bunch drains it is recycled, its parent's subtree is complete, and
the completion propagates upward — at depth 0 that ends a search tree.

Scheduling (§3.2.3, Figure 7): prefer Ready siblings of the last
selected bunch; otherwise round-robin across bunches — unless
conservative mode forbids mixing non-siblings.  A task is only *valid*
if an address token for its depth is available (memory-footprint
control).

Representation
--------------
The tree state lives in a :class:`TaskTreeState` struct-of-arrays block:
per-bunch arrays (depth, capacity, in-use flag, tree id, active/executing
counts, quiesce flag, a FIFO ring of ready entry slots) and per-entry
arrays mirroring the :class:`SimTask` scheduling fields (vertex,
child index, held token).  That is the same flat layout the hardware
task SPM has — and it is what lets the hot scheduler decisions
(``tree_select`` / ``tree_fill`` / ``tree_complete``) run as compiled
backend kernels over raw ``int64`` buffers.

Python :class:`SimTask` objects are materialized *lazily*: a Ready entry
is just an array row until the scheduler picks it.  Executing and
Resting tasks are real objects (the PE pipeline and the split/merge
machinery need them); the object path and the kernels mutate the same
arrays, so there is exactly one source of truth.  Instrumented runs
(trace recorder, invariant checker) pin the tree to the interpreted
object path, whose token traffic flows through the per-depth
:class:`~repro.core.tokens.ArrayTokenPool` adapters the checker wraps.

A completion cannot soundly fuse the *next* ``tree_select`` into the
same compiled call: selections happen at dispatch events, completions at
completion events, and fusing them would start tasks one engine event
early (changing kick coalescing and root feeding, i.e. real metrics).
The compiled run-of-tasks instead lives at the dispatch site — one
``tree_select`` batch call drains every free execution slot
(:meth:`select_batch`), which is exactly equivalent to the per-call
loop because bookings never mutate tree state.
"""

from __future__ import annotations

import os
import time
from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from ..errors import SimulationError
from .task import SimTask, TaskState
from .tokens import ArrayTokenPool

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.pe import PE

#: ``ctl`` control-word indices (shared with the backend kernels).
CTL_READY = 0       # schedulable Ready entries (quiesced trees included)
CTL_EXECUTING = 1   # entries currently in the PE pipeline
CTL_LAST_BUNCH = 2  # last-selected bunch (-1 = none): sibling preference
CTL_EXEC_BUNCH = 3  # bunch of the last dispatch (-1): conservative mode
CTL_RR_CURSOR = 4   # round-robin cursor over the global bunch list
CTL_SCHEDULED = 5   # diagnostic: tasks handed to the PE
CTL_STALLS = 6      # diagnostic: token-validity stalls
CTL_WAITS = 7       # diagnostic: spawns queued for an idle bunch
CTL_WORDS = 8

#: ``tree_complete`` transition results (shared with the backend kernels).
DONE_SPAWNED = 0    # children admitted into out[0] (count in out[1])
DONE_WAITING = 1    # no idle child bunch: parent queued
DONE_EXTENDED = 2   # entry + token reused for the next candidate
DONE_IDLED = 3      # entry idled, bunch still has active entries
DONE_RECYCLE = 4    # entry idled and the bunch drained: recycle in Python
DONE_UNDERFLOW = 5  # active-count underflow (simulator bug)

_DEBUG_CHECK = os.environ.get("REPRO_TREE_DEBUG", "") == "1"

#: Module-level switch for ``repro profile``'s scheduler attribution:
#: when on, trees accumulate per-op wall time in ``op_seconds``.
PROFILING = False


def enable_profiling(on: bool = True) -> None:
    """Toggle per-op timing on trees constructed afterwards."""
    global PROFILING
    PROFILING = on


class TaskTreeState:
    """Struct-of-arrays task-tree state (the simulated task SPM).

    All arrays are ``int64``; entry *slots* are globally numbered
    ``bunch * cap + position`` where ``cap`` is the widest bunch
    capacity, so one flat per-entry array serves every bunch.  The
    per-bunch ready FIFO is a ring (``ring``/``ring_head``/``ring_len``)
    over slot ids, supporting O(1) pop/push and ordered middle deletion
    for the token-validity scan.  Token pools are a LIFO free stack per
    depth (``tok_free``/``tok_n``), bit-compatible with
    :class:`~repro.core.tokens.TokenPool` order.
    """

    __slots__ = (
        "nb", "cap", "max_depth", "tokens_per_depth",
        "b_depth", "b_cap", "b_index", "b_in_use", "b_tree",
        "b_active", "b_executing", "b_quiesced",
        "ring", "ring_head", "ring_len",
        "e_vertex", "e_child_index", "e_token",
        "tok_free", "tok_n", "d_start", "d_end", "ctl",
    )

    def __init__(self, config, max_depth: int) -> None:
        layout: List[Tuple[int, int, int]] = []  # (depth, capacity, index)
        for depth in range(max_depth + 1):
            if depth == 0:
                per_depth = [(1, i) for i in range(config.root_bunches)]
            elif depth == 1:
                per_depth = [
                    (config.bunch_entries, i) for i in range(config.root_bunches)
                ]
            else:
                per_depth = [
                    (config.bunch_entries, i)
                    for i in range(config.bunches_per_depth)
                ]
            layout.extend((depth, cap, i) for cap, i in per_depth)

        nb = len(layout)
        cap = max(c for _, c, _ in layout)
        self.nb = nb
        self.cap = cap
        self.max_depth = max_depth
        self.tokens_per_depth = config.tokens_per_depth

        i64 = np.int64
        self.b_depth = np.array([d for d, _, _ in layout], dtype=i64)
        self.b_cap = np.array([c for _, c, _ in layout], dtype=i64)
        self.b_index = np.array([i for _, _, i in layout], dtype=i64)
        self.b_in_use = np.zeros(nb, dtype=i64)
        self.b_tree = np.full(nb, -1, dtype=i64)
        self.b_active = np.zeros(nb, dtype=i64)
        self.b_executing = np.zeros(nb, dtype=i64)
        self.b_quiesced = np.zeros(nb, dtype=i64)

        self.ring = np.zeros(nb * cap, dtype=i64)
        self.ring_head = np.zeros(nb, dtype=i64)
        self.ring_len = np.zeros(nb, dtype=i64)

        self.e_vertex = np.zeros(nb * cap, dtype=i64)
        self.e_child_index = np.zeros(nb * cap, dtype=i64)
        self.e_token = np.full(nb * cap, -1, dtype=i64)

        # Per-depth free stacks, top at the end: [T-1 .. 0] so token 0 is
        # acquired first — identical order to TokenPool's list.
        tpd = config.tokens_per_depth
        self.tok_free = np.zeros(max(1, max_depth) * tpd, dtype=i64)
        self.tok_n = np.zeros(max(1, max_depth), dtype=i64)
        for depth in range(max_depth):
            self.tok_free[depth * tpd:(depth + 1) * tpd] = np.arange(
                tpd - 1, -1, -1, dtype=i64
            )
            self.tok_n[depth] = tpd

        # Per-depth bunch index ranges (construction order preserved for
        # the idle-bunch scans).
        self.d_start = np.zeros(max_depth + 2, dtype=i64)
        self.d_end = np.zeros(max_depth + 2, dtype=i64)
        for depth in range(max_depth + 1):
            rows = [b for b, (d, _, _) in enumerate(layout) if d == depth]
            self.d_start[depth] = rows[0]
            self.d_end[depth] = rows[-1] + 1

        self.ctl = np.zeros(CTL_WORDS, dtype=i64)
        self.ctl[CTL_LAST_BUNCH] = -1
        self.ctl[CTL_EXEC_BUNCH] = -1


class Bunch:
    """Read-only object view of one bunch (debugging / introspection).

    The authoritative state lives in :class:`TaskTreeState`; this view is
    built on demand by :meth:`TaskTree.bunch_view` for the instrumented,
    splitting and merging inspection paths that want the PR-9-era object
    shape.  ``ready`` lists ``(slot, vertex, child_index, token)`` tuples
    in FIFO order.
    """

    __slots__ = ("depth", "capacity", "index", "parent", "ready", "active",
                 "executing", "in_use", "tree")

    def __init__(self, depth: int, capacity: int, index: int) -> None:
        self.depth = depth
        self.capacity = capacity
        self.index = index
        self.parent: Optional[SimTask] = None
        self.ready: List[Tuple[int, int, int, Optional[int]]] = []
        self.active = 0
        self.executing = 0
        self.in_use = False
        self.tree: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Bunch(d={self.depth}, i={self.index}, in_use={self.in_use}, "
            f"ready={len(self.ready)}, active={self.active})"
        )


class TaskTree:
    """Per-PE task tree: storage, FSM and scheduler."""

    def __init__(self, pe: "PE", on_tree_done: Callable[[int], None]) -> None:
        self.pe = pe
        config = pe.config
        schedule = pe.schedule
        if schedule.max_depth > config.max_pattern_depth:
            raise SimulationError(
                f"pattern depth {schedule.max_depth} exceeds task tree "
                f"maximum {config.max_pattern_depth}"
            )
        self.max_depth = schedule.max_depth
        self.on_tree_done = on_tree_done

        self.state = TaskTreeState(config, self.max_depth)
        s = self.state

        #: Parent task of each in-use bunch (``None`` for root bunches).
        self._bunch_parent: List[Optional[SimTask]] = [None] * s.nb
        #: Static depth-0 bunch indices (geometry never changes).
        self._root_range = range(int(s.d_start[0]), int(s.d_end[0]))

        # Address tokens gate output-set storage; leaf tasks produce none.
        # The pools are views over the SoA token arrays (ArrayTokenPool),
        # so the object path and the kernels share one book.
        tpd = config.tokens_per_depth
        self.tokens: Dict[int, ArrayTokenPool] = {
            depth: ArrayTokenPool(
                s.tok_free[depth * tpd:(depth + 1) * tpd],
                s.tok_n[depth:depth + 1],
                tpd,
            )
            for depth in range(self.max_depth)
        }
        self._pool_dicts = tuple(p.__dict__ for p in self.tokens.values())
        #: Preallocated buffer addresses per (depth, token).
        self._addr: List[List[int]] = [
            [pe.buffer_map.address(d, t) for t in range(tpd)]
            for d in range(self.max_depth)
        ]

        self._waiting_spawn: Dict[int, Deque[SimTask]] = {
            depth: deque() for depth in range(1, self.max_depth + 1)
        }
        self._quiesced_trees: set = set()
        self._live_trees: set = set()

        # Scheduler-attribution diagnostics (``repro profile``): per-op
        # kernel/object call counts, object-path escape reasons, and —
        # when profiling is enabled — per-op wall time.
        self.op_calls = {
            "select_kernel": 0, "select_object": 0,
            "fill_kernel": 0, "fill_object": 0,
            "complete_kernel": 0, "complete_object": 0,
        }
        self.op_escapes = {
            "instrumented": 0,   # trace/invariant hooks pin the object path
            "pinned_off": 0,     # config.tree_kernels=False (or no kernels)
            "list_span": 0,      # children not a contiguous int64 span
            "cold_path": 0,      # recycle propagation / partition intake
        }
        self.op_seconds = {"select": 0.0, "fill": 0.0, "complete": 0.0}
        self._profiling = PROFILING

        self._out_slots = np.zeros(max(16, s.nb * s.cap), dtype=np.int64)
        self._out2 = np.zeros(2, dtype=np.int64)
        self._empty_children = np.zeros(0, dtype=np.int64)
        self._kernel_ops = None
        self._bind_kernels(config)

    # ------------------------------------------------------------------
    # kernel binding
    # ------------------------------------------------------------------
    def _bind_kernels(self, config) -> None:
        """Bind the backend's tree kernels over this tree's arrays.

        ``config.tree_kernels`` mirrors ``macro_step``: ``None`` (auto)
        uses the kernels exactly when the active backend is compiled,
        ``True`` forces them (including the interpreted reference loops
        under pure — the differential-testing configuration), ``False``
        pins the object path.
        """
        mode = getattr(config, "tree_kernels", None)
        if mode is False:
            return
        memory = getattr(self.pe, "memory", None)
        kernels = getattr(memory, "_kernels", None)
        if kernels is None:
            return
        binder = getattr(kernels, "tree_bind", None)
        if binder is not None and (mode is True or kernels.compiled):
            self._kernel_ops = binder(self.state)
            return
        select = getattr(kernels, "tree_select", None)
        if select is None or not (mode is True or kernels.compiled):
            return
        s = self.state
        shared = (
            s.b_depth, s.b_cap, s.b_in_use, s.b_tree, s.b_quiesced,
            s.b_active, s.b_executing, s.ring, s.ring_head, s.ring_len,
            s.e_vertex, s.e_child_index, s.e_token,
            s.tok_free, s.tok_n, s.d_start, s.d_end, s.ctl,
            s.nb, s.cap, s.max_depth, s.tokens_per_depth,
        )
        fill = kernels.tree_fill
        complete = kernels.tree_complete

        class _Ops:
            __slots__ = ("select", "fill", "complete")

        ops = _Ops()
        ops.select = lambda conservative, k, out: select(
            *shared, conservative, k, out
        )
        ops.fill = lambda b, tree_id, quiesced, vertices, first, count: fill(
            *shared, b, tree_id, quiesced, vertices, first, count
        )
        ops.complete = (
            lambda slot, b, has_children, children, first, navail,
            parent_unexplored, ext_vertex, ext_position, tree_quiesced, out:
            complete(
                *shared, slot, b, has_children, children, first, navail,
                parent_unexplored, ext_vertex, ext_position, tree_quiesced,
                out,
            )
        )
        self._kernel_ops = ops

    def _kernels_allowed(self) -> bool:
        """Whether the compiled path may run *right now*.

        Instrumentation (trace recorder, invariant checker) installs
        instance-attribute wrappers on the PE hooks and/or the token
        pool adapters; any of those pins the tree to the object path so
        every wrapped call keeps firing.  Checked per call — hooks can
        attach at any time between events.
        """
        pe_dict = self.pe.__dict__
        if "_start_task" in pe_dict or "_complete_task" in pe_dict:
            return False
        for pool_dict in self._pool_dicts:
            if "acquire" in pool_dict or "release" in pool_dict:
                return False
        return True

    # ------------------------------------------------------------------
    # root / partition intake
    # ------------------------------------------------------------------
    def free_root_slots(self) -> int:
        """Idle depth-0 bunches (capacity for new search trees).

        The depth-0 range is tiny (``root_bunches``, typically 2) and
        this runs on the root-feed path, so scalar reads beat a numpy
        slice reduction.
        """
        in_use = self.state.b_in_use
        n = 0
        for b in self._root_range:
            if not in_use[b]:
                n += 1
        return n

    def add_root(self, vertex: int, tree_id: int) -> None:
        """Install a new search-tree root as a Ready depth-0 entry."""
        b = self._idle_bunch(0)
        if b is None:
            raise SimulationError("no idle depth-0 bunch for a new root")
        s = self.state
        slot = b * s.cap
        s.b_in_use[b] = 1
        s.b_tree[b] = tree_id
        self._bunch_parent[b] = None
        s.b_active[b] = 1
        s.b_quiesced[b] = 0
        s.e_vertex[slot] = vertex
        s.e_child_index[slot] = 0
        s.e_token[slot] = -1
        s.ring[slot] = slot
        s.ring_head[b] = 0
        s.ring_len[b] = 1
        s.ctl[CTL_READY] += 1
        self._live_trees.add(tree_id)

    def add_partition(
        self, prefix: Tuple[int, ...], children: List[int], tree_id: int
    ) -> List[SimTask]:
        """Install a split search-tree partition (task-tree splitting, §4.1).

        The partition arrives *already executed* down to the split task:
        the message carried the embedding prefix (just the root vertex in
        the paper's depth-0-only scheme), the assigned candidate range
        and the prefix's candidate-set cache lines.  The local entries
        for the whole prefix are created directly in Resting state and
        the deepest one spawns from the assigned range.
        """
        s = self.state
        chain: List[SimTask] = []
        parent: Optional[SimTask] = None
        for d, vertex in enumerate(prefix):
            b = self._idle_bunch(d)
            if b is None:
                raise SimulationError(f"no idle depth-{d} bunch for a partition")
            task = SimTask(
                depth=d,
                vertex=int(vertex),
                embedding=tuple(int(v) for v in prefix[: d + 1]),
                parent=parent,
                tree=tree_id,
            )
            slot = b * s.cap
            if d < self.max_depth:
                token = self.tokens[d].acquire()
                if token is None:
                    raise SimulationError(f"no depth-{d} token for a partition")
                task.token = token
                task.set_address = self.pe.buffer_map.address(d, token)
                s.e_token[slot] = token
            else:
                s.e_token[slot] = -1
            task.expansion = self.pe.context.expand(task.embedding)
            if d < len(prefix) - 1:
                # Interior prefix entry: its only live candidate is the
                # next prefix vertex; everything else stays on the donor.
                task.children_vertices = [int(prefix[d + 1])]
                task.next_child = 1
            else:
                task.children_vertices = list(children)
            task.state = TaskState.RESTING
            task.bunch = b
            task.slot = slot
            s.e_vertex[slot] = task.vertex
            s.e_child_index[slot] = 0
            s.b_in_use[b] = 1
            s.b_tree[b] = tree_id
            self._bunch_parent[b] = parent
            s.b_active[b] = 1
            s.b_quiesced[b] = 0
            self.pe.footprint_add(len(task.expansion.candidates) * 4)
            chain.append(task)
            parent = task
        self._live_trees.add(tree_id)
        self._spawn_or_wait(chain[-1])
        return chain

    def _idle_bunch(self, depth: int) -> Optional[int]:
        s = self.state
        in_use = s.b_in_use
        for b in range(int(s.d_start[depth]), int(s.d_end[depth])):
            if not in_use[b]:
                return b
        return None

    # ------------------------------------------------------------------
    # scheduling (Figure 7)
    # ------------------------------------------------------------------
    def select(self, conservative: bool) -> Optional[SimTask]:
        """Pick the next task to execute, honoring tokens and the mode.

        Bunches are considered in preference order (siblings of the last
        selection first, then round-robin; conservative mode restricts to
        the executing bunch).  The decision itself runs in the backend's
        ``tree_select`` kernel when one is bound and no instrumentation
        pins the object path; both paths mutate the same arrays.
        """
        s = self.state
        if not s.ctl[CTL_READY]:
            return None
        ops = self._kernel_ops
        if ops is not None and self._kernels_allowed():
            self.op_calls["select_kernel"] += 1
            if self._profiling:
                begin = time.perf_counter()
                n = ops.select(1 if conservative else 0, 1, self._out_slots)
                self.op_seconds["select"] += time.perf_counter() - begin
            else:
                n = ops.select(1 if conservative else 0, 1, self._out_slots)
            if n == 0:
                return None
            return self._materialize(int(self._out_slots[0]))
        if ops is not None:
            self.op_escapes["instrumented"] += 1
        else:
            self.op_escapes["pinned_off"] += 1
        self.op_calls["select_object"] += 1
        return self._select_py(conservative)

    def select_batch(self, conservative: bool, limit: int) -> List[SimTask]:
        """Schedule up to ``limit`` tasks in one compiled run.

        Exactly equivalent to calling :meth:`select` ``limit`` times and
        stopping at the first ``None``: a selection only reads and writes
        tree/token state, which bookings never touch, so draining a whole
        dispatch's worth of free slots in one kernel call preserves
        per-call order bit-for-bit (including token-stall accounting).
        """
        if limit <= 0:
            return []
        s = self.state
        if not s.ctl[CTL_READY]:
            return []
        ops = self._kernel_ops
        if ops is not None and self._kernels_allowed():
            out = self._out_slots
            self.op_calls["select_kernel"] += 1
            if self._profiling:
                begin = time.perf_counter()
                n = ops.select(1 if conservative else 0, limit, out)
                self.op_seconds["select"] += time.perf_counter() - begin
            else:
                n = ops.select(1 if conservative else 0, limit, out)
            materialize = self._materialize
            return [materialize(int(out[i])) for i in range(n)]
        if ops is not None:
            self.op_escapes["instrumented"] += 1
        else:
            self.op_escapes["pinned_off"] += 1
        tasks: List[SimTask] = []
        select_py = self._select_py
        calls = self.op_calls
        while len(tasks) < limit:
            if not s.ctl[CTL_READY]:
                break
            calls["select_object"] += 1
            task = select_py(conservative)
            if task is None:
                break
            tasks.append(task)
        return tasks

    def _select_py(self, conservative: bool) -> Optional[SimTask]:
        """Interpreted mirror of the ``tree_select`` kernel."""
        s = self.state
        ctl = s.ctl
        ring_len = s.ring_len
        quiesced = s.b_quiesced
        if conservative and ctl[CTL_EXECUTING] > 0:
            b = int(ctl[CTL_EXEC_BUNCH])
            if b >= 0 and ring_len[b] and not quiesced[b]:
                return self._schedule_from(b)
            return None
        last = int(ctl[CTL_LAST_BUNCH])
        if last >= 0 and ring_len[last] and not quiesced[last]:
            task = self._schedule_from(last)
            if task is not None:
                return task
        n = s.nb
        start = int(ctl[CTL_RR_CURSOR])
        for offset in range(n):
            b = (start + offset) % n
            if b == last or not ring_len[b] or quiesced[b]:
                continue
            ctl[CTL_RR_CURSOR] = (start + offset + 1) % n
            task = self._schedule_from(b)
            if task is not None:
                return task
        return None

    def _schedule_from(self, b: int) -> Optional[SimTask]:
        """Schedule one Ready entry out of bunch ``b`` (``None`` = stall).

        Extended entries keep their token; only tokenless entries contend
        for the depth's pool (the Figure 7 valid check).  With the pool
        drained, a token-holding entry anywhere in the bunch is still
        schedulable — the scheduler reads all entries of a bunch, so no
        head-of-line blocking.
        """
        s = self.state
        depth = int(s.b_depth[b])
        leaf = depth >= self.max_depth
        cap = s.cap
        base = b * cap
        ring = s.ring
        head = int(s.ring_head[b])
        length = int(s.ring_len[b])
        if leaf or s.tok_n[depth] > 0:
            slot = int(ring[base + head])
            s.ring_head[b] = (head + 1) % cap
            s.ring_len[b] = length - 1
        else:
            e_token = s.e_token
            slot = -1
            for j in range(length):
                cand = int(ring[base + (head + j) % cap])
                if e_token[cand] >= 0:
                    slot = cand
                    for k in range(j, length - 1):
                        ring[base + (head + k) % cap] = (
                            ring[base + (head + k + 1) % cap]
                        )
                    s.ring_len[b] = length - 1
                    break
            if slot < 0:
                s.ctl[CTL_STALLS] += 1
                return None
        s.ctl[CTL_READY] -= 1
        if not leaf and s.e_token[slot] < 0:
            # The pool was non-empty (checked above); acquire through the
            # adapter so instrumented wrappers observe the traffic.
            s.e_token[slot] = self.tokens[depth].acquire()
        s.b_executing[b] += 1
        ctl = s.ctl
        ctl[CTL_EXECUTING] += 1
        ctl[CTL_EXEC_BUNCH] = b
        ctl[CTL_LAST_BUNCH] = b
        ctl[CTL_SCHEDULED] += 1
        return self._materialize(slot, b)

    def _materialize(self, slot: int, b: Optional[int] = None) -> SimTask:
        """Build the Executing :class:`SimTask` for a just-scheduled slot."""
        s = self.state
        if b is None:
            b = slot // s.cap
        parent = self._bunch_parent[b]
        v = int(s.e_vertex[slot])
        depth = int(s.b_depth[b])
        task = SimTask(
            depth=depth,
            vertex=v,
            embedding=(parent.embedding + (v,)) if parent is not None else (v,),
            parent=parent,
            tree=int(s.b_tree[b]),
            child_index=int(s.e_child_index[slot]),
        )
        task.state = TaskState.EXECUTING
        task.bunch = b
        task.slot = slot
        token = int(s.e_token[slot])
        if token >= 0:
            task.token = token
            addrs = self._addr[depth]
            task.set_address = (
                addrs[token]
                if token < len(addrs)
                else self.pe.buffer_map.address(depth, token)
            )
        return task

    # ------------------------------------------------------------------
    # completion, spawning, extending (Figures 5/6)
    # ------------------------------------------------------------------
    def on_complete(self, task: SimTask) -> None:
        """A task finished its PE pipeline; advance the FSM."""
        b = self._bunch_of(task)
        s = self.state
        cv = task.children_vertices
        has_children = cv is not None and len(cv) > 0
        ops = self._kernel_ops
        if ops is not None:
            if not self._kernels_allowed():
                self.op_escapes["instrumented"] += 1
            elif has_children and not (
                isinstance(cv, np.ndarray) and cv.dtype == np.int64
            ):
                # Partition interiors / tests hand the tree plain lists;
                # the kernel wants one contiguous int64 span.
                self.op_escapes["list_span"] += 1
            else:
                self._complete_kernel(task, b, cv, has_children)
                return
        else:
            self.op_escapes["pinned_off"] += 1
        self.op_calls["complete_object"] += 1
        s.b_executing[b] -= 1
        s.ctl[CTL_EXECUTING] -= 1
        if has_children:
            self._spawn_or_wait(task)
        else:
            self._retire_set(task)
            self._extend_or_idle(task, b)

    def _complete_kernel(self, task, b, cv, has_children) -> None:
        """Run the whole completion transition in the backend kernel."""
        ops = self._kernel_ops
        self.op_calls["complete_kernel"] += 1
        out = self._out2
        if has_children:
            first = task.next_child
            tree_quiesced = 1 if task.tree in self._quiesced_trees else 0
            if self._profiling:
                begin = time.perf_counter()
                action = ops.complete(
                    task.slot, b, 1, cv, first, len(cv), 0, 0, 0,
                    tree_quiesced, out,
                )
                self.op_seconds["complete"] += time.perf_counter() - begin
            else:
                action = ops.complete(
                    task.slot, b, 1, cv, first, len(cv), 0, 0, 0,
                    tree_quiesced, out,
                )
            task.state = TaskState.RESTING
            if action == DONE_SPAWNED:
                target = int(out[0])
                self._bunch_parent[target] = task
                task.next_child = first + int(out[1])
                return
            if action == DONE_UNDERFLOW:
                raise SimulationError("spawning with no unexplored candidates")
            # DONE_WAITING: the kernel counted the wait; queue the parent.
            self._waiting_spawn[task.depth + 1].append(task)
            return
        self._retire_set(task)
        parent = task.parent
        ext_vertex = 0
        ext_position = 0
        unexplored = 0
        if parent is not None:
            unexplored = parent.unexplored
            if unexplored > 0:
                ext_position = parent.next_child
                ext_vertex = int(parent.children_vertices[ext_position])
        if self._profiling:
            begin = time.perf_counter()
            action = ops.complete(
                task.slot, b, 0, self._empty_children, 0, 0,
                unexplored, ext_vertex, ext_position, 0, out,
            )
            self.op_seconds["complete"] += time.perf_counter() - begin
        else:
            action = ops.complete(
                task.slot, b, 0, self._empty_children, 0, 0,
                unexplored, ext_vertex, ext_position, 0, out,
            )
        if action == DONE_EXTENDED:
            parent.next_child = ext_position + 1
            task.state = TaskState.IDLE
            return
        if action == DONE_UNDERFLOW:
            raise SimulationError("bunch active count underflow")
        # DONE_IDLED / DONE_RECYCLE: the kernel released the entry token.
        task.token = None
        task.state = TaskState.IDLE
        if action == DONE_RECYCLE:
            self.op_escapes["cold_path"] += 1
            self._recycle(b)

    def _bunch_of(self, task: SimTask) -> int:
        # Every entry records its bunch when installed; fall back to the
        # structural scan (children live in the bunch whose parent is
        # task.parent; roots in depth-0 bunches keyed by tree) for tasks
        # built outside the normal intake paths.
        s = self.state
        b = task.bunch
        if b is not None and b >= 0 and s.b_in_use[b]:
            return b
        bunch_parent = self._bunch_parent
        for b in range(int(s.d_start[task.depth]), int(s.d_end[task.depth])):
            if s.b_in_use[b] and (
                (task.parent is None and s.b_tree[b] == task.tree
                 and bunch_parent[b] is None)
                or (task.parent is not None
                    and bunch_parent[b] is task.parent)
            ):
                return b
        raise SimulationError(f"task {task!r} belongs to no bunch")

    def _spawn_or_wait(self, task: SimTask) -> None:
        """Spawn a child bunch now, or queue until one is idle."""
        child_depth = task.depth + 1
        b = self._idle_bunch(child_depth)
        task.state = TaskState.RESTING
        if b is None:
            self.state.ctl[CTL_WAITS] += 1
            self._waiting_spawn[child_depth].append(task)
            return
        self._fill_bunch(task, b)

    def _fill_bunch(self, parent: SimTask, b: int) -> None:
        """Admit the parent's next candidate span into idle bunch ``b``.

        Children are *not* materialized: each becomes one row of the
        per-entry arrays plus a ready-ring slot, built from the parent's
        contiguous candidate span in one pass (compiled ``tree_fill``
        when bound; this mirror otherwise).
        """
        s = self.state
        vertices = parent.children_vertices
        first = parent.next_child
        count = min(int(s.b_cap[b]), len(vertices) - first)
        if count <= 0:
            raise SimulationError("spawning with no unexplored candidates")
        tree = parent.tree
        quiesced = 1 if tree in self._quiesced_trees else 0
        self._bunch_parent[b] = parent
        ops = self._kernel_ops
        if (
            ops is not None
            and isinstance(vertices, np.ndarray)
            and vertices.dtype == np.int64
            and self._kernels_allowed()
        ):
            self.op_calls["fill_kernel"] += 1
            if self._profiling:
                begin = time.perf_counter()
                ops.fill(b, tree, quiesced, vertices, first, count)
                self.op_seconds["fill"] += time.perf_counter() - begin
            else:
                ops.fill(b, tree, quiesced, vertices, first, count)
        else:
            if ops is None:
                self.op_escapes["pinned_off"] += 1
            elif not self._kernels_allowed():
                self.op_escapes["instrumented"] += 1
            else:
                self.op_escapes["list_span"] += 1
            self.op_calls["fill_object"] += 1
            s.b_in_use[b] = 1
            s.b_tree[b] = tree
            s.b_quiesced[b] = quiesced
            base = b * s.cap
            e_vertex = s.e_vertex
            e_child_index = s.e_child_index
            e_token = s.e_token
            ring = s.ring
            for i in range(count):
                slot = base + i
                e_vertex[slot] = vertices[first + i]
                e_child_index[slot] = first + i
                e_token[slot] = -1
                ring[slot] = slot
            s.ring_head[b] = 0
            s.ring_len[b] = count
            s.ctl[CTL_READY] += count
            s.b_active[b] = count
        parent.next_child = first + count

    def _extend_or_idle(self, task: SimTask, b: int) -> None:
        """Task extending / entry recycling (§3.2.2)."""
        s = self.state
        parent = task.parent
        if parent is not None and parent.unexplored > 0:
            position = parent.next_child
            parent.next_child = position + 1
            slot = task.slot
            # Entry and address token are reused by the extended entry.
            s.e_vertex[slot] = parent.children_vertices[position]
            s.e_child_index[slot] = position
            task.state = TaskState.IDLE
            cap = s.cap
            s.ring[b * cap + (int(s.ring_head[b]) + int(s.ring_len[b])) % cap] = slot
            s.ring_len[b] += 1
            s.ctl[CTL_READY] += 1
            return
        # No candidate to extend onto: the entry idles.
        if task.token is not None:
            self.tokens[task.depth].release(task.token)
            task.token = None
        s.e_token[task.slot] = -1
        task.state = TaskState.IDLE
        s.b_active[b] -= 1
        if s.b_active[b] < 0:
            raise SimulationError("bunch active count underflow")
        if s.b_active[b] == 0:
            self._recycle(b)

    def _retire_set(self, task: SimTask) -> None:
        """The task's candidate set (if any) is dead; drop its footprint."""
        if task.expansion is not None:
            self.pe.footprint_remove(len(task.expansion.candidates) * 4)

    def _recycle(self, b: int) -> None:
        """Recycle a drained bunch and propagate subtree completion.

        This is the cold edge of the FSM (waiter refill, tree completion
        callbacks, upward propagation through Python parent objects) and
        deliberately stays interpreted; the kernels stop at
        ``DONE_RECYCLE`` and hand the drained bunch here.
        """
        s = self.state
        parent = self._bunch_parent[b]
        tree = int(s.b_tree[b])
        depth = int(s.b_depth[b])
        s.b_in_use[b] = 0
        self._bunch_parent[b] = None
        s.b_tree[b] = -1
        s.b_executing[b] = 0
        s.b_quiesced[b] = 0
        s.ring_head[b] = 0
        s.ring_len[b] = 0
        ctl = s.ctl
        if ctl[CTL_LAST_BUNCH] == b:
            ctl[CTL_LAST_BUNCH] = -1
        if ctl[CTL_EXEC_BUNCH] == b:
            ctl[CTL_EXEC_BUNCH] = -1

        # A freed bunch first serves parents waiting to spawn at this depth.
        waiters = self._waiting_spawn.get(depth)
        if waiters:
            self._fill_bunch(waiters.popleft(), b)

        if parent is None:
            # A depth-0 bunch drained: the search tree is fully explored.
            self._live_trees.discard(tree)
            self._quiesced_trees.discard(tree)
            self.on_tree_done(tree)
            return
        if parent.unexplored != 0:
            raise SimulationError(
                "bunch drained while its parent still has unexplored candidates"
            )
        # Parent leaves Resting: its candidate set is fully explored.
        parent_bunch = self._bunch_of(parent)
        self._retire_set(parent)
        self._extend_or_idle(parent, parent_bunch)

    # ------------------------------------------------------------------
    # introspection / merging support
    # ------------------------------------------------------------------
    def has_work(self) -> bool:
        """Whether any search tree is still live on this PE."""
        return bool(self._live_trees)

    def ready_count(self) -> int:
        """Schedulable Ready tasks (quiesced trees excluded).

        Reads the SoA counters directly: ``ctl[CTL_READY]`` in the
        common no-quiesce case, a masked ring-length sum otherwise.
        """
        s = self.state
        if not self._quiesced_trees:
            count = int(s.ctl[CTL_READY])
        else:
            mask = (s.ring_len > 0) & (s.b_quiesced == 0)
            count = int(s.ring_len[mask].sum())
        if _DEBUG_CHECK:
            self._debug_cross_check(count)
        return count

    def executing_count(self) -> int:
        """Tasks currently in the PE pipeline (SoA counter)."""
        return int(self.state.ctl[CTL_EXECUTING])

    def _debug_cross_check(self, ready: int) -> None:
        """REPRO_TREE_DEBUG=1: counters vs the object view, every read."""
        s = self.state
        view_ready = sum(
            len(b.ready)
            for views in self.bunch_views().values()
            for b in views
            if b.ready and b.tree not in self._quiesced_trees
        )
        total = int(s.ring_len.sum())
        if ready != view_ready or int(s.ctl[CTL_READY]) != total:
            raise SimulationError(
                f"SoA/object ready divergence: counter={ready} "
                f"view={view_ready} ctl={int(s.ctl[CTL_READY])} rings={total}"
            )
        if int(s.ctl[CTL_EXECUTING]) != int(s.b_executing.sum()):
            raise SimulationError("SoA/object executing divergence")

    #: Diagnostic counters (read by metrics collection) — SoA-backed.
    @property
    def spawn_waits(self) -> int:
        return int(self.state.ctl[CTL_WAITS])

    @property
    def token_stalls(self) -> int:
        return int(self.state.ctl[CTL_STALLS])

    @property
    def tasks_scheduled(self) -> int:
        return int(self.state.ctl[CTL_SCHEDULED])

    def live_tree_ids(self) -> List[int]:
        """Identifiers of live (possibly quiesced) trees."""
        return sorted(self._live_trees)

    def quiesce_tree(self, tree_id: int) -> None:
        """Freeze a tree's Ready/Resting work (merging recovery, §4.2)."""
        if tree_id in self._live_trees:
            self._quiesced_trees.add(tree_id)
            s = self.state
            s.b_quiesced[(s.b_in_use == 1) & (s.b_tree == tree_id)] = 1

    def wake_tree(self, tree_id: int) -> None:
        """Resume a quiesced tree."""
        self._quiesced_trees.discard(tree_id)
        s = self.state
        s.b_quiesced[s.b_tree == tree_id] = 0

    def quiesced_tree_ids(self) -> List[int]:
        """Currently quiesced trees."""
        return sorted(self._quiesced_trees)

    def tree_stats(self, tree_id: int) -> Dict[str, int]:
        """Occupancy of one tree (victim selection for quiescing)."""
        s = self.state
        mine = (s.b_in_use == 1) & (s.b_tree == tree_id)
        bunches = int(mine.sum())
        max_depth = int(s.b_depth[mine].max()) if bunches else 0
        return {"bunches": bunches, "max_depth": max_depth}

    def bunch_views(self) -> Dict[int, List[Bunch]]:
        """Object view of every bunch (depth → construction order)."""
        views: Dict[int, List[Bunch]] = {
            depth: [] for depth in range(self.max_depth + 1)
        }
        for b in range(self.state.nb):
            view = self.bunch_view(b)
            views[view.depth].append(view)
        return views

    def bunch_view(self, b: int) -> Bunch:
        """Materialize the read-only object view of bunch ``b``."""
        s = self.state
        view = Bunch(int(s.b_depth[b]), int(s.b_cap[b]), int(s.b_index[b]))
        view.in_use = bool(s.b_in_use[b])
        view.tree = int(s.b_tree[b]) if s.b_tree[b] >= 0 else None
        view.parent = self._bunch_parent[b]
        view.active = int(s.b_active[b])
        view.executing = int(s.b_executing[b])
        base = b * s.cap
        head = int(s.ring_head[b])
        for j in range(int(s.ring_len[b])):
            slot = int(s.ring[base + (head + j) % s.cap])
            token = int(s.e_token[slot])
            view.ready.append((
                slot,
                int(s.e_vertex[slot]),
                int(s.e_child_index[slot]),
                token if token >= 0 else None,
            ))
        return view

    # ------------------------------------------------------------------
    # splitting support (§4.1)
    # ------------------------------------------------------------------
    def harvest_split_pool(self, task: SimTask) -> List[int]:
        """Withdraw the shippable candidate range of ``task`` (§4.1).

        The pool is the task's unexplored candidate range plus any Ready
        (not yet executing, not extended) child entries, which are
        reclaimed from their bunch — reclaiming a Ready entry is the same
        hardware operation as quiescing it, just followed by a range
        update instead of a later wake.  At least one live entry is
        always left behind so the donor's subtree completion path stays
        intact.  Returns the pooled candidate vertices in their original
        candidate-set order; the caller re-appends the donor's share.
        """
        s = self.state
        cv = task.children_vertices
        explored = [int(v) for v in cv[: task.next_child]]
        pool: List[Tuple[int, int]] = [
            (idx, int(cv[idx])) for idx in range(task.next_child, len(cv))
        ]
        b = self._child_bunch(task)
        if b is not None:
            # Ready entries without a token belong to ``task`` by
            # construction (the bunch's parent is ``task``).
            cap = s.cap
            base = b * cap
            head = int(s.ring_head[b])
            length = int(s.ring_len[b])
            positions = [
                j for j in range(length)
                if s.e_token[int(s.ring[base + (head + j) % cap])] < 0
            ]
            if int(s.b_active[b]) - len(positions) < 1 and positions:
                positions = positions[1:]  # leave one Ready entry behind
            for j in reversed(positions):
                slot = self._ring_delete(b, j)
                s.b_active[b] -= 1
                s.ctl[CTL_READY] -= 1
                pool.append((int(s.e_child_index[slot]), int(s.e_vertex[slot])))
        pool.sort()
        task.children_vertices = explored
        task.next_child = len(explored)
        return [v for _, v in pool]

    def _ring_delete(self, b: int, j: int) -> int:
        """Remove the ``j``-th logical ready entry of ``b``; return its slot."""
        s = self.state
        cap = s.cap
        base = b * cap
        ring = s.ring
        head = int(s.ring_head[b])
        length = int(s.ring_len[b])
        slot = int(ring[base + (head + j) % cap])
        for k in range(j, length - 1):
            ring[base + (head + k) % cap] = ring[base + (head + k + 1) % cap]
        s.ring_len[b] = length - 1
        return slot

    def _child_bunch(self, task: SimTask) -> Optional[int]:
        if task.depth + 1 > self.max_depth:
            return None
        s = self.state
        depth = task.depth + 1
        bunch_parent = self._bunch_parent
        for b in range(int(s.d_start[depth]), int(s.d_end[depth])):
            if s.b_in_use[b] and bunch_parent[b] is task:
                return b
        return None

    def split_potential(self, task: SimTask) -> int:
        """Candidates :meth:`harvest_split_pool` could withdraw for ``task``."""
        potential = task.unexplored
        b = self._child_bunch(task)
        if b is not None:
            s = self.state
            cap = s.cap
            base = b * cap
            head = int(s.ring_head[b])
            reclaimable = sum(
                1 for j in range(int(s.ring_len[b]))
                if s.e_token[int(s.ring[base + (head + j) % cap])] < 0
            )
            if int(s.b_active[b]) - reclaimable < 1:
                reclaimable = max(0, reclaimable - 1)
            potential += reclaimable
        return potential

    def splittable_task(self, depth_limit: int = 0) -> Optional[SimTask]:
        """The shallowest/heaviest task with a shippable candidate range.

        The paper splits only the depth-0 task's depth-1 range
        (``depth_limit=0``); larger limits extend the same mechanism to
        deeper Resting tasks — the partition message just carries a
        longer embedding prefix.  Returns ``None`` when no task could
        ship at least two candidates.
        """
        s = self.state
        best: Optional[SimTask] = None
        best_key: Optional[Tuple[int, int]] = None
        candidates: List[SimTask] = []
        bunch_parent = self._bunch_parent
        for depth in range(0, min(depth_limit, self.max_depth - 1) + 1):
            for b in range(int(s.d_start[depth + 1]), int(s.d_end[depth + 1])):
                if s.b_in_use[b] and bunch_parent[b] is not None:
                    candidates.append(bunch_parent[b])
            for waiter in self._waiting_spawn.get(depth + 1, ()):
                if waiter.depth == depth:
                    candidates.append(waiter)
        for task in candidates:
            if task.tree in self._quiesced_trees:
                continue
            potential = self.split_potential(task)
            if potential < 2:
                continue
            key = (task.depth, -potential)  # shallowest first, then heaviest
            if best_key is None or key < best_key:
                best = task
                best_key = key
        return best
