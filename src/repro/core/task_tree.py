"""The Shogun task tree: decoupled task generation and execution (§3.2).

The task tree is the structure that distinguishes Shogun from the task
*stack* of prior designs: completed tasks spawn children immediately
(no barrier), children wait in the tree as Ready entries, and a scheduler
picks execution order with both parallelism and locality in mind.

Layout (§3.2.1, Table 3): the task SPM is statically arranged as
Depth × Bunch.  A *bunch* groups same-parent sibling tasks; its entry
count equals the PE execution width so a full bunch can occupy the whole
PE (locality), while multiple bunches per depth provide non-sibling
candidates when siblings run short (parallelism).  Depth 0 and 1 have
``root_bunches`` bunches (2, for search-tree merging); deeper depths have
``bunches_per_depth`` (4).

State machine (§3.2.2, Figures 5/6): entries move through
Idle → Ready → Executing → Resting → Idle.  Spawning takes an idle bunch
at the next depth and fills it from the parent's candidate set; a task
that cannot spawn *extends* — it reuses its entry (and address token) to
explore the parent's next unexplored candidate; pruned candidates never
enter the tree (the symmetry bound already truncated the children list).
When a bunch drains it is recycled, its parent's subtree is complete, and
the completion propagates upward — at depth 0 that ends a search tree.

Scheduling (§3.2.3, Figure 7): prefer Ready siblings of the last
selected bunch; otherwise round-robin across bunches — unless
conservative mode forbids mixing non-siblings.  A task is only *valid*
if an address token for its depth is available (memory-footprint
control).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional, Tuple

from ..errors import SimulationError
from .task import SimTask, TaskState
from .tokens import TokenPool

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.pe import PE


class Bunch:
    """One bunch of sibling task entries at a fixed depth."""

    __slots__ = ("depth", "capacity", "index", "parent", "ready", "active",
                 "executing", "in_use", "tree")

    def __init__(self, depth: int, capacity: int, index: int) -> None:
        self.depth = depth
        self.capacity = capacity
        self.index = index
        self.parent: Optional[SimTask] = None
        self.ready: Deque[SimTask] = deque()
        self.active = 0       # non-idle entries
        self.executing = 0    # entries currently in the PE pipeline
        self.in_use = False
        self.tree: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Bunch(d={self.depth}, i={self.index}, in_use={self.in_use}, "
            f"ready={len(self.ready)}, active={self.active})"
        )


class TaskTree:
    """Per-PE task tree: storage, FSM and scheduler."""

    def __init__(self, pe: "PE", on_tree_done: Callable[[int], None]) -> None:
        self.pe = pe
        config = pe.config
        schedule = pe.schedule
        if schedule.max_depth > config.max_pattern_depth:
            raise SimulationError(
                f"pattern depth {schedule.max_depth} exceeds task tree "
                f"maximum {config.max_pattern_depth}"
            )
        self.max_depth = schedule.max_depth
        self.on_tree_done = on_tree_done

        self.bunches: Dict[int, List[Bunch]] = {}
        for depth in range(self.max_depth + 1):
            if depth == 0:
                layout = [(1, i) for i in range(config.root_bunches)]
            elif depth == 1:
                layout = [(config.bunch_entries, i) for i in range(config.root_bunches)]
            else:
                layout = [(config.bunch_entries, i) for i in range(config.bunches_per_depth)]
            self.bunches[depth] = [Bunch(depth, cap, i) for cap, i in layout]
        self._all_bunches: List[Bunch] = [
            b for depth in sorted(self.bunches) for b in self.bunches[depth]
        ]

        # Address tokens gate output-set storage; leaf tasks produce none.
        self.tokens: Dict[int, TokenPool] = {
            depth: TokenPool(config.tokens_per_depth)
            for depth in range(self.max_depth)
        }
        # Hot-path views: token pool by depth (``None`` for leaves) and
        # the preallocated buffer addresses per (depth, token).  Tokens
        # minted past the preallocated count (pool resize) fall back to
        # the buffer map.
        self._pools: List[Optional[TokenPool]] = [
            self.tokens[d] for d in range(self.max_depth)
        ] + [None]
        self._addr: List[List[int]] = [
            [pe.buffer_map.address(d, t) for t in range(config.tokens_per_depth)]
            for d in range(self.max_depth)
        ]

        self._waiting_spawn: Dict[int, Deque[SimTask]] = {
            depth: deque() for depth in range(1, self.max_depth + 1)
        }
        self._last_bunch: Optional[Bunch] = None
        self._rr_cursor = 0
        self._executing_total = 0
        self._executing_bunch: Optional[Bunch] = None
        self._ready_total = 0
        self._quiesced_trees: set = set()
        self._live_trees: set = set()

        # Diagnostics.
        self.spawn_waits = 0
        self.token_stalls = 0
        self.tasks_scheduled = 0

    # ------------------------------------------------------------------
    # root / partition intake
    # ------------------------------------------------------------------
    def free_root_slots(self) -> int:
        """Idle depth-0 bunches (capacity for new search trees)."""
        return sum(1 for b in self.bunches[0] if not b.in_use)

    def add_root(self, vertex: int, tree_id: int) -> None:
        """Install a new search-tree root as a Ready depth-0 task."""
        bunch = self._idle_bunch(0)
        if bunch is None:
            raise SimulationError("no idle depth-0 bunch for a new root")
        task = SimTask(depth=0, vertex=vertex, embedding=(vertex,), parent=None, tree=tree_id)
        task.state = TaskState.READY
        task.bunch = bunch
        bunch.in_use = True
        bunch.tree = tree_id
        bunch.parent = None
        bunch.active = 1
        bunch.ready.append(task)
        self._ready_total += 1
        self._live_trees.add(tree_id)

    def add_partition(
        self, prefix: Tuple[int, ...], children: List[int], tree_id: int
    ) -> List[SimTask]:
        """Install a split search-tree partition (task-tree splitting, §4.1).

        The partition arrives *already executed* down to the split task:
        the message carried the embedding prefix (just the root vertex in
        the paper's depth-0-only scheme), the assigned candidate range
        and the prefix's candidate-set cache lines.  The local entries
        for the whole prefix are created directly in Resting state and
        the deepest one spawns from the assigned range.
        """
        chain: List[SimTask] = []
        parent: Optional[SimTask] = None
        for d, vertex in enumerate(prefix):
            bunch = self._idle_bunch(d)
            if bunch is None:
                raise SimulationError(f"no idle depth-{d} bunch for a partition")
            task = SimTask(
                depth=d,
                vertex=int(vertex),
                embedding=tuple(int(v) for v in prefix[: d + 1]),
                parent=parent,
                tree=tree_id,
            )
            if d < self.max_depth:
                token = self.tokens[d].acquire()
                if token is None:
                    raise SimulationError(f"no depth-{d} token for a partition")
                task.token = token
                task.set_address = self.pe.buffer_map.address(d, token)
            task.expansion = self.pe.context.expand(task.embedding)
            if d < len(prefix) - 1:
                # Interior prefix entry: its only live candidate is the
                # next prefix vertex; everything else stays on the donor.
                task.children_vertices = [int(prefix[d + 1])]
                task.next_child = 1
            else:
                task.children_vertices = list(children)
            task.state = TaskState.RESTING
            task.bunch = bunch
            bunch.in_use = True
            bunch.tree = tree_id
            bunch.parent = parent
            bunch.active = 1
            self.pe.footprint_add(len(task.expansion.candidates) * 4)
            chain.append(task)
            parent = task
        self._live_trees.add(tree_id)
        self._spawn_or_wait(chain[-1])
        return chain

    def _idle_bunch(self, depth: int) -> Optional[Bunch]:
        for bunch in self.bunches[depth]:
            if not bunch.in_use:
                return bunch
        return None

    # ------------------------------------------------------------------
    # scheduling (Figure 7)
    # ------------------------------------------------------------------
    def select(self, conservative: bool) -> Optional[SimTask]:
        """Pick the next task to execute, honoring tokens and the mode.

        Bunches are considered in preference order (siblings of the last
        selection first, then round-robin; conservative mode restricts to
        the executing bunch) — the inlined equivalent of the original
        candidate-bunch generator, kept flat because this is the single
        hottest scheduler entry point.
        """
        if not self._ready_total:
            return None
        quiesced = self._quiesced_trees
        if conservative and self._executing_total > 0:
            bunch = self._executing_bunch
            if bunch is not None and bunch.ready and bunch.tree not in quiesced:
                return self._schedule_from(bunch)
            return None
        last = self._last_bunch
        if last is not None and last.ready and last.tree not in quiesced:
            task = self._schedule_from(last)
            if task is not None:
                return task
        all_bunches = self._all_bunches
        n = len(all_bunches)
        start = self._rr_cursor
        for offset in range(n):
            bunch = all_bunches[(start + offset) % n]
            if bunch is last or not bunch.ready:
                continue
            if bunch.tree in quiesced:
                continue
            self._rr_cursor = (start + offset + 1) % n
            task = self._schedule_from(bunch)
            if task is not None:
                return task
        return None

    def _schedule_from(self, bunch: Bunch) -> Optional[SimTask]:
        """Schedule one Ready task out of ``bunch`` (``None`` = token stall).

        Extended tasks reuse their entry's token; only tasks without one
        contend for the depth's pool (the Figure 7 valid check).  With the
        pool drained, a token-holding entry anywhere in the bunch is still
        schedulable — the scheduler reads all entries of a bunch, so no
        head-of-line blocking.
        """
        depth = bunch.depth
        pool = self._pools[depth]
        if pool is None or pool._free:
            task = bunch.ready.popleft()
        else:
            task = None
            for i, cand in enumerate(bunch.ready):
                if cand.token is not None:
                    task = cand
                    del bunch.ready[i]
                    break
            if task is None:
                self.token_stalls += 1
                return None
        self._ready_total -= 1
        task.state = TaskState.EXECUTING
        if pool is not None and task.token is None:
            token = pool.acquire()
            task.token = token
            addrs = self._addr[depth]
            task.set_address = (
                addrs[token]
                if token < len(addrs)
                else self.pe.buffer_map.address(depth, token)
            )
        bunch.executing += 1
        self._executing_total += 1
        self._executing_bunch = bunch
        self._last_bunch = bunch
        self.tasks_scheduled += 1
        return task

    # ------------------------------------------------------------------
    # completion, spawning, extending (Figures 5/6)
    # ------------------------------------------------------------------
    def on_complete(self, task: SimTask) -> None:
        """A task finished its PE pipeline; advance the FSM."""
        bunch = self._bunch_of(task)
        bunch.executing -= 1
        self._executing_total -= 1
        if task.children_vertices:
            self._spawn_or_wait(task)
        else:
            self._retire_set(task)
            self._extend_or_idle(task, bunch)

    def _bunch_of(self, task: SimTask) -> Bunch:
        # Every entry records its bunch when installed; fall back to the
        # structural scan (children live in the bunch whose parent is
        # task.parent; roots in depth-0 bunches keyed by tree) for tasks
        # built outside the normal intake paths.
        bunch = task.bunch
        if bunch is not None and bunch.in_use:
            return bunch
        for bunch in self.bunches[task.depth]:
            if bunch.in_use and (
                (task.parent is None and bunch.tree == task.tree and bunch.parent is None)
                or (task.parent is not None and bunch.parent is task.parent)
            ):
                return bunch
        raise SimulationError(f"task {task!r} belongs to no bunch")

    def _spawn_or_wait(self, task: SimTask) -> None:
        """Spawn a child bunch now, or queue until one is idle."""
        child_depth = task.depth + 1
        bunch = self._idle_bunch(child_depth)
        task.state = TaskState.RESTING
        if bunch is None:
            self.spawn_waits += 1
            self._waiting_spawn[child_depth].append(task)
            return
        self._fill_bunch(task, bunch)

    def _fill_bunch(self, parent: SimTask, bunch: Bunch) -> None:
        bunch.in_use = True
        bunch.parent = parent
        bunch.tree = parent.tree
        vertices = parent.children_vertices
        first = parent.next_child
        count = min(bunch.capacity, len(vertices) - first)
        if count <= 0:
            raise SimulationError("spawning with no unexplored candidates")
        depth = bunch.depth
        tree = parent.tree
        embedding = parent.embedding
        ready_append = bunch.ready.append
        for position in range(first, first + count):
            v = vertices[position]
            child = SimTask(
                depth=depth,
                vertex=v,
                embedding=embedding + (v,),
                parent=parent,
                tree=tree,
                child_index=position,
            )
            child.bunch = bunch
            ready_append(child)
        parent.next_child = first + count
        self._ready_total += count
        bunch.active = count

    def _extend_or_idle(self, task: SimTask, bunch: Bunch) -> None:
        """Task extending / entry recycling (§3.2.2)."""
        parent = task.parent
        if parent is not None and parent.unexplored > 0:
            position = parent.next_child
            parent.next_child = position + 1
            v = parent.children_vertices[position]
            extended = SimTask(
                depth=task.depth,
                vertex=v,
                embedding=parent.embedding + (v,),
                parent=parent,
                tree=task.tree,
                child_index=position,
            )
            # Entry and address token are reused by the extended task.
            extended.token = task.token
            extended.set_address = task.set_address
            extended.bunch = bunch
            task.state = TaskState.IDLE
            bunch.ready.append(extended)
            self._ready_total += 1
            return
        # No candidate to extend onto: the entry idles.
        if task.token is not None:
            self.tokens[task.depth].release(task.token)
            task.token = None
        task.state = TaskState.IDLE
        bunch.active -= 1
        if bunch.active < 0:
            raise SimulationError("bunch active count underflow")
        if bunch.active == 0:
            self._recycle(bunch)

    def _retire_set(self, task: SimTask) -> None:
        """The task's candidate set (if any) is dead; drop its footprint."""
        if task.expansion is not None:
            self.pe.footprint_remove(len(task.expansion.candidates) * 4)

    def _recycle(self, bunch: Bunch) -> None:
        """Recycle a drained bunch and propagate subtree completion."""
        parent = bunch.parent
        tree = bunch.tree
        depth = bunch.depth
        bunch.in_use = False
        bunch.parent = None
        bunch.tree = None
        bunch.executing = 0
        if self._last_bunch is bunch:
            self._last_bunch = None
        if self._executing_bunch is bunch:
            self._executing_bunch = None

        # A freed bunch first serves parents waiting to spawn at this depth.
        waiters = self._waiting_spawn.get(depth)
        if waiters:
            waiter = waiters.popleft()
            self._fill_bunch(waiter, bunch)

        if parent is None:
            # A depth-0 bunch drained: the search tree is fully explored.
            self._live_trees.discard(tree)
            self._quiesced_trees.discard(tree)
            self.on_tree_done(tree)
            return
        if parent.unexplored != 0:
            raise SimulationError(
                "bunch drained while its parent still has unexplored candidates"
            )
        # Parent leaves Resting: its candidate set is fully explored.
        parent_bunch = self._bunch_of(parent)
        self._retire_set(parent)
        self._extend_or_idle(parent, parent_bunch)

    # ------------------------------------------------------------------
    # introspection / merging support
    # ------------------------------------------------------------------
    def has_work(self) -> bool:
        """Whether any search tree is still live on this PE."""
        return bool(self._live_trees)

    def ready_count(self) -> int:
        """Schedulable Ready tasks (quiesced trees excluded)."""
        if not self._quiesced_trees:
            return self._ready_total
        return sum(
            len(b.ready)
            for b in self._all_bunches
            if b.ready and b.tree not in self._quiesced_trees
        )

    def executing_count(self) -> int:
        """Tasks currently in the PE pipeline."""
        return self._executing_total

    def live_tree_ids(self) -> List[int]:
        """Identifiers of live (possibly quiesced) trees."""
        return sorted(self._live_trees)

    def quiesce_tree(self, tree_id: int) -> None:
        """Freeze a tree's Ready/Resting work (merging recovery, §4.2)."""
        if tree_id in self._live_trees:
            self._quiesced_trees.add(tree_id)

    def wake_tree(self, tree_id: int) -> None:
        """Resume a quiesced tree."""
        self._quiesced_trees.discard(tree_id)

    def quiesced_tree_ids(self) -> List[int]:
        """Currently quiesced trees."""
        return sorted(self._quiesced_trees)

    def tree_stats(self, tree_id: int) -> Dict[str, int]:
        """Occupancy of one tree (victim selection for quiescing)."""
        bunches = 0
        max_depth = 0
        for b in self._all_bunches:
            if b.in_use and b.tree == tree_id:
                bunches += 1
                max_depth = max(max_depth, b.depth)
        return {"bunches": bunches, "max_depth": max_depth}

    def harvest_split_pool(self, task: SimTask) -> List[int]:
        """Withdraw the shippable candidate range of ``task`` (§4.1).

        The pool is the task's unexplored candidate range plus any Ready
        (not yet executing, not extended) child entries, which are
        reclaimed from their bunch — reclaiming a Ready entry is the same
        hardware operation as quiescing it, just followed by a range
        update instead of a later wake.  At least one live entry is
        always left behind so the donor's subtree completion path stays
        intact.  Returns the pooled candidate vertices in their original
        candidate-set order; the caller re-appends the donor's share.
        """
        pool: List[Tuple[int, int]] = []  # (child_index, vertex)
        explored = task.children_vertices[: task.next_child]
        for idx in range(task.next_child, len(task.children_vertices)):
            pool.append((idx, task.children_vertices[idx]))
        bunch = self._child_bunch(task)
        if bunch is not None:
            reclaimable = [
                t for t in bunch.ready if t.token is None and t.parent is task
            ]
            if bunch.active - len(reclaimable) < 1 and reclaimable:
                reclaimable = reclaimable[1:]  # leave one Ready entry behind
            for t in reclaimable:
                bunch.ready.remove(t)
                bunch.active -= 1
                self._ready_total -= 1
                t.state = TaskState.IDLE
                pool.append((t.child_index, t.vertex))
        pool.sort()
        task.children_vertices = list(explored)
        task.next_child = len(explored)
        return [v for _, v in pool]

    def _child_bunch(self, task: SimTask) -> Optional[Bunch]:
        if task.depth + 1 > self.max_depth:
            return None
        for bunch in self.bunches[task.depth + 1]:
            if bunch.in_use and bunch.parent is task:
                return bunch
        return None

    def split_potential(self, task: SimTask) -> int:
        """Candidates :meth:`harvest_split_pool` could withdraw for ``task``."""
        potential = task.unexplored
        bunch = self._child_bunch(task)
        if bunch is not None:
            reclaimable = sum(
                1 for t in bunch.ready if t.token is None and t.parent is task
            )
            if bunch.active - reclaimable < 1:
                reclaimable = max(0, reclaimable - 1)
            potential += reclaimable
        return potential

    def splittable_task(self, depth_limit: int = 0) -> Optional[SimTask]:
        """The shallowest/heaviest task with a shippable candidate range.

        The paper splits only the depth-0 task's depth-1 range
        (``depth_limit=0``); larger limits extend the same mechanism to
        deeper Resting tasks — the partition message just carries a
        longer embedding prefix.  Returns ``None`` when no task could
        ship at least two candidates.
        """
        best: Optional[SimTask] = None
        best_key: Optional[Tuple[int, int]] = None
        candidates: List[SimTask] = []
        for depth in range(0, min(depth_limit, self.max_depth - 1) + 1):
            for bunch in self.bunches[depth + 1]:
                if bunch.in_use and bunch.parent is not None:
                    candidates.append(bunch.parent)
            for waiter in self._waiting_spawn.get(depth + 1, ()):
                if waiter.depth == depth:
                    candidates.append(waiter)
        for task in candidates:
            if task.tree in self._quiesced_trees:
                continue
            potential = self.split_potential(task)
            if potential < 2:
                continue
            key = (task.depth, -potential)  # shallowest first, then heaviest
            if best_key is None or key < best_key:
                best = task
                best_key = key
        return best
