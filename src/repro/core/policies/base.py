"""Scheduling-policy interface between a PE and its task scheduler.

Task scheduling determines the search-tree exploration order (§2.2) and
is the single axis the paper varies: BFS, DFS, pseudo-DFS (the FINGERS
baseline), parallel-DFS and Shogun all implement this interface, so every
policy runs on the *identical* PE pipeline, memory system and workload —
differences in cycles are attributable to scheduling alone, exactly the
paper's experimental setup ("the basic computation fabric is similar to
that of FINGERS").

The PE drives the policy with four calls:

* :meth:`SchedulingPolicy.wants_root` / :meth:`add_root` — root-vertex
  dispatch from the system scheduler;
* :meth:`select_task` — pick the next task when an execution slot frees
  (``None`` = nothing schedulable *right now*, e.g. a barrier or the
  conservative mode is holding tasks back);
* :meth:`on_task_complete` — the task finished its pipeline; its valid
  children (already symmetry-pruned, in ascending order) are attached.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, List, Optional, Sequence

from ..task import SimTask, TaskState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...sim.pe import PE


class SchedulingPolicy(abc.ABC):
    """Base class for task-scheduling schemes (Table 1)."""

    name = "base"

    def __init__(self, pe: "PE") -> None:
        self.pe = pe
        self.trees_completed = 0

    # -- root dispatch ---------------------------------------------------
    @abc.abstractmethod
    def wants_root(self) -> bool:
        """Whether this PE can accept another search-tree root now."""

    @abc.abstractmethod
    def add_root(self, vertex: int) -> None:
        """Begin exploring the search tree rooted at ``vertex``."""

    # -- scheduling -------------------------------------------------------
    @abc.abstractmethod
    def select_task(self) -> Optional[SimTask]:
        """Next task to execute, or ``None`` if nothing is schedulable."""

    @abc.abstractmethod
    def on_task_complete(self, task: SimTask) -> None:
        """Handle a finished task (children already attached by the PE)."""

    # -- progress introspection --------------------------------------------
    @abc.abstractmethod
    def has_work(self) -> bool:
        """Whether any task of any assigned tree is still live."""

    @abc.abstractmethod
    def ready_count(self) -> int:
        """Tasks that could execute immediately if a slot were free.

        Used for barrier-idle accounting: slots idle while this is zero
        but :meth:`has_work` is true are stalled by the scheme itself
        (barriers, conservative mode), not by lack of work.
        """

    # -- shared helpers -----------------------------------------------------
    def _make_task(
        self,
        parent: Optional[SimTask],
        vertex: int,
        depth: int,
        tree: int,
        child_index: int = 0,
    ) -> SimTask:
        """Create a READY child task extending ``parent`` with ``vertex``."""
        vertex = int(vertex)  # candidate spans are int64 arrays
        embedding = (parent.embedding + (vertex,)) if parent is not None else (vertex,)
        task = SimTask(
            depth=depth,
            vertex=vertex,
            embedding=embedding,
            parent=parent,
            tree=tree,
            child_index=child_index,
        )
        task.state = TaskState.READY
        return task

    def _assign_buffer(self, task: SimTask, buffer_index: int) -> None:
        """Bind a task's output candidate set to a preallocated buffer."""
        task.token = buffer_index
        task.set_address = self.pe.buffer_map.address(task.depth, buffer_index)

    def _tree_finished(self) -> None:
        """Bookkeeping when a whole search tree completes."""
        self.trees_completed += 1
        self.pe.on_tree_finished()


def chunked(values: Sequence[int], size: int) -> List[List[int]]:
    """Split ``values`` into consecutive chunks of at most ``size``."""
    if size < 1:
        raise ValueError("chunk size must be >= 1")
    return [list(values[i : i + size]) for i in range(0, len(values), size)]
