"""DFS and pseudo-DFS (FINGERS) scheduling as group-based DFS.

Pseudo-DFS (§2.2, Figure 2(d)) fetches a *task group* of sibling tasks
with a pre-configured group size, executes the whole group in parallel,
and only after the **entire** group completes does the first task in the
group generate children — descending depth-first group by group.  Plain
DFS is the degenerate case with group size 1 (one execution slot used,
Figure 2(c)).

The group barrier is the scheme's defining cost: "tasks that complete
execution earlier have to wait until the whole task group completes", so
slot-idle time accumulates whenever task runtimes within a group diverge
— the exact inefficiency Shogun removes.

Implementation: the exploration order is expressed as a recursive
generator yielding one task group at a time; the policy dispatches the
current group from ``select_task`` and advances the generator only when
the group's last task completes (the barrier).
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ...errors import SimulationError
from ..task import SimTask, TaskState
from .base import SchedulingPolicy, chunked


class GroupDFSPolicy(SchedulingPolicy):
    """Pseudo-DFS with configurable group size (FINGERS baseline)."""

    name = "pseudo-dfs"

    def __init__(self, pe, group_size: Optional[int] = None) -> None:
        super().__init__(pe)
        width = pe.config.execution_width
        self.group_size = group_size if group_size is not None else width
        if self.group_size < 1:
            raise SimulationError("group size must be >= 1")
        self._walk: Optional[Iterator[List[SimTask]]] = None
        self._ready: List[SimTask] = []
        self._outstanding = 0
        self._tree_seq = 0

    # ------------------------------------------------------------------
    def wants_root(self) -> bool:
        return self._walk is None

    def add_root(self, vertex: int) -> None:
        if self._walk is not None:
            raise SimulationError("pseudo-DFS explores one tree at a time")
        self._tree_seq += 1
        self._walk = self._explore_root(vertex, self._tree_seq)
        self._advance()

    def select_task(self) -> Optional[SimTask]:
        if not self._ready:
            return None
        task = self._ready.pop(0)
        self._outstanding += 1
        return task

    def on_task_complete(self, task: SimTask) -> None:
        self._outstanding -= 1
        if self._outstanding == 0 and not self._ready:
            # Barrier released: the whole group has completed.
            self._advance()

    def has_work(self) -> bool:
        return self._walk is not None or self._outstanding > 0 or bool(self._ready)

    def ready_count(self) -> int:
        return len(self._ready)

    # ------------------------------------------------------------------
    def _advance(self) -> None:
        """Pull the next task group from the exploration generator."""
        if self._walk is None:
            return
        try:
            group = next(self._walk)
        except StopIteration:
            self._walk = None
            self._tree_finished()
            return
        self._ready.extend(group)

    def _explore_root(self, root: int, tree: int) -> Iterator[List[SimTask]]:
        """Generator yielding task groups in pseudo-DFS order."""
        root_task = self._make_task(None, root, depth=0, tree=tree)
        self._assign_buffer(root_task, 0)
        yield [root_task]
        kids = root_task.children_vertices
        if kids is not None and len(kids):
            yield from self._explore(root_task, kids, 1, tree)
        self._release_set(root_task)

    def _explore(
        self, parent: SimTask, vertices: List[int], depth: int, tree: int
    ) -> Iterator[List[SimTask]]:
        for chunk_index, chunk in enumerate(chunked(vertices, self.group_size)):
            tasks = []
            for slot, v in enumerate(chunk):
                position = chunk_index * self.group_size + slot
                task = self._make_task(parent, v, depth, tree, child_index=position)
                if depth < self.pe.schedule.max_depth:
                    self._assign_buffer(task, slot)
                tasks.append(task)
            yield tasks  # barrier: every task of the group must complete
            for task in tasks:
                kids = task.children_vertices
                if kids is not None and len(kids):
                    yield from self._explore(task, kids, depth + 1, tree)
                self._release_set(task)

    def _release_set(self, task: SimTask) -> None:
        """The task's subtree is done; its candidate set is dead."""
        if task.expansion is not None and task.set_address is not None:
            self.pe.footprint_remove(len(task.expansion.candidates) * 4)
        task.state = TaskState.IDLE


class DFSPolicy(GroupDFSPolicy):
    """Plain depth-first scheduling: a task stack, one slot used."""

    name = "dfs"

    def __init__(self, pe) -> None:
        super().__init__(pe, group_size=1)
