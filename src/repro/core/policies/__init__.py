"""Scheduling policies: BFS, DFS, pseudo-DFS (FINGERS), parallel-DFS, Shogun."""

from .base import SchedulingPolicy, chunked
from .bfs import BFSPolicy
from .group_dfs import DFSPolicy, GroupDFSPolicy
from .parallel_dfs import ParallelDFSPolicy
from .shogun import ShogunPolicy

__all__ = [
    "BFSPolicy",
    "DFSPolicy",
    "GroupDFSPolicy",
    "ParallelDFSPolicy",
    "SchedulingPolicy",
    "ShogunPolicy",
    "chunked",
]
