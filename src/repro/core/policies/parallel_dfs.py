"""Parallel-DFS: multiple independent search trees per PE, each DFS.

Parallel-DFS (§2.3, Figure 3) is the extreme case of out-of-order
scheduling: one PE runs up to ``execution_width`` *independent* search
trees concurrently, each explored depth-first with one in-flight task.
Trees share no parent-child relationships, so there are no barriers at
all and slot utilization is maximal — but each live tree keeps its whole
path of candidate sets resident, so the intermediate working set scales
with the tree count and "the poor locality of parallel-DFS incurs cache
thrashing ... thus steeply degrading the performance" on memory-bound
pattern/graph combinations.  No accelerator adopts it; the paper (and
this reproduction) uses it to isolate the two Shogun insights.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ...errors import SimulationError
from ..task import SimTask, TaskState
from .base import SchedulingPolicy


class _TreeWalker:
    """One DFS exploration with a dedicated buffer column."""

    def __init__(self, policy: "ParallelDFSPolicy", slot: int, root: int, tree: int) -> None:
        self.policy = policy
        self.slot = slot
        self.gen: Optional[Iterator[SimTask]] = self._explore_root(root, tree)
        self.inflight: Optional[SimTask] = None

    def _explore_root(self, root: int, tree: int) -> Iterator[SimTask]:
        task = self.policy._make_task(None, root, depth=0, tree=tree)
        self.policy._assign_buffer_column(task, self.slot)
        yield task
        kids = task.children_vertices
        if kids is not None and len(kids):
            yield from self._explore(task, kids, 1, tree)
        self.policy._release_set(task)

    def _explore(
        self, parent: SimTask, vertices: List[int], depth: int, tree: int
    ) -> Iterator[SimTask]:
        for position, v in enumerate(vertices):
            task = self.policy._make_task(parent, v, depth, tree, child_index=position)
            if depth < self.policy.pe.schedule.max_depth:
                self.policy._assign_buffer_column(task, self.slot)
            yield task
            kids = task.children_vertices
            if kids is not None and len(kids):
                yield from self._explore(task, kids, depth + 1, tree)
            self.policy._release_set(task)


class ParallelDFSPolicy(SchedulingPolicy):
    """Barrier-free exploration of ``width`` independent trees."""

    name = "parallel-dfs"

    def __init__(self, pe, num_trees: Optional[int] = None) -> None:
        super().__init__(pe)
        self.num_trees = num_trees if num_trees is not None else pe.config.execution_width
        if self.num_trees < 1:
            raise SimulationError("parallel-DFS needs at least one tree slot")
        self._walkers: List[Optional[_TreeWalker]] = [None] * self.num_trees
        self._ready: List[SimTask] = []
        self._tree_seq = 0

    # ------------------------------------------------------------------
    def wants_root(self) -> bool:
        return any(w is None for w in self._walkers)

    def add_root(self, vertex: int) -> None:
        for slot, walker in enumerate(self._walkers):
            if walker is None:
                self._tree_seq += 1
                new = _TreeWalker(self, slot, vertex, self._tree_seq)
                self._walkers[slot] = new
                self._advance(new)
                return
        raise SimulationError("no free tree slot for a new root")

    def select_task(self) -> Optional[SimTask]:
        if not self._ready:
            return None
        return self._ready.pop(0)

    def on_task_complete(self, task: SimTask) -> None:
        walker = self._walker_of(task)
        walker.inflight = None
        self._advance(walker)

    def has_work(self) -> bool:
        return any(w is not None for w in self._walkers) or bool(self._ready)

    def ready_count(self) -> int:
        return len(self._ready)

    # ------------------------------------------------------------------
    def _walker_of(self, task: SimTask) -> "_TreeWalker":
        for walker in self._walkers:
            if walker is not None and walker.inflight is task:
                return walker
        raise SimulationError("completed task belongs to no walker")

    def _advance(self, walker: _TreeWalker) -> None:
        try:
            task = next(walker.gen)
        except StopIteration:
            self._walkers[walker.slot] = None
            self._tree_finished()
            return
        walker.inflight = task
        self._ready.append(task)

    def _assign_buffer_column(self, task: SimTask, slot: int) -> None:
        """Buffers are columned per tree slot: one live set per depth."""
        self._assign_buffer(task, slot)

    def _release_set(self, task: SimTask) -> None:
        if task.expansion is not None and task.set_address is not None:
            self.pe.footprint_remove(len(task.expansion.candidates) * 4)
        task.state = TaskState.IDLE
