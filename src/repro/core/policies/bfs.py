"""BFS scheduling: depth-synchronous frontier exploration.

BFS (§2.2, Figure 2(b)) executes all tasks of one search depth before
any task of the next, with an inter-depth barrier.  Same-depth tasks run
with maximal parallelism and high intermediate-result locality, but every
depth's candidate sets stay live simultaneously — the "disastrous memory
consumption explosion" that keeps BFS out of accelerator designs (it is
included here for the Table 1 comparison and the motivation experiments).

Each frontier task gets its own sequentially numbered set buffer, so the
live-buffer population — and therefore cache pressure and the peak
footprint metric — grows with the frontier instead of being bounded by
the execution width.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ...errors import SimulationError
from ..task import SimTask, TaskState
from .base import SchedulingPolicy


class BFSPolicy(SchedulingPolicy):
    """Per-tree breadth-first scheduling with inter-depth barriers."""

    name = "bfs"

    def __init__(self, pe) -> None:
        super().__init__(pe)
        self._walk: Optional[Iterator[List[SimTask]]] = None
        self._ready: List[SimTask] = []
        self._outstanding = 0
        self._tree_seq = 0

    # ------------------------------------------------------------------
    def wants_root(self) -> bool:
        return self._walk is None

    def add_root(self, vertex: int) -> None:
        if self._walk is not None:
            raise SimulationError("BFS explores one tree at a time")
        self._tree_seq += 1
        self._walk = self._explore(vertex, self._tree_seq)
        self._advance()

    def select_task(self) -> Optional[SimTask]:
        if not self._ready:
            return None
        task = self._ready.pop(0)
        self._outstanding += 1
        return task

    def on_task_complete(self, task: SimTask) -> None:
        self._outstanding -= 1
        if self._outstanding == 0 and not self._ready:
            self._advance()

    def has_work(self) -> bool:
        return self._walk is not None or self._outstanding > 0 or bool(self._ready)

    def ready_count(self) -> int:
        return len(self._ready)

    # ------------------------------------------------------------------
    def _advance(self) -> None:
        if self._walk is None:
            return
        try:
            level = next(self._walk)
        except StopIteration:
            self._walk = None
            self._tree_finished()
            return
        self._ready.extend(level)

    def _last_reader_depth(self, depth: int) -> int:
        """Deepest task depth whose expansion can reuse a depth-``depth`` set.

        The candidate set feeding depth ``e`` may be reused as the start
        set of any deeper expansion whose plan names ``e``; its buffers
        must stay live until those tasks have all executed.
        """
        schedule = self.pe.schedule
        ctx = self.pe.context
        produced_for = depth + 1  # the set a depth-`depth` task produces
        last = produced_for  # direct children read it (vertex fetch + reuse)
        for d in range(produced_for + 1, schedule.depth):
            reused, _, _ = ctx.reuse_plan(d)
            if reused == produced_for:
                # The expansion for depth d runs on depth d-1 tasks.
                last = max(last, d - 1)
        return last

    def _explore(self, root: int, tree: int) -> Iterator[List[SimTask]]:
        """Yield whole frontiers; the barrier separates depths."""
        root_task = self._make_task(None, root, depth=0, tree=tree)
        self._assign_buffer(root_task, 0)
        frontiers = {0: [root_task]}
        level = [root_task]
        depth = 0
        while level:
            yield level  # inter-depth barrier
            # Frontiers no deeper readers can reuse are dead now.
            for e in list(frontiers):
                if self._last_reader_depth(e) <= depth:
                    for done in frontiers.pop(e):
                        self._release_set(done)
            depth += 1
            next_level: List[SimTask] = []
            for parent in level:
                kids = parent.children_vertices
                for position, v in enumerate(kids if kids is not None else ()):
                    child = self._make_task(parent, v, depth, tree, child_index=position)
                    if depth < self.pe.schedule.max_depth:
                        self._assign_buffer(child, len(next_level))
                    next_level.append(child)
            if next_level:
                frontiers[depth] = next_level
            level = next_level
        for remaining in frontiers.values():
            for done in remaining:
                self._release_set(done)
        return

    def _release_set(self, task: SimTask) -> None:
        if task.expansion is not None and task.set_address is not None:
            self.pe.footprint_remove(len(task.expansion.candidates) * 4)
        task.state = TaskState.IDLE
