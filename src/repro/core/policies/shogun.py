"""The Shogun scheduling policy: locality-aware out-of-order execution.

Shogun (§3) wraps the task tree with the conservative-mode locality
monitor and (optionally) the search-tree merging controller:

* **out-of-order, barrier-free** — completed tasks spawn children into
  the task tree immediately; the scheduler freely mixes depths;
* **locality-aware** — sibling tasks are preferred so bunches occupy the
  whole execution width; the monitor flips to conservative mode when L1
  thrashing plus low IU utilization indicate the locality loss is
  actually hurting;
* **splitting/merging hooks** — the donor/receiver sides of task-tree
  splitting (§4.1) and the per-PE merge decision (§4.2) live here.
"""

from __future__ import annotations

from typing import List, Optional

from ..locality import LocalityMonitor
from ..merging import MergeController
from ..splitting import Partition, plan_partitions
from ..task import SimTask
from ..task_tree import TaskTree
from .base import SchedulingPolicy


class ShogunPolicy(SchedulingPolicy):
    """Locality-aware out-of-order task scheduling (the paper's design)."""

    name = "shogun"

    def __init__(self, pe, *, conservative_override: Optional[bool] = None) -> None:
        super().__init__(pe)
        self.tree = TaskTree(pe, self._on_tree_done)
        self.monitor = LocalityMonitor(pe.config)
        self.merger = MergeController(pe, self.tree) if pe.config.enable_merging else None
        if conservative_override is None:
            conservative_override = pe.config.conservative_override
        self._conservative_override = conservative_override
        self._next_epoch = float(pe.config.monitor_epoch_cycles)
        self._engine = pe.engine

    # ------------------------------------------------------------------
    def wants_root(self) -> bool:
        # Checked once per dispatch while the tree is busy, so the common
        # live-tree/no-merging case must answer from plain attributes
        # without touching the SoA arrays.
        if self.tree.has_work():
            if self.merger is None:
                return False
            # A second tree is only taken when merging decides it pays
            # off (free slots first: can_merge() counts accepted merges).
            return self.tree.free_root_slots() > 0 and self.merger.can_merge()
        return self.tree.free_root_slots() > 0

    def add_root(self, vertex: int) -> None:
        self.tree.add_root(vertex, self.pe.accel.next_tree_id())

    def select_task(self) -> Optional[SimTask]:
        if self._engine.now >= self._next_epoch:
            self._update_monitor()
        override = self._conservative_override
        return self.tree.select(
            self.monitor.conservative if override is None else override
        )

    def select_tasks(self, limit: int) -> List[SimTask]:
        """Batch form of :meth:`select_task` for the dispatch drain.

        One monitor check, then one ``tree_select`` call schedules up to
        ``limit`` tasks — exactly equivalent to ``limit`` single calls
        (the monitor epoch cannot advance mid-dispatch: all selections
        share one engine timestamp).
        """
        if self._engine.now >= self._next_epoch:
            self._update_monitor()
        override = self._conservative_override
        return self.tree.select_batch(
            self.monitor.conservative if override is None else override,
            limit,
        )

    def on_task_complete(self, task: SimTask) -> None:
        if self._engine.now >= self._next_epoch:
            self._update_monitor()
        self.tree.on_complete(task)
        if self.merger is not None:
            self.merger.maybe_quiesce(self._conservative_now())

    def has_work(self) -> bool:
        return self.tree.has_work()

    def ready_count(self) -> int:
        return self.tree.ready_count()

    # ------------------------------------------------------------------
    # conservative mode
    # ------------------------------------------------------------------
    def _conservative_now(self) -> bool:
        if self._conservative_override is not None:
            return self._conservative_override
        return self.monitor.conservative

    def _update_monitor(self) -> None:
        """Feed the locality monitor once per epoch (lazy boundaries)."""
        now = self.pe.engine.now
        if now < self._next_epoch:
            return
        epoch = self.pe.config.monitor_epoch_cycles
        while self._next_epoch <= now:
            self._next_epoch += epoch
        self.monitor.observe(
            self.pe.memory.recent_l1_latency(self.pe.pe_id),
            self.pe.recent_iu_utilization(),
        )

    # ------------------------------------------------------------------
    # task-tree splitting (donor and receiver sides)
    # ------------------------------------------------------------------
    def split_for_helpers(self, helpers: int) -> List[Partition]:
        """Donor side: carve partitions for ``helpers`` idle PEs."""
        return plan_partitions(self, helpers)

    def receive_partition(self, partition: Partition) -> None:
        """Receiver side: rebuild the split subtree locally."""
        chain = self.tree.add_partition(
            partition.prefix,
            list(partition.children),
            self.pe.accel.next_tree_id(),
        )
        # The partition message shipped the prefix's candidate-set lines;
        # install them warm in the local L1.
        for task in chain:
            if task.set_address is not None and task.expansion is not None:
                span = self.pe.memory.line_span(
                    task.set_address, len(task.expansion.candidates) * 4
                )
                if span is not None:
                    self.pe.memory.warm_l1_span(self.pe.pe_id, span[0], span[1])

    # ------------------------------------------------------------------
    def _on_tree_done(self, tree_id: int) -> None:
        if self.merger is not None:
            self.merger.on_tree_done(tree_id)
        self._tree_finished()
