"""Job records, the bounded queue, and the in-flight coalescer.

A **job** is one accepted cell execution.  Identical cells are
deduplicated at two levels before a job is ever created:

* **read-through** — a cell whose key is already in the persistent
  ``.repro-cache/`` is answered immediately, no job queued;
* **coalescing** — a cell whose key is already *in flight* attaches the
  new subscriber to the existing job, so K concurrent identical
  submissions cost exactly one execution (the coalescer is the
  authority the acceptance tests query).

The queue is bounded: :meth:`JobBoard.accept` refuses a new key once
``queue_limit`` jobs are waiting or running, which is the service's
backpressure contract (reject-and-retry, never block the accept loop —
see docs/service.md).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..orchestrator.cells import CellSpec
from . import protocol


@dataclass
class Subscriber:
    """One submit request watching a job."""

    req_id: Optional[str]
    send: "object"              # async callable(message) — the connection
    watch: bool = False
    coalesced: bool = False


@dataclass
class Job:
    """One accepted cell execution and everyone watching it."""

    id: str
    key: str
    spec: CellSpec
    state: str = protocol.QUEUED
    created: float = field(default_factory=time.time)
    #: Monotonic reference for the per-state ``ts`` timings.
    _clock0: float = field(default_factory=time.perf_counter)
    #: state -> seconds since the job was accepted.
    timing: Dict[str, float] = field(default_factory=dict)
    subscribers: List[Subscriber] = field(default_factory=list)
    source: Optional[str] = None     # "computed" | "cache"
    seconds: float = 0.0             # cell execution wall
    metrics: Optional[dict] = None   # serialized RunMetrics
    error: Optional[dict] = None
    worker: Optional[dict] = None

    def mark(self, state: str) -> float:
        """Transition to ``state``; returns seconds since acceptance."""
        ts = time.perf_counter() - self._clock0
        self.state = state
        self.timing[state] = round(ts, 6)
        return ts

    @property
    def done(self) -> bool:
        return self.state in protocol.TERMINAL_STATES

    def describe(self) -> dict:
        """The ``repro jobs`` view of this job."""
        record = {
            "job": self.id,
            "key": self.key,
            "label": self.spec.label(),
            "state": self.state,
            "created": self.created,
            "timing": dict(self.timing),
            "subscribers": len(self.subscribers),
        }
        if self.source is not None:
            record["source"] = self.source
        if self.seconds:
            record["seconds"] = self.seconds
        if self.error is not None:
            record["error"] = {
                "type": self.error.get("type"),
                "message": self.error.get("message"),
            }
        return record


class JobBoard:
    """Owns every job: the in-flight index, the history, the counters."""

    def __init__(self, queue_limit: int = 64, history_limit: int = 256) -> None:
        self.queue_limit = max(1, int(queue_limit))
        self.history_limit = max(1, int(history_limit))
        self._ids = itertools.count(1)
        #: key -> live Job (queued/staging/running): the coalescer.
        self.inflight: Dict[str, Job] = {}
        #: job id -> Job, completed jobs retained for ``repro jobs``.
        self.history: Dict[str, Job] = {}
        self.stats = {
            "submitted": 0,
            "cache_hits": 0,
            "coalesced": 0,
            "executed": 0,
            "failed": 0,
            "rejected": 0,
            "cancelled": 0,
        }

    # ------------------------------------------------------------------
    def accept(self, key: str, spec: CellSpec) -> Optional[Job]:
        """Admit a new job for ``key``, or None if the queue is full.

        The caller has already ruled out read-through and coalescing;
        this only enforces the bound and allocates the record.
        """
        if len(self.inflight) >= self.queue_limit:
            self.stats["rejected"] += 1
            return None
        job = Job(id=f"j{next(self._ids)}", key=key, spec=spec)
        self.inflight[key] = job
        return job

    def coalesce(self, key: str) -> Optional[Job]:
        """The live job already executing ``key``, if any."""
        job = self.inflight.get(key)
        if job is not None:
            self.stats["coalesced"] += 1
        return job

    def retire(self, job: Job) -> None:
        """Move a finished job out of the in-flight index."""
        current = self.inflight.get(job.key)
        if current is job:
            del self.inflight[job.key]
        self.history[job.id] = job
        while len(self.history) > self.history_limit:
            self.history.pop(next(iter(self.history)))

    # ------------------------------------------------------------------
    def describe(self) -> List[dict]:
        """Live jobs first (oldest first), then recent history."""
        live = sorted(self.inflight.values(), key=lambda j: j.created)
        past = sorted(self.history.values(), key=lambda j: j.created)
        return [job.describe() for job in live + past]
