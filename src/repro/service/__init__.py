"""Simulation-as-a-service: the ``repro serve`` daemon and its clients.

The serving front end over the orchestrator (see docs/service.md):

* :mod:`~repro.service.protocol` — the NDJSON message schema, job
  lifecycle states, and cell (de)serialization;
* :mod:`~repro.service.transports` — pluggable listeners/connections:
  unix socket, TCP, and an in-process transport for deterministic
  tests;
* :mod:`~repro.service.jobs` — job records, the bounded queue, and the
  in-flight coalescer (K identical submissions, one execution);
* :mod:`~repro.service.server` — the asyncio daemon: cache
  read-through, streaming progress events, backpressure, graceful
  shutdown;
* :mod:`~repro.service.client` — the async client plus the sync facade
  the ``repro submit`` / ``repro jobs`` / ``repro shutdown`` commands
  use;
* :mod:`~repro.service.faults` — fault injection (``REPRO_FAULTS``,
  faulty transport wrapper) for the distributed chaos suite
  (docs/distributed.md).
"""

from .client import AsyncServiceClient, ServiceError, call
from .faults import FaultInjector, FaultPlan, FaultSpecError, FaultyConnection
from .jobs import Job, JobBoard, Subscriber
from .protocol import (
    CANCELLED,
    DONE,
    FAILED,
    JOB_STATES,
    PROTOCOL_VERSION,
    QUEUED,
    RUNNING,
    STAGING,
    TERMINAL_STATES,
    ProtocolError,
    cell_from_wire,
    cell_to_wire,
    config_from_wire,
    config_to_wire,
)
from .server import ReproService, serve, serve_inproc
from .transports import (
    InProcConnection,
    InProcListener,
    StreamConnection,
    TCPListener,
    UnixListener,
    listener_for,
    open_connection,
    parse_address,
)

__all__ = [
    "AsyncServiceClient",
    "CANCELLED",
    "DONE",
    "FAILED",
    "FaultInjector",
    "FaultPlan",
    "FaultSpecError",
    "FaultyConnection",
    "InProcConnection",
    "InProcListener",
    "JOB_STATES",
    "Job",
    "JobBoard",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QUEUED",
    "RUNNING",
    "ReproService",
    "STAGING",
    "ServiceError",
    "StreamConnection",
    "Subscriber",
    "TCPListener",
    "TERMINAL_STATES",
    "UnixListener",
    "call",
    "cell_from_wire",
    "cell_to_wire",
    "config_from_wire",
    "config_to_wire",
    "listener_for",
    "open_connection",
    "parse_address",
    "serve",
    "serve_inproc",
]
