"""Thin client for the ``repro serve`` daemon.

:class:`AsyncServiceClient` multiplexes any number of in-flight
requests over one connection: a background receive loop routes every
reply/event to its request by the echoed ``id``, so K concurrent
submits on one connection work exactly like K connections (the server
coalesces them either way).  A sync facade (:func:`call`) runs one
client exchange under ``asyncio.run`` for the CLI.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from typing import Awaitable, Callable, Dict, Optional

from . import protocol
from .transports import InProcListener, open_connection


class ServiceError(RuntimeError):
    """A structured failure reply from the daemon."""

    def __init__(self, error: dict) -> None:
        self.error = dict(error or {})
        super().__init__(
            f"{self.error.get('type', 'Error')}: {self.error.get('message', '')}"
        )


class AsyncServiceClient:
    """Protocol client over any transport connection."""

    def __init__(self, connection) -> None:
        self._conn = connection
        self._ids = itertools.count(1)
        self._pending: Dict[str, asyncio.Queue] = {}
        self._recv_task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    async def connect(
        cls,
        address: str,
        *,
        timeout: float = 10.0,
        retry_interval: float = 0.2,
    ) -> "AsyncServiceClient":
        """Connect to a socket daemon, retrying until ``timeout``.

        Retrying lets clients start before the daemon finishes binding
        (the CI smoke job backgrounds ``repro serve`` and submits
        immediately).
        """
        deadline = time.monotonic() + timeout
        while True:
            try:
                connection = await open_connection(address)
                break
            except (ConnectionError, FileNotFoundError, OSError):
                if time.monotonic() >= deadline:
                    raise
                await asyncio.sleep(retry_interval)
        client = cls(connection)
        client._start()
        return client

    @classmethod
    def inproc(cls, listener: InProcListener) -> "AsyncServiceClient":
        """Connect through an in-process listener (tests, benchmarks)."""
        client = cls(listener.connect())
        client._start()
        return client

    def _start(self) -> None:
        self._recv_task = asyncio.get_running_loop().create_task(
            self._recv_loop()
        )

    async def _recv_loop(self) -> None:
        try:
            while True:
                message = await self._conn.recv()
                if message is None:
                    break
                queue = self._pending.get(message.get("id"))
                if queue is not None:
                    queue.put_nowait(message)
        finally:
            for queue in self._pending.values():
                queue.put_nowait(None)  # EOF fan-out

    async def close(self) -> None:
        if self._recv_task is not None:
            self._recv_task.cancel()
        await self._conn.close()

    async def __aenter__(self) -> "AsyncServiceClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # requests
    # ------------------------------------------------------------------
    def _register(self) -> "tuple[str, asyncio.Queue]":
        req_id = f"r{next(self._ids)}"
        queue: asyncio.Queue = asyncio.Queue()
        self._pending[req_id] = queue
        return req_id, queue

    async def request(self, op: str, **fields) -> dict:
        """One request, one reply (``ping`` / ``jobs`` / ``stats`` / ...)."""
        req_id, queue = self._register()
        try:
            await self._conn.send({"op": op, "id": req_id, **fields})
            reply = await queue.get()
        finally:
            self._pending.pop(req_id, None)
        if reply is None:
            raise ConnectionError("server closed the connection")
        return reply

    async def submit(
        self,
        cell: dict,
        *,
        watch: bool = False,
        on_event: Optional[Callable[[dict], "Awaitable[None] | None"]] = None,
    ) -> dict:
        """Submit one cell; returns the terminal event (``done`` etc.).

        With ``watch`` every intermediate event is passed to
        ``on_event`` (sync or async) as it streams in.
        """
        req_id, queue = self._register()
        try:
            await self._conn.send(
                {"op": "submit", "id": req_id, "cell": cell, "watch": watch}
            )
            while True:
                message = await queue.get()
                if message is None:
                    raise ConnectionError("server closed the connection")
                if on_event is not None:
                    result = on_event(message)
                    if asyncio.iscoroutine(result):
                        await result
                if protocol.is_terminal(message):
                    return message
        finally:
            self._pending.pop(req_id, None)

    async def submit_metrics(self, cell: dict, **kwargs) -> dict:
        """Submit and unwrap: the ``done`` event, or :class:`ServiceError`."""
        final = await self.submit(cell, **kwargs)
        if final.get("event") == protocol.DONE:
            return final
        raise ServiceError(final.get("error", {}))

    async def ping(self) -> dict:
        return await self.request("ping")

    async def jobs(self) -> dict:
        return await self.request("jobs")

    async def stats(self) -> dict:
        return await self.request("stats")

    async def shutdown(self, drain: bool = True) -> dict:
        return await self.request("shutdown", drain=drain)


def call(address: str, fn, *, timeout: float = 10.0):
    """Sync facade: connect, run ``await fn(client)``, close (the CLI)."""

    async def run():
        client = await AsyncServiceClient.connect(address, timeout=timeout)
        try:
            return await fn(client)
        finally:
            await client.close()

    return asyncio.run(run())
