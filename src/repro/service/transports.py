"""Pluggable transports for the service: sockets for real use, an
in-process pair for fast deterministic tests.

The abstraction is two small duck types (in the spirit of
``distributed.comm``'s core/inproc split):

* **Connection** — ``await send(message)``, ``await recv() -> dict |
  None`` (None = peer closed), ``await close()``.  Sends are serialized
  per connection so concurrent request handlers cannot interleave
  frames.
* **Listener** — ``await start(handler)`` begins accepting and invokes
  ``handler(connection)`` as a task per peer; ``await close()`` stops
  accepting and closes every live connection.

Transport matrix (see docs/service.md):

============  =========================  ==================================
transport     address                    use
============  =========================  ==================================
unix socket   ``unix:/path`` or a path   local daemon (the CI smoke job)
TCP           ``tcp:host:port``          trusted-network clients
in-process    ``InProcListener``         tests, benchmarks, embedding
============  =========================  ==================================

Socket framing is NDJSON (:func:`repro.service.protocol.encode`); the
in-process transport skips serialization entirely and passes message
dictionaries through paired ``asyncio.Queue`` objects — messages are
deep-copied via the codec so a test cannot accidentally share mutable
state across the "wire", keeping the two transports semantically
identical.
"""

from __future__ import annotations

import asyncio
import json
import os
from typing import Awaitable, Callable, Optional, Tuple

from .protocol import ProtocolError, decode, encode

#: Per-connection read buffer limit: a jobs listing over a busy daemon
#: can exceed asyncio's 64 KiB default line limit.
STREAM_LIMIT = 4 * 1024 * 1024

ConnectionHandler = Callable[["object"], Awaitable[None]]


# ----------------------------------------------------------------------
# socket transport
# ----------------------------------------------------------------------

class StreamConnection:
    """NDJSON over an asyncio stream pair (unix or TCP)."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._send_lock = asyncio.Lock()
        self._closed = False

    async def send(self, message: dict) -> None:
        if self._closed:
            raise ConnectionError("connection is closed")
        async with self._send_lock:
            self._writer.write(encode(message))
            await self._writer.drain()

    async def recv(self) -> Optional[dict]:
        while True:
            try:
                line = await self._reader.readline()
            except (ConnectionError, asyncio.IncompleteReadError):
                return None
            if not line:
                return None
            if line.strip() == b"":
                continue  # tolerate blank keep-alive lines
            return decode(line)

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class _StreamListener:
    """Shared accept loop for the unix and TCP listeners."""

    def __init__(self) -> None:
        self._server: Optional[asyncio.AbstractServer] = None
        self._handler: Optional[ConnectionHandler] = None
        self._connections: "set[StreamConnection]" = set()
        self._tasks: "set[asyncio.Task]" = set()

    async def _start_server(self, handler: ConnectionHandler):
        raise NotImplementedError

    async def start(self, handler: ConnectionHandler) -> None:
        self._handler = handler
        self._server = await self._start_server(handler)

    async def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = StreamConnection(reader, writer)
        self._connections.add(connection)
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
        try:
            await self._handler(connection)
        finally:
            await connection.close()
            self._connections.discard(connection)
            if task is not None:
                self._tasks.discard(task)

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for connection in list(self._connections):
            await connection.close()
        for task in list(self._tasks):
            task.cancel()


class UnixListener(_StreamListener):
    """A unix-domain socket listener (``unix:/path``)."""

    def __init__(self, path: "str | os.PathLike") -> None:
        super().__init__()
        self.path = os.fspath(path)

    def describe(self) -> str:
        return f"unix:{self.path}"

    async def _start_server(self, handler: ConnectionHandler):
        # A stale socket file from a dead daemon would make bind fail.
        try:
            os.unlink(self.path)
        except OSError:
            pass
        return await asyncio.start_unix_server(
            self._accept, path=self.path, limit=STREAM_LIMIT
        )

    async def close(self) -> None:
        await super().close()
        try:
            os.unlink(self.path)
        except OSError:
            pass


class TCPListener(_StreamListener):
    """A TCP listener (``tcp:host:port``)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        super().__init__()
        self.host = host
        self.port = port

    def describe(self) -> str:
        return f"tcp:{self.host}:{self.port}"

    async def _start_server(self, handler: ConnectionHandler):
        server = await asyncio.start_server(
            self._accept, host=self.host, port=self.port, limit=STREAM_LIMIT
        )
        # Resolve port 0 to the bound port so clients can be pointed at it.
        sockets = server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        return server


# ----------------------------------------------------------------------
# in-process transport
# ----------------------------------------------------------------------

class InProcConnection:
    """One side of an in-process connection (paired queues).

    Messages round-trip through the JSON codec so both transports
    enforce identical serializability and never alias mutable payloads.
    """

    _CLOSE = object()

    def __init__(
        self, send_queue: asyncio.Queue, recv_queue: asyncio.Queue
    ) -> None:
        self._send_queue = send_queue
        self._recv_queue = recv_queue
        self._closed = False
        self.peer: Optional["InProcConnection"] = None

    async def send(self, message: dict) -> None:
        if self._closed:
            raise ConnectionError("connection is closed")
        self._send_queue.put_nowait(json.loads(encode(message)))

    async def recv(self) -> Optional[dict]:
        if self._closed:
            return None
        message = await self._recv_queue.get()
        if message is self._CLOSE:
            self._closed = True
            return None
        return message

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # Wake the peer's pending recv with EOF.
        self._send_queue.put_nowait(self._CLOSE)


class InProcListener:
    """In-process listener: ``connect()`` yields the client side.

    Each ``connect`` creates a fresh queue pair, hands the server side
    to the handler as a task, and returns the client side — the exact
    shape a socket accept produces, without any file descriptors.
    """

    def __init__(self) -> None:
        self._handler: Optional[ConnectionHandler] = None
        self._tasks: "set[asyncio.Task]" = set()
        self._closed = False

    def describe(self) -> str:
        return "inproc"

    async def start(self, handler: ConnectionHandler) -> None:
        self._handler = handler

    def connect(self) -> InProcConnection:
        if self._closed or self._handler is None:
            raise ConnectionError("in-process listener is not accepting")
        client_to_server: asyncio.Queue = asyncio.Queue()
        server_to_client: asyncio.Queue = asyncio.Queue()
        client = InProcConnection(client_to_server, server_to_client)
        server = InProcConnection(server_to_client, client_to_server)
        client.peer, server.peer = server, client

        async def run() -> None:
            try:
                await self._handler(server)
            finally:
                await server.close()

        task = asyncio.get_running_loop().create_task(run())
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return client

    async def close(self) -> None:
        self._closed = True
        for task in list(self._tasks):
            task.cancel()


# ----------------------------------------------------------------------
# addresses
# ----------------------------------------------------------------------

def parse_address(address: str) -> Tuple[str, ...]:
    """``unix:/path``, ``tcp:host:port``, or a bare filesystem path.

    URL-style double slashes are tolerated (``tcp://host:port``,
    ``unix:///path``) so addresses copied from dask/k8s-shaped configs
    just work.  Returns ``("unix", path)`` or ``("tcp", host, port)``.
    """
    if address.startswith("unix:"):
        rest = address[len("unix:"):]
        if rest.startswith("//"):
            rest = rest[2:]  # "unix:///tmp/x" -> "/tmp/x"
        return ("unix", rest)
    if address.startswith("tcp:"):
        rest = address[len("tcp:"):]
        if rest.startswith("//"):
            rest = rest[2:]
        host, sep, port = rest.rpartition(":")
        if not sep or not port.isdigit():
            raise ProtocolError(f"malformed tcp address: {address!r}")
        return ("tcp", host or "127.0.0.1", int(port))
    return ("unix", address)


def listener_for(address: str):
    """Build the listener an address string describes."""
    parsed = parse_address(address)
    if parsed[0] == "unix":
        return UnixListener(parsed[1])
    return TCPListener(parsed[1], parsed[2])


async def open_connection(address: str) -> StreamConnection:
    """Connect to a daemon by address string (one attempt)."""
    parsed = parse_address(address)
    if parsed[0] == "unix":
        reader, writer = await asyncio.open_unix_connection(
            parsed[1], limit=STREAM_LIMIT
        )
    else:
        reader, writer = await asyncio.open_connection(
            parsed[1], parsed[2], limit=STREAM_LIMIT
        )
    return StreamConnection(reader, writer)
