"""The ``repro serve`` daemon: a persistent async simulation service.

One long-lived asyncio process stands the expensive state up once — a
:class:`~repro.orchestrator.executor.PersistentCellExecutor` holding a
warm worker pool and shared-memory graph arenas — and then answers
experiment cells over any number of transports.  The request path:

1. **read-through** — a submitted cell whose key is already in the
   persistent ``.repro-cache/`` is answered immediately from disk
   (``source: "cache"``), byte-identical to the run that produced it;
2. **coalescing** — a cell already in flight gains a subscriber instead
   of a second execution; every subscriber receives the same terminal
   payload when the one execution lands (and writes through to the
   cache, so the *next* daemon or batch run is a read-through too);
3. **bounded queue** — anything else becomes a job in a bounded queue
   (reject-with-``QueueFull`` backpressure, never blocking the accept
   loop) and walks ``queued → staging → running → done/failed`` with
   every transition streamed to watching subscribers.

A failing cell produces a structured ``failed`` event and leaves the
pool warm; a worker that dies hard is replaced behind the executor.
Graceful shutdown (client ``shutdown`` op or SIGINT/SIGTERM via the
CLI) drains or cancels in-flight jobs, then closes the executor, which
always unlinks its ``/dev/shm`` segments.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..orchestrator.cache import ResultCache
from ..orchestrator.cells import cell_key
from ..orchestrator.executor import PersistentCellExecutor
from . import protocol
from .jobs import Job, JobBoard, Subscriber
from .transports import InProcListener


class ReproService:
    """Transport-agnostic server core (see module docstring).

    Parameters
    ----------
    jobs:
        Worker parallelism of the underlying executor (``1`` = a single
        in-process worker thread — the in-proc-transport default).
    cache:
        A :class:`ResultCache` for read-through and write-through, or
        None to serve uncached (every submit executes).
    queue_limit:
        Maximum jobs queued-or-running before submits are rejected.
    timeout:
        Optional per-cell wall-clock limit (see the executor).
    log:
        Optional ``callable(str)`` receiving one line per server event
        (the CI smoke job captures this as its artifact).
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        queue_limit: int = 64,
        history_limit: int = 256,
        timeout: Optional[float] = None,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.cache = cache
        self.executor = PersistentCellExecutor(jobs, cache=cache, timeout=timeout)
        self.board = JobBoard(queue_limit, history_limit)
        self._queue: "asyncio.Queue[Optional[Job]]" = asyncio.Queue()
        self._listeners: List[object] = []
        self._workers: List[asyncio.Task] = []
        self._dispatches: "set[asyncio.Task]" = set()
        self._stopping = False
        self._stopped = asyncio.Event()
        self._shutdown_task: Optional[asyncio.Task] = None
        self._log = log if log is not None else (lambda line: None)
        self._started = time.time()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self, listeners: List[object]) -> None:
        """Begin accepting on every listener and spin up the job workers."""
        self._listeners = list(listeners)
        for listener in self._listeners:
            await listener.start(self.handle_connection)
        for index in range(max(1, self.executor.jobs)):
            self._workers.append(
                asyncio.get_running_loop().create_task(
                    self._worker_loop(), name=f"repro-serve-worker-{index}"
                )
            )
        self._log(f"serving with jobs={self.executor.jobs}, "
                  f"queue_limit={self.board.queue_limit}, "
                  f"cache={'on' if self.cache is not None else 'off'}")

    async def serve_forever(self) -> None:
        """Block until a shutdown completes."""
        await self._stopped.wait()

    def initiate_shutdown(self, drain: bool = True) -> "asyncio.Task":
        """Idempotently begin shutdown; returns the owning task."""
        if self._shutdown_task is None:
            self._shutdown_task = asyncio.get_running_loop().create_task(
                self.shutdown(drain=drain)
            )
        return self._shutdown_task

    async def shutdown(self, drain: bool = True) -> None:
        """Stop serving: cancel the queue, drain or cancel running cells,
        close the executor (unlinking shm), then the listeners."""
        if self._stopping:
            await self._stopped.wait()
            return
        self._stopping = True
        self._log(f"shutdown requested (drain={drain})")

        # Queued-but-not-running jobs are cancelled and notified.
        pending: List[Job] = []
        while True:
            try:
                job = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if job is not None:
                pending.append(job)
        for job in pending:
            job.mark(protocol.CANCELLED)
            self.board.stats["cancelled"] += 1
            await self._broadcast(job)
            self.board.retire(job)

        if drain:
            # Let cells already handed to the executor finish and
            # deliver their terminal events.
            while self.board.inflight:
                await asyncio.sleep(0.02)

        for _ in self._workers:
            self._queue.put_nowait(None)
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []

        # Executor close cancels anything still running (non-drain path)
        # and always unlinks the arena segments.
        self.executor.close(cancel=not drain)

        for listener in self._listeners:
            with contextlib.suppress(Exception):
                await listener.close()
        for task in list(self._dispatches):
            task.cancel()
        self._log("shutdown complete")
        self._stopped.set()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def handle_connection(self, connection) -> None:
        """Per-peer loop: each request is dispatched as its own task so a
        long submit cannot block later requests on the same connection."""
        while True:
            try:
                message = await connection.recv()
            except protocol.ProtocolError as exc:
                await self._send(connection, protocol.error_reply(
                    "ProtocolError", str(exc)
                ))
                continue
            if message is None:
                return
            task = asyncio.get_running_loop().create_task(
                self._dispatch(message, connection)
            )
            self._dispatches.add(task)
            task.add_done_callback(self._dispatches.discard)

    async def _dispatch(self, message: dict, connection) -> None:
        op = message.get("op")
        req_id = message.get("id")
        try:
            if op == "ping":
                await self._send(connection, protocol.ok_reply(
                    req_id,
                    server=protocol.SERVER_NAME,
                    protocol=protocol.PROTOCOL_VERSION,
                    uptime=round(time.time() - self._started, 3),
                ))
            elif op == "submit":
                await self._handle_submit(message, connection)
            elif op == "jobs":
                await self._send(connection, protocol.ok_reply(
                    req_id,
                    jobs=self.board.describe(),
                    staging=self.executor.staging(),
                ))
            elif op == "stats":
                await self._send(connection, protocol.ok_reply(
                    req_id,
                    stats=dict(self.board.stats),
                    inflight=len(self.board.inflight),
                    queue_limit=self.board.queue_limit,
                    executions=self.executor.executions,
                ))
            elif op == "shutdown":
                drain = bool(message.get("drain", True))
                await self._send(connection, protocol.ok_reply(
                    req_id, stopping=True, drain=drain
                ))
                self.initiate_shutdown(drain=drain)
            else:
                await self._send(connection, protocol.error_reply(
                    "UnknownOp", f"unknown op: {op!r}", req_id
                ))
        except Exception as exc:  # a handler bug must not kill the loop
            self._log(f"dispatch error for op={op!r}: {type(exc).__name__}: {exc}")
            with contextlib.suppress(Exception):
                await self._send(connection, protocol.error_reply(
                    type(exc).__name__, str(exc), req_id
                ))

    async def _send(self, connection, message: dict) -> bool:
        try:
            await connection.send(message)
            return True
        except (ConnectionError, OSError):
            return False  # peer is gone; its subscriptions just lapse

    # ------------------------------------------------------------------
    # submit path: read-through -> coalesce -> enqueue
    # ------------------------------------------------------------------
    async def _handle_submit(self, message: dict, connection) -> None:
        req_id = message.get("id")
        try:
            spec = protocol.cell_from_wire(message.get("cell"))
        except protocol.ProtocolError as exc:
            await self._send(connection, protocol.error_reply(
                "ProtocolError", str(exc), req_id
            ))
            return
        key = cell_key(spec)
        self.board.stats["submitted"] += 1
        subscriber = Subscriber(
            req_id=req_id, send=connection.send,
            watch=bool(message.get("watch", False)),
        )

        entry = self.executor.lookup(key)
        if entry is not None:
            self.board.stats["cache_hits"] += 1
            self._log(f"cache hit {spec.label()}")
            await self._send(connection, protocol.job_event(
                protocol.DONE, job_id="cache", key=key, req_id=req_id,
                source="cache", seconds=entry.seconds,
                metrics=entry.metrics.to_dict(),
            ))
            return

        live = self.board.coalesce(key)
        if live is not None and not live.done:
            subscriber.coalesced = True
            live.subscribers.append(subscriber)
            self._log(f"coalesced {spec.label()} onto {live.id}")
            if subscriber.watch:  # catch the late subscriber up
                await self._send(connection, protocol.job_event(
                    live.state, job_id=live.id, key=key, req_id=req_id,
                    ts=live.timing.get(live.state, 0.0), coalesced=True,
                ))
            return

        if self._stopping:
            await self._send(connection, protocol.job_event(
                protocol.FAILED, job_id="rejected", key=key, req_id=req_id,
                error={"type": "ShuttingDown",
                       "message": "server is shutting down"},
            ))
            return

        job = self.board.accept(key, spec)
        if job is None:
            self._log(f"rejected {spec.label()} (queue full)")
            await self._send(connection, protocol.job_event(
                protocol.FAILED, job_id="rejected", key=key, req_id=req_id,
                error={
                    "type": "QueueFull",
                    "message": (
                        f"job queue is at its limit "
                        f"({self.board.queue_limit}); retry later"
                    ),
                },
            ))
            return

        job.subscribers.append(subscriber)
        job.mark(protocol.QUEUED)
        self._log(f"accepted {job.id} {spec.label()}")
        await self._broadcast(job)
        self._queue.put_nowait(job)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    async def _worker_loop(self) -> None:
        while True:
            job = await self._queue.get()
            if job is None:
                return
            if job.done:  # cancelled while queued
                continue
            try:
                await self._run_job(job)
            except Exception as exc:  # defensive: never lose a worker
                job.error = {"type": type(exc).__name__, "message": str(exc),
                             "traceback": ""}
                self.board.stats["failed"] += 1
                job.mark(protocol.FAILED)
                await self._broadcast(job)
                self.board.retire(job)

    async def _run_job(self, job: Job) -> None:
        spec = job.spec
        if not self.executor.is_staged(spec.dataset, spec.scale):
            job.mark(protocol.STAGING)
            await self._broadcast(job)
            record = await asyncio.get_running_loop().run_in_executor(
                None, self.executor.stage, spec.dataset, spec.scale
            )
            self._log(
                f"staged {spec.dataset}@{spec.scale:g}: "
                f"{record.get('source')} ({record.get('seconds')}s)"
            )

        job.mark(protocol.RUNNING)
        await self._broadcast(job)
        metrics, error, seconds, worker = await self.executor.run_cell(
            spec, job.key
        )
        job.seconds = seconds
        job.worker = worker
        if metrics is not None:
            job.metrics = metrics.to_dict()
            job.source = "computed"
            self.board.stats["executed"] += 1
            if self.cache is not None:
                try:
                    self.cache.put(spec, job.key, metrics, seconds)
                except OSError:
                    pass
            job.mark(protocol.DONE)
            self._log(f"done {job.id} {spec.label()} ({seconds:.2f}s)")
        else:
            job.error = error
            self.board.stats["failed"] += 1
            job.mark(protocol.FAILED)
            self._log(
                f"failed {job.id} {spec.label()}: "
                f"{(error or {}).get('type')}: {(error or {}).get('message')}"
            )
        await self._broadcast(job)
        self.board.retire(job)

    async def _broadcast(self, job: Job) -> None:
        """Send the job's current state to its subscribers.

        Intermediate states reach only watching subscribers; terminal
        states reach everyone, with the full payload.  A subscriber
        whose connection has died is dropped.
        """
        state = job.state
        terminal = job.done
        alive: List[Subscriber] = []
        for subscriber in job.subscribers:
            if not terminal and not subscriber.watch:
                alive.append(subscriber)
                continue
            event = protocol.job_event(
                state, job_id=job.id, key=job.key, req_id=subscriber.req_id,
                ts=job.timing.get(state, 0.0),
            )
            if subscriber.coalesced:
                event["coalesced"] = True
            if terminal:
                event["timing"] = dict(job.timing)
                if state == protocol.DONE:
                    event["source"] = job.source
                    event["seconds"] = job.seconds
                    event["metrics"] = job.metrics
                elif state == protocol.FAILED:
                    event["error"] = job.error
                if job.worker is not None:
                    event["worker"] = job.worker
            if await self._send_to(subscriber, event):
                alive.append(subscriber)
        job.subscribers = alive

    async def _send_to(self, subscriber: Subscriber, event: dict) -> bool:
        try:
            await subscriber.send(event)
            return True
        except (ConnectionError, OSError):
            return False


# ----------------------------------------------------------------------
# embedding helpers
# ----------------------------------------------------------------------

@contextlib.asynccontextmanager
async def serve_inproc(**kwargs):
    """A running service on an in-process listener (tests, benchmarks).

    Yields ``(service, listener)``; connect clients with
    ``AsyncServiceClient.inproc(listener)``.  Shuts down (drain) on
    exit if the body did not already do so.
    """
    service = ReproService(**kwargs)
    listener = InProcListener()
    await service.start([listener])
    try:
        yield service, listener
    finally:
        if not service._stopped.is_set():
            await service.shutdown(drain=False)


async def serve(
    addresses: List[str],
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    queue_limit: int = 64,
    timeout: Optional[float] = None,
    log: Optional[Callable[[str], None]] = None,
    install_signal_handlers: bool = True,
    ready: Optional[Callable[[List[object]], None]] = None,
) -> Dict[str, int]:
    """Run a daemon on socket addresses until shut down; the CLI entry.

    Returns the final stats dictionary.  ``ready`` (if given) receives
    the started listeners — the TCP listener resolves port 0 by then.
    """
    from .transports import listener_for

    service = ReproService(
        jobs=jobs, cache=cache, queue_limit=queue_limit,
        timeout=timeout, log=log,
    )
    listeners = [listener_for(address) for address in addresses]
    await service.start(listeners)
    if ready is not None:
        ready(listeners)

    removers: List[Tuple[object, int]] = []
    if install_signal_handlers:
        import signal

        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    signum, service.initiate_shutdown, True
                )
                removers.append((loop, signum))
            except (NotImplementedError, RuntimeError):
                pass
    try:
        await service.serve_forever()
    finally:
        for loop, signum in removers:
            with contextlib.suppress(Exception):
                loop.remove_signal_handler(signum)
    return dict(service.board.stats)
