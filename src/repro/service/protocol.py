"""Wire protocol of ``repro serve``: newline-delimited JSON messages.

One message is one JSON object on one line (NDJSON).  The protocol is
deliberately small and transport-agnostic — the same dictionaries flow
over a unix/TCP socket and over the in-process transport used by tests
and benchmarks (see :mod:`repro.service.transports`).

Requests (client → server)
--------------------------
Every request is ``{"op": <name>, "id": <correlation>, ...}``.  The
``id`` is chosen by the client and echoed on every reply so multiple
requests can be in flight on one connection.

``ping``
    Liveness probe; replies ``{"ok": true, "server": ..., "protocol": 1}``.
``submit``
    ``{"op": "submit", "id": ..., "cell": <cell>, "watch": bool}``.
    ``<cell>`` carries the cell coordinates — ``dataset``, ``pattern``,
    ``policy``, optional ``scale`` (default: the server's
    ``default_scale()``), optional ``verify`` (default true) and an
    optional ``config`` dictionary of :class:`~repro.sim.config.SimConfig`
    field overrides applied on top of the evaluation configuration
    (:func:`repro.experiments.runner.eval_config`) — an empty/absent
    ``config`` therefore addresses exactly the cells ``repro
    experiment`` runs.  With ``watch`` the server streams every state
    transition; without it only the final event arrives.
``jobs``
    Snapshot of recent jobs and staged graphs.
``stats``
    Server counters (submitted / cache_hits / coalesced / executed /
    failed / rejected) plus queue occupancy.
``shutdown``
    Ask the daemon to stop (``{"drain": bool}``, default true: finish
    the running cell, cancel the queue, then exit).

Events (server → client)
------------------------
``{"event": <state>, "id": ..., "job": ..., "key": ..., ...}`` where
``<state>`` walks the job lifecycle::

    queued -> staging -> running -> done | failed | cancelled

Terminal events carry the payload: ``done`` has ``metrics`` (the
serialized :class:`~repro.sim.metrics.RunMetrics`), ``seconds`` and
``source`` (``computed`` or ``cache``; coalesced subscribers also get
``"coalesced": true``); ``failed`` has a structured ``error`` with
``type`` / ``message`` / ``traceback``.  Intermediate events carry
``ts``, seconds since the job was accepted.

Backpressure
------------
The job queue is bounded.  A ``submit`` that arrives with the queue
full is **rejected immediately** with a ``failed`` event whose error
type is ``QueueFull`` — the server never blocks a connection on queue
space, so a slow consumer cannot wedge the accept loop; clients are
expected to back off and retry.  A submit arriving during shutdown is
rejected the same way with ``ShuttingDown``.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Optional

from ..orchestrator.cells import CellSpec
from ..sim.config import SimConfig

PROTOCOL_VERSION = 1
SERVER_NAME = "repro-serve"

# Job lifecycle states (also the ``event`` names on the wire).
QUEUED = "queued"
STAGING = "staging"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States a job can never leave.
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})

#: Every state, in lifecycle order (documentation + validation).
JOB_STATES = (QUEUED, STAGING, RUNNING, DONE, FAILED, CANCELLED)


class ProtocolError(ValueError):
    """A message that cannot be parsed or fails validation."""


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------

def encode(message: dict) -> bytes:
    """One message as one NDJSON line (the only framing on the wire)."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode(line: bytes) -> dict:
    """Parse one NDJSON line; raises :class:`ProtocolError` on garbage."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"undecodable message: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


# ----------------------------------------------------------------------
# cell (de)serialization
# ----------------------------------------------------------------------

def config_to_wire(config: SimConfig) -> dict:
    """Every SimConfig field by name (adding a knob widens the wire)."""
    return {
        f.name: getattr(config, f.name) for f in dataclasses.fields(config)
    }


def config_from_wire(overrides: Optional[dict]) -> SimConfig:
    """Rebuild a SimConfig from wire overrides on the evaluation config.

    A full field dictionary (what :func:`config_to_wire` sends)
    reconstructs the exact configuration; a partial one is treated as
    overrides on :func:`~repro.experiments.runner.eval_config`, matching
    ``repro experiment`` semantics.  Unknown keys are rejected — a typo
    must not silently address a different cell.
    """
    from ..experiments.runner import eval_config

    overrides = dict(overrides or {})
    known = {f.name for f in dataclasses.fields(SimConfig)}
    unknown = sorted(set(overrides) - known)
    if unknown:
        raise ProtocolError(f"unknown config field(s): {', '.join(unknown)}")
    return eval_config(**overrides)


def cell_to_wire(spec: CellSpec) -> dict:
    """A CellSpec as a submit request's ``cell`` payload."""
    return {
        "dataset": spec.dataset,
        "pattern": spec.pattern,
        "policy": spec.policy,
        "scale": spec.scale,
        "verify": spec.verify,
        "config": config_to_wire(spec.config),
    }


def cell_from_wire(cell: object) -> CellSpec:
    """Validate and resolve a submit request's ``cell`` payload."""
    if not isinstance(cell, dict):
        raise ProtocolError("submit requires a 'cell' object")
    missing = [k for k in ("dataset", "pattern", "policy") if not cell.get(k)]
    if missing:
        raise ProtocolError(f"cell is missing {', '.join(missing)}")
    from ..experiments.runner import default_scale

    scale = cell.get("scale")
    config = cell.get("config")
    if config is not None and not isinstance(config, dict):
        raise ProtocolError("cell 'config' must be an object")
    try:
        return CellSpec(
            dataset=str(cell["dataset"]),
            pattern=str(cell["pattern"]),
            policy=str(cell["policy"]),
            scale=float(scale) if scale is not None else default_scale(),
            config=config_from_wire(config),
            verify=bool(cell.get("verify", True)),
        )
    except ProtocolError:
        raise
    except Exception as exc:  # e.g. ConfigError from SimConfig validation
        raise ProtocolError(f"invalid cell: {type(exc).__name__}: {exc}") from None


# ----------------------------------------------------------------------
# message constructors (the single source of reply shapes)
# ----------------------------------------------------------------------

def ok_reply(req_id: Optional[str] = None, **fields) -> dict:
    message = {"ok": True}
    if req_id is not None:
        message["id"] = req_id
    message.update(fields)
    return message


def error_reply(
    error_type: str, message: str, req_id: Optional[str] = None
) -> dict:
    reply = {"ok": False, "error": {"type": error_type, "message": message}}
    if req_id is not None:
        reply["id"] = req_id
    return reply


def job_event(
    state: str,
    *,
    job_id: str,
    key: str,
    req_id: Optional[str] = None,
    **fields,
) -> dict:
    event = {"event": state, "job": job_id, "key": key}
    if req_id is not None:
        event["id"] = req_id
    event.update(fields)
    return event


def is_terminal(message: dict) -> bool:
    """Whether a reply/event ends a submit exchange."""
    if message.get("event") in TERMINAL_STATES:
        return True
    return "ok" in message and not message.get("ok")
