"""Fault injection for the distributed scheduler/worker protocol.

The chaos suite (``tests/test_distributed.py``) has to prove semantics
that only show up when things die at exactly the wrong moment: a worker
SIGKILLed mid-cell, heartbeats that silently stop arriving, a
connection severed between computing a result and delivering it.  This
module is the single place those failures are manufactured, in two
complementary shapes:

* :class:`FaultPlan` / :class:`FaultInjector` — an out-of-process plan
  parsed from the ``REPRO_FAULTS`` environment variable.  A spawned
  worker consults its injector at each protocol boundary (cell start,
  heartbeat tick, result send) and hurts *itself* on cue, which is the
  only honest way to test SIGKILL: the process genuinely disappears
  with no chance to clean up.
* :class:`FaultyConnection` — an in-process transport wrapper that
  drops or severs specific operations on an otherwise healthy
  connection, for deterministic single-event-loop chaos tests.

``REPRO_FAULTS`` is a comma-separated list of directives::

    kill:cell:N        SIGKILL this process as it starts its Nth cell
    sever:result:N     abruptly close the connection instead of sending
                       the Nth result, then exit
    mute:heartbeat     stop sending heartbeats entirely
    mute:heartbeat:N   send N heartbeats, then go silent
    delay:heartbeat:S  sleep S seconds before every heartbeat send

Counts are 1-based ("the first cell" is ``kill:cell:1``).  Directives
the worker does not understand raise :class:`FaultSpecError` at parse
time — a typo in a chaos test must fail loudly, not silently test
nothing.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass
from typing import Optional

ENV_VAR = "REPRO_FAULTS"


class FaultSpecError(ValueError):
    """An unparseable ``REPRO_FAULTS`` directive."""


@dataclass
class FaultPlan:
    """Parsed fault directives for one worker process."""

    kill_at_cell: Optional[int] = None
    sever_at_result: Optional[int] = None
    mute_heartbeats_after: Optional[int] = None
    heartbeat_delay: float = 0.0

    @classmethod
    def parse(cls, spec: Optional[str]) -> "FaultPlan":
        plan = cls()
        for raw in (spec or "").replace(";", ",").split(","):
            directive = raw.strip()
            if not directive:
                continue
            parts = directive.split(":")
            try:
                if parts[:2] == ["kill", "cell"] and len(parts) == 3:
                    plan.kill_at_cell = int(parts[2])
                elif parts[:2] == ["sever", "result"] and len(parts) == 3:
                    plan.sever_at_result = int(parts[2])
                elif parts[:2] == ["mute", "heartbeat"] and len(parts) == 2:
                    plan.mute_heartbeats_after = 0
                elif parts[:2] == ["mute", "heartbeat"] and len(parts) == 3:
                    plan.mute_heartbeats_after = int(parts[2])
                elif parts[:2] == ["delay", "heartbeat"] and len(parts) == 3:
                    plan.heartbeat_delay = float(parts[2])
                else:
                    raise FaultSpecError(f"unknown fault directive: {directive!r}")
            except ValueError as exc:
                if isinstance(exc, FaultSpecError):
                    raise
                raise FaultSpecError(
                    f"malformed fault directive: {directive!r}"
                ) from None
        return plan

    @property
    def empty(self) -> bool:
        return (
            self.kill_at_cell is None
            and self.sever_at_result is None
            and self.mute_heartbeats_after is None
            and not self.heartbeat_delay
        )


class FaultInjector:
    """Stateful executor of a :class:`FaultPlan` at protocol boundaries.

    The worker agent calls one method per boundary; with an empty plan
    every call is a cheap no-op, so the injector is always wired in and
    production and chaos runs exercise the identical code path.
    """

    def __init__(self, plan: Optional[FaultPlan] = None) -> None:
        self.plan = plan or FaultPlan()
        self._cells = 0
        self._results = 0
        self._heartbeats = 0

    @classmethod
    def from_env(cls, environ=None) -> "FaultInjector":
        environ = os.environ if environ is None else environ
        return cls(FaultPlan.parse(environ.get(ENV_VAR)))

    # ------------------------------------------------------------------
    def on_cell_start(self) -> None:
        """SIGKILL this process if the plan says this cell is the one.

        SIGKILL — not an exception, not sys.exit — because the semantics
        under test are a worker that vanishes without running a single
        ``finally`` block.
        """
        self._cells += 1
        if self.plan.kill_at_cell is not None and self._cells == self.plan.kill_at_cell:
            os.kill(os.getpid(), signal.SIGKILL)

    def should_sever_result(self) -> bool:
        """Whether to sever the connection instead of sending this result."""
        self._results += 1
        return (
            self.plan.sever_at_result is not None
            and self._results == self.plan.sever_at_result
        )

    def drop_heartbeat(self) -> bool:
        """Whether this heartbeat should silently not be sent."""
        self._heartbeats += 1
        after = self.plan.mute_heartbeats_after
        return after is not None and self._heartbeats > after

    def heartbeat_delay(self) -> float:
        return self.plan.heartbeat_delay


class FaultyConnection:
    """Transport wrapper that injects faults on specific operations.

    Wraps any connection duck type (stream or in-process).  ``drop_ops``
    silently discards sends whose ``op`` matches; ``sever_on`` closes
    the underlying connection instead of performing the Nth send of
    that op and raises ``ConnectionError``, exactly what a TCP RST
    mid-write looks like to the caller.
    """

    def __init__(
        self,
        inner,
        *,
        drop_ops: tuple = (),
        sever_on: Optional[str] = None,
        sever_at: int = 1,
    ) -> None:
        self._inner = inner
        self._drop_ops = frozenset(drop_ops)
        self._sever_on = sever_on
        self._sever_at = sever_at
        self._sends: dict = {}
        #: Sends swallowed so far, by op (tests assert on this).
        self.dropped: dict = {}

    async def send(self, message: dict) -> None:
        op = message.get("op")
        if op in self._drop_ops:
            self.dropped[op] = self.dropped.get(op, 0) + 1
            return
        if op is not None and op == self._sever_on:
            self._sends[op] = self._sends.get(op, 0) + 1
            if self._sends[op] == self._sever_at:
                await self._inner.close()
                raise ConnectionError(f"fault: connection severed on {op!r}")
        await self._inner.send(message)

    async def recv(self):
        return await self._inner.recv()

    async def close(self) -> None:
        await self._inner.close()
