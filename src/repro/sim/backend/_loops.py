"""Loop-form kernel bodies shared by the numba backend and its tests.

Each function here is the scalar-loop formulation of one backend kernel,
written in the numba-compilable subset of Python (no dicts, no numpy
fancy indexing, plain ``while``/``for`` over ``int64`` buffers).  The
numba backend wraps them in ``njit``; the parity tests run the very same
functions *interpreted*, so the kernel logic is covered locally even
when numba is not installed.

Floating-point kernels (:func:`ema_fold_loop`) use exactly the same
double-precision expressions, in the same order, as the pure backend's
Python loops — IEEE-754 doubles make the results bit-identical, which is
what keeps golden metrics byte-identical across backends.  The C
extension backend mirrors these bodies statement for statement (and is
compiled with ``-ffp-contract=off`` so no fused multiply-adds sneak in).
"""

from __future__ import annotations


def intersect_loop(a, b, out) -> int:
    """Intersection of sorted unique ``a`` into ``out``; returns the count.

    ``a`` is the smaller operand (caller swaps).  Two regimes, picked by
    the size ratio exactly like the C kernel: a galloping binary-search
    sweep when ``b`` dwarfs ``a`` (the searchsorted regime the numpy
    backend always uses), otherwise the classic two-pointer merge.
    """
    na = a.shape[0]
    nb = b.shape[0]
    k = 0
    if na * 32 < nb:
        lo = 0
        for i in range(na):
            v = a[i]
            left = lo
            right = nb
            while left < right:
                mid = (left + right) >> 1
                if b[mid] < v:
                    left = mid + 1
                else:
                    right = mid
            lo = left
            if left < nb and b[left] == v:
                out[k] = v
                k += 1
    else:
        i = 0
        j = 0
        while i < na and j < nb:
            x = a[i]
            y = b[j]
            if x == y:
                out[k] = x
                k += 1
                i += 1
                j += 1
            elif x < y:
                i += 1
            else:
                j += 1
    return k


def subtract_loop(a, b, out) -> int:
    """Elements of sorted unique ``a`` not in ``b``; returns the count."""
    na = a.shape[0]
    nb = b.shape[0]
    k = 0
    if nb > na * 32:
        lo = 0
        for i in range(na):
            v = a[i]
            left = lo
            right = nb
            while left < right:
                mid = (left + right) >> 1
                if b[mid] < v:
                    left = mid + 1
                else:
                    right = mid
            lo = left
            if left >= nb or b[left] != v:
                out[k] = v
                k += 1
    else:
        j = 0
        for i in range(na):
            v = a[i]
            while j < nb and b[j] < v:
                j += 1
            if j >= nb or b[j] != v:
                out[k] = v
                k += 1
    return k


def resident_stamp_loop(tags, stamps, num_sets, assoc, first_line, last_line, tick) -> bool:
    """All-resident probe + LRU stamp of a line span (flat cache arrays).

    Pass 1 verifies every line of ``[first_line, last_line]`` is resident
    (no state change on failure); pass 2 stamps the hit ways in address
    order with consecutive ticks — exactly the state a sequential
    ``Cache.lookup`` sweep would leave.  Returns whether the span was
    fully resident; the caller advances ``cache._tick`` by the span
    length on success.
    """
    for addr in range(first_line, last_line + 1):
        base = (addr % num_sets) * assoc
        hit = False
        for way in range(assoc):
            if tags[base + way] == addr:
                hit = True
                break
        if not hit:
            return False
    for addr in range(first_line, last_line + 1):
        base = (addr % num_sets) * assoc
        for way in range(assoc):
            if tags[base + way] == addr:
                stamps[base + way] = tick
                tick += 1
                break
    return True


def task_fastpath_loop(
    now,
    is_leaf,
    vertex_line,
    inter_first,
    inter_last,
    out_first,
    out_last,
    out_count,
    segments,
    spans,
    nspans,
    result,
    decode_free,
    dispatch_free,
    issue_free,
    spawn_free,
    l1_tags,
    l1_stamps,
    l1_meta,
    l1_sets,
    l1_assoc,
    l1_window,
    l2_tags,
    l2_stamps,
    l2_meta,
    l2_sets,
    l2_assoc,
    bank_free,
    mem_stats,
    iu_free,
    iu_acc,
    unit_interval,
    decode_cycles,
    dispatch_cycles,
    post_spawn_cycles,
    leaf_cycles,
    l1_hit,
    l2_hit,
    l2_service,
    hop,
    alpha,
    segment_cycles,
    num_dividers,
    fetch_ports,
    stream_ok,
) -> int:
    """Book one task through every pipeline stage in a single call.

    The macro-step engine core: decode → dispatch → vertex fetch →
    input-span fetches → issue → IU service → writeback → spawn, with
    every float expression copied statement for statement from
    ``PE._book_front`` / ``PE._book_body`` / ``PE._book_tail``,
    ``MemorySystem.fetch_*`` and ``IUPool.submit`` so the booked state
    is bit-identical to the per-event path.

    Probe-then-commit escape protocol: phase 1 verifies every
    precondition side-effect-free (tag scans only); any failure returns
    a negative escape code **having mutated nothing**, and the caller
    replays the task through the exact Python slow path:

    * ``-3`` — the vertex line misses the L1,
    * ``-4`` — the intermediate span is not fully L1-resident,
    * ``-5`` — a graph span is not fully L2-resident.

    Phase 2 commits.  Two outcomes:

    * ``0`` — complete: the task finished spawn; ``result[0]`` is the
      completion-event time (the caller posts it).
    * ``1`` — partial: the output span is not fully L1-resident, so the
      writeback needs cache fills and L2 spills.  The core has committed
      decode through IU service; ``result[0]`` is the post-IU time and
      the caller runs writeback + spawn in Python (``PE._book_tail``).

    Per-PE state arrives as 1-element views (pipeline frees) and the
    owning objects' storage arrays (cache ``_tags``/``_stamps``/
    ``_meta``, window ``_state``, pool ``_server_free``/``_acc``); the
    shared L2/bank/stat arrays are the same objects every PE sees.
    ``spans`` holds ``nspans`` ``(first, last)`` graph spans flattened;
    counters ride in the int64 ``_meta``/``_stats`` arrays.  The cext
    backend mirrors this body statement for statement in C.
    """
    # ------------------------------------------------------------ probe
    if vertex_line >= 0:
        base = (vertex_line % l1_sets) * l1_assoc
        hit = False
        for way in range(l1_assoc):
            if l1_tags[base + way] == vertex_line:
                hit = True
                break
        if not hit:
            return -3
    if is_leaf == 0:
        if inter_first >= 0:
            for addr in range(inter_first, inter_last + 1):
                base = (addr % l1_sets) * l1_assoc
                hit = False
                for way in range(l1_assoc):
                    if l1_tags[base + way] == addr:
                        hit = True
                        break
                if not hit:
                    return -4
        for s in range(nspans):
            for addr in range(spans[2 * s], spans[2 * s + 1] + 1):
                base = (addr % l2_sets) * l2_assoc
                hit = False
                for way in range(l2_assoc):
                    if l2_tags[base + way] == addr:
                        hit = True
                        break
                if not hit:
                    return -5
    # ----------------------------------------------------------- commit
    # Decode + dispatch booking (PE._book_front).
    free = decode_free[0]
    start = now if now >= free else free
    decode_free[0] = start + unit_interval
    t = start + decode_cycles
    free = dispatch_free[0]
    start = t if t >= free else free
    dispatch_free[0] = start + unit_interval
    t = start + dispatch_cycles
    # Vertex fetch — guaranteed L1 hit (fetch_intermediate_line).
    if vertex_line >= 0:
        mem_stats[1] += 1
        base = (vertex_line % l1_sets) * l1_assoc
        for way in range(l1_assoc):
            if l1_tags[base + way] == vertex_line:
                l1_stamps[base + way] = l1_meta[0]
                break
        l1_meta[0] += 1
        l1_meta[1] += 1
        finish = t + l1_hit
        if finish > t:
            t = finish
    if is_leaf != 0:
        # Leaf task: spawn booking only (PE._book_leaf).
        free = spawn_free[0]
        at = t + leaf_cycles
        start = at if at >= free else free
        spawn_free[0] = start + unit_interval
        result[0] = start + post_spawn_cycles
        return 0
    # Intermediate span — all L1 hits (fetch_intermediate_span).
    t_inter = t
    if inter_first >= 0:
        n = inter_last - inter_first + 1
        tick = l1_meta[0]
        for addr in range(inter_first, inter_last + 1):
            base = (addr % l1_sets) * l1_assoc
            for way in range(l1_assoc):
                if l1_tags[base + way] == addr:
                    l1_stamps[base + way] = tick
                    tick += 1
                    break
        l1_meta[0] = tick
        l1_meta[1] += n
        mem_stats[1] += n
        value = l1_window[0]
        total = l1_window[1]
        for _ in range(n):
            value += alpha * (l1_hit - value)
            total += l1_hit
        l1_window[0] = value
        l1_window[1] = total
        l1_window[2] += n
        finish = (t + (n - 1) // fetch_ports) + l1_hit
        t_inter = finish if finish > t else t
    # Graph spans — all L2 hits (fetch_graph_spans).
    t_graph = t
    if nspans > 0:
        nbanks = bank_free.shape[0]
        tick = l2_meta[0]
        hits = 0
        done = t
        i = 0
        for s in range(nspans):
            first = spans[2 * s]
            last = spans[2 * s + 1]
            if last == first:
                base = (first % l2_sets) * l2_assoc
                for way in range(l2_assoc):
                    if l2_tags[base + way] == first:
                        l2_stamps[base + way] = tick
                        tick += 1
                        break
                hits += 1
                issue = t + i // fetch_ports
                arrive = issue + hop
                bank = first % nbanks
                queued = bank_free[bank]
                start = queued if queued >= arrive else arrive
                bank_free[bank] = start + l2_service
                back = start + l2_hit + hop
                if back > done:
                    done = back
                i += 1
                continue
            n = last - first + 1
            for addr in range(first, last + 1):
                base = (addr % l2_sets) * l2_assoc
                for way in range(l2_assoc):
                    if l2_tags[base + way] == addr:
                        l2_stamps[base + way] = tick
                        tick += 1
                        break
            hits += n
            bank = first % nbanks
            head = nbanks if (stream_ok != 0 and n > nbanks) else n
            streaming = True
            for _ in range(head):
                issue = t + i // fetch_ports
                arrive = issue + hop
                queued = bank_free[bank]
                if queued >= arrive:
                    start = queued
                    if queued > arrive:
                        streaming = False
                else:
                    start = arrive
                bank_free[bank] = start + l2_service
                back = start + l2_hit + hop
                if back > done:
                    done = back
                i += 1
                bank += 1
                if bank == nbanks:
                    bank = 0
            rest = n - head
            if rest > 0:
                if streaming:
                    last_k = i + rest - 1
                    back = ((t + last_k // fetch_ports) + hop) + l2_hit + hop
                    if back > done:
                        done = back
                    lim = rest if rest < nbanks else nbanks
                    for _ in range(lim):
                        arrive = (t + last_k // fetch_ports) + hop
                        b = (first + (last_k - i) + head) % nbanks
                        bank_free[b] = arrive + l2_service
                        last_k -= 1
                    i += rest
                else:
                    for _ in range(rest):
                        issue = t + i // fetch_ports
                        arrive = issue + hop
                        queued = bank_free[bank]
                        start = queued if queued >= arrive else arrive
                        bank_free[bank] = start + l2_service
                        back = start + l2_hit + hop
                        if back > done:
                            done = back
                        i += 1
                        bank += 1
                        if bank == nbanks:
                            bank = 0
        l2_meta[0] = tick
        l2_meta[1] += hits
        mem_stats[0] += i
        t_graph = done
    # Issue booking + IU service (PE._book_body + IUPool.submit).
    ready = t_inter if t_inter >= t_graph else t_graph
    free = issue_free[0]
    start = ready if ready >= free else free
    issue_free[0] = start + unit_interval
    ready_time = start + 1.0
    if segments <= 0:
        t = ready_time
    else:
        formed = ready_time + segments / num_dividers
        k = iu_free.shape[0]
        c = segment_cycles
        if iu_acc[0] <= formed:
            q = segments // k
            r = segments - q * k
            if q == 0:
                # Replace the `segments` least-loaded servers with done:
                # done exceeds every entry, so iterated argmin-overwrite
                # touches exactly the `segments` smallest values.
                done = formed + c
                for _ in range(segments):
                    mi = 0
                    mv = iu_free[0]
                    for j in range(1, k):
                        if iu_free[j] < mv:
                            mv = iu_free[j]
                            mi = j
                    iu_free[mi] = done
                finish = done
            else:
                done = formed
                for _ in range(q):
                    done = done + c
                if r > 0:
                    finish = done + c
                    for j in range(k - r):
                        iu_free[j] = done
                    for j in range(k - r, k):
                        iu_free[j] = finish
                else:
                    finish = done
                    for j in range(k):
                        iu_free[j] = done
            iu_acc[0] = finish
        else:
            finish = formed
            for _ in range(segments):
                mi = 0
                mv = iu_free[0]
                for j in range(1, k):
                    if iu_free[j] < mv:
                        mv = iu_free[j]
                        mi = j
                fv = iu_free[mi]
                st = fv if fv >= formed else formed
                done = st + c
                iu_free[mi] = done
                if done > finish:
                    finish = done
            if finish > iu_acc[0]:
                iu_acc[0] = finish
        iu_acc[1] += segments * c
        iu_acc[2] += segments
        t = finish
    # Writeback — commit only when the output span is fully resident
    # (a pure LRU refresh: stamps in address order, no hits, no
    # evictions, Cache.insert_span's resident fast path).  Otherwise
    # return the post-IU time and let Python run the full writeback.
    if out_count > 0:
        resident = True
        for addr in range(out_first, out_last + 1):
            base = (addr % l1_sets) * l1_assoc
            hit = False
            for way in range(l1_assoc):
                if l1_tags[base + way] == addr:
                    hit = True
                    break
            if not hit:
                resident = False
                break
        if not resident:
            result[0] = t
            return 1
        tick = l1_meta[0]
        for addr in range(out_first, out_last + 1):
            base = (addr % l1_sets) * l1_assoc
            for way in range(l1_assoc):
                if l1_tags[base + way] == addr:
                    l1_stamps[base + way] = tick
                    tick += 1
                    break
        l1_meta[0] = tick
        wb = out_count / fetch_ports
        t += wb if wb > 1.0 else 1.0
    # Spawn booking (PE._book_tail).
    free = spawn_free[0]
    start = t if t >= free else free
    spawn_free[0] = start + unit_interval
    result[0] = start + post_spawn_cycles
    return 0


def ema_fold_loop(state, alpha, latency, n) -> None:
    """Fold ``n`` identical latencies into an EMA window.

    ``state`` is a 2-element float64 buffer: ``state[0]`` the moving
    average, ``state[1]`` the running latency total.  The loop body is
    the exact expression of ``PELatencyWindow.record`` — kept as a loop
    (not a closed form) so the float rounding matches the per-access
    folds bit for bit.
    """
    value = state[0]
    total = state[1]
    for _ in range(n):
        value += alpha * (latency - value)
        total += latency
    state[0] = value
    state[1] = total


def tree_select_loop(
    b_depth, b_cap, b_in_use, b_tree, b_quiesced, b_active, b_executing,
    ring, ring_head, ring_len, e_vertex, e_child_index, e_token,
    tok_free, tok_n, d_start, d_end, ctl, nb, cap, max_depth,
    tokens_per_depth, conservative, k, out_slots,
) -> int:
    """Schedule up to ``k`` Ready task-tree entries; returns the count.

    The loop body mirrors ``TaskTree._select_py`` + ``_schedule_from``
    statement for statement: sibling preference (the last-selected
    bunch), then round-robin over the bunch list — conservative mode
    restricts to the executing bunch while anything executes.  A bunch
    whose depth pool is drained is scanned for an entry that already
    holds a token (extended entries); a fruitless scan counts one token
    stall (``ctl[6]``) and moves on.  Scheduled slot ids land in
    ``out_slots``; the caller materializes the task objects.

    ``ctl`` word indices and the returned action codes are the module
    constants of :mod:`repro.core.task_tree` (inlined literals here so
    the body stays in the numba-compilable subset).
    """
    count = 0
    while count < k:
        if ctl[0] == 0:  # CTL_READY
            break
        picked = -1
        if conservative == 1 and ctl[1] > 0:  # CTL_EXECUTING
            attempts = 1
        else:
            attempts = nb + 1
        last = ctl[2]  # CTL_LAST_BUNCH
        start = ctl[4]  # CTL_RR_CURSOR
        for attempt in range(attempts):
            if attempts == 1:
                # Conservative: only the executing bunch, no fallback.
                b = ctl[3]  # CTL_EXEC_BUNCH
                if b < 0 or ring_len[b] == 0 or b_quiesced[b] != 0:
                    break
            elif attempt == 0:
                # Sibling preference: the last-selected bunch first.
                b = last
                if b < 0 or ring_len[b] == 0 or b_quiesced[b] != 0:
                    continue
            else:
                b = (start + attempt - 1) % nb
                if b == last or ring_len[b] == 0 or b_quiesced[b] != 0:
                    continue
                ctl[4] = (start + attempt) % nb
            # Schedule one Ready entry out of bunch ``b``.
            depth = b_depth[b]
            leaf = 1 if depth >= max_depth else 0
            base = b * cap
            head = ring_head[b]
            length = ring_len[b]
            slot = -1
            if leaf == 1 or tok_n[depth] > 0:
                slot = ring[base + head]
                ring_head[b] = (head + 1) % cap
                ring_len[b] = length - 1
            else:
                # Pool drained: any entry already holding a token is
                # still valid (ordered middle deletion from the ring).
                for j in range(length):
                    cand = ring[base + (head + j) % cap]
                    if e_token[cand] >= 0:
                        slot = cand
                        for m in range(j, length - 1):
                            ring[base + (head + m) % cap] = (
                                ring[base + (head + m + 1) % cap]
                            )
                        ring_len[b] = length - 1
                        break
                if slot < 0:
                    ctl[6] += 1  # CTL_STALLS
                    continue
            ctl[0] -= 1
            if leaf == 0 and e_token[slot] < 0:
                n_free = tok_n[depth] - 1
                tok_n[depth] = n_free
                e_token[slot] = tok_free[depth * tokens_per_depth + n_free]
            b_executing[b] += 1
            ctl[1] += 1
            ctl[3] = b
            ctl[2] = b
            ctl[5] += 1  # CTL_SCHEDULED
            picked = slot
            break
        if picked < 0:
            break
        out_slots[count] = picked
        count += 1
    return count


def tree_fill_loop(
    b_depth, b_cap, b_in_use, b_tree, b_quiesced, b_active, b_executing,
    ring, ring_head, ring_len, e_vertex, e_child_index, e_token,
    tok_free, tok_n, d_start, d_end, ctl, nb, cap, max_depth,
    tokens_per_depth, b, tree_id, quiesced, vertices, first, count,
) -> int:
    """Admit ``count`` candidates into idle bunch ``b`` as Ready rows.

    Mirror of the object path of ``TaskTree._fill_bunch``: one array row
    plus one ready-ring slot per admitted candidate, tokenless (tokens
    are acquired at selection).  Returns ``count``.
    """
    b_in_use[b] = 1
    b_tree[b] = tree_id
    b_quiesced[b] = quiesced
    base = b * cap
    for i in range(count):
        slot = base + i
        e_vertex[slot] = vertices[first + i]
        e_child_index[slot] = first + i
        e_token[slot] = -1
        ring[slot] = slot
    ring_head[b] = 0
    ring_len[b] = count
    ctl[0] += count  # CTL_READY
    b_active[b] = count
    return count


def tree_complete_loop(
    b_depth, b_cap, b_in_use, b_tree, b_quiesced, b_active, b_executing,
    ring, ring_head, ring_len, e_vertex, e_child_index, e_token,
    tok_free, tok_n, d_start, d_end, ctl, nb, cap, max_depth,
    tokens_per_depth, slot, b, has_children, children, first, navail,
    parent_unexplored, ext_vertex, ext_position, tree_quiesced, out,
) -> int:
    """Run one task-completion FSM transition; returns a DONE_* code.

    Mirror of ``TaskTree.on_complete``'s object path: spawn-or-wait when
    the task has children (``out`` receives the filled bunch and count),
    extend-or-idle otherwise.  The cold recycle edge (waiter refill,
    upward completion propagation) stays in Python — the kernel stops at
    ``DONE_RECYCLE`` with the bunch drained and the token released.
    """
    b_executing[b] -= 1
    ctl[1] -= 1  # CTL_EXECUTING
    if has_children == 1:
        child_depth = b_depth[b] + 1
        target = -1
        for bb in range(d_start[child_depth], d_end[child_depth]):
            if b_in_use[bb] == 0:
                target = bb
                break
        if target < 0:
            ctl[7] += 1  # CTL_WAITS
            return 1  # DONE_WAITING
        cnt = navail - first
        if cnt > b_cap[target]:
            cnt = b_cap[target]
        if cnt <= 0:
            return 5  # DONE_UNDERFLOW (spawn with nothing unexplored)
        b_in_use[target] = 1
        b_tree[target] = b_tree[b]
        b_quiesced[target] = tree_quiesced
        tbase = target * cap
        for i in range(cnt):
            tslot = tbase + i
            e_vertex[tslot] = children[first + i]
            e_child_index[tslot] = first + i
            e_token[tslot] = -1
            ring[tslot] = tslot
        ring_head[target] = 0
        ring_len[target] = cnt
        ctl[0] += cnt  # CTL_READY
        b_active[target] = cnt
        out[0] = target
        out[1] = cnt
        return 0  # DONE_SPAWNED
    if parent_unexplored > 0:
        # Extend: the entry (and its address token) explores the
        # parent's next unexplored candidate.
        e_vertex[slot] = ext_vertex
        e_child_index[slot] = ext_position
        ring[b * cap + (ring_head[b] + ring_len[b]) % cap] = slot
        ring_len[b] += 1
        ctl[0] += 1
        return 2  # DONE_EXTENDED
    tok = e_token[slot]
    if tok >= 0:
        depth = b_depth[b]
        n_free = tok_n[depth]
        tok_free[depth * tokens_per_depth + n_free] = tok
        tok_n[depth] = n_free + 1
        e_token[slot] = -1
    b_active[b] -= 1
    if b_active[b] < 0:
        return 5  # DONE_UNDERFLOW
    if b_active[b] == 0:
        return 4  # DONE_RECYCLE
    return 3  # DONE_IDLED
