"""Loop-form kernel bodies shared by the numba backend and its tests.

Each function here is the scalar-loop formulation of one backend kernel,
written in the numba-compilable subset of Python (no dicts, no numpy
fancy indexing, plain ``while``/``for`` over ``int64`` buffers).  The
numba backend wraps them in ``njit``; the parity tests run the very same
functions *interpreted*, so the kernel logic is covered locally even
when numba is not installed.

Floating-point kernels (:func:`ema_fold_loop`) use exactly the same
double-precision expressions, in the same order, as the pure backend's
Python loops — IEEE-754 doubles make the results bit-identical, which is
what keeps golden metrics byte-identical across backends.  The C
extension backend mirrors these bodies statement for statement (and is
compiled with ``-ffp-contract=off`` so no fused multiply-adds sneak in).
"""

from __future__ import annotations


def intersect_loop(a, b, out) -> int:
    """Intersection of sorted unique ``a`` into ``out``; returns the count.

    ``a`` is the smaller operand (caller swaps).  Two regimes, picked by
    the size ratio exactly like the C kernel: a galloping binary-search
    sweep when ``b`` dwarfs ``a`` (the searchsorted regime the numpy
    backend always uses), otherwise the classic two-pointer merge.
    """
    na = a.shape[0]
    nb = b.shape[0]
    k = 0
    if na * 32 < nb:
        lo = 0
        for i in range(na):
            v = a[i]
            left = lo
            right = nb
            while left < right:
                mid = (left + right) >> 1
                if b[mid] < v:
                    left = mid + 1
                else:
                    right = mid
            lo = left
            if left < nb and b[left] == v:
                out[k] = v
                k += 1
    else:
        i = 0
        j = 0
        while i < na and j < nb:
            x = a[i]
            y = b[j]
            if x == y:
                out[k] = x
                k += 1
                i += 1
                j += 1
            elif x < y:
                i += 1
            else:
                j += 1
    return k


def subtract_loop(a, b, out) -> int:
    """Elements of sorted unique ``a`` not in ``b``; returns the count."""
    na = a.shape[0]
    nb = b.shape[0]
    k = 0
    if nb > na * 32:
        lo = 0
        for i in range(na):
            v = a[i]
            left = lo
            right = nb
            while left < right:
                mid = (left + right) >> 1
                if b[mid] < v:
                    left = mid + 1
                else:
                    right = mid
            lo = left
            if left >= nb or b[left] != v:
                out[k] = v
                k += 1
    else:
        j = 0
        for i in range(na):
            v = a[i]
            while j < nb and b[j] < v:
                j += 1
            if j >= nb or b[j] != v:
                out[k] = v
                k += 1
    return k


def resident_stamp_loop(tags, stamps, num_sets, assoc, first_line, last_line, tick) -> bool:
    """All-resident probe + LRU stamp of a line span (flat cache arrays).

    Pass 1 verifies every line of ``[first_line, last_line]`` is resident
    (no state change on failure); pass 2 stamps the hit ways in address
    order with consecutive ticks — exactly the state a sequential
    ``Cache.lookup`` sweep would leave.  Returns whether the span was
    fully resident; the caller advances ``cache._tick`` by the span
    length on success.
    """
    for addr in range(first_line, last_line + 1):
        base = (addr % num_sets) * assoc
        hit = False
        for way in range(assoc):
            if tags[base + way] == addr:
                hit = True
                break
        if not hit:
            return False
    for addr in range(first_line, last_line + 1):
        base = (addr % num_sets) * assoc
        for way in range(assoc):
            if tags[base + way] == addr:
                stamps[base + way] = tick
                tick += 1
                break
    return True


def ema_fold_loop(state, alpha, latency, n) -> None:
    """Fold ``n`` identical latencies into an EMA window.

    ``state`` is a 2-element float64 buffer: ``state[0]`` the moving
    average, ``state[1]`` the running latency total.  The loop body is
    the exact expression of ``PELatencyWindow.record`` — kept as a loop
    (not a closed form) so the float rounding matches the per-access
    folds bit for bit.
    """
    value = state[0]
    total = state[1]
    for _ in range(n):
        value += alpha * (latency - value)
        total += latency
    state[0] = value
    state[1] = total
