"""Shared glue for compiled kernel backends (numba and the C extension).

Both compiled backends expose the same low-level surface — loop kernels
taking flat ``int64``/``float64`` numpy buffers (``intersect_loop``,
``subtract_loop``, ``resident_stamp_loop``, ``ema_fold_loop``, the
signatures of :mod:`._loops`) — so the object-level adaptation lives
here once: operand normalization, output allocation, and the
``Cache``/``PELatencyWindow`` state handshakes.

The adapters preserve the pure backend's exact observable behavior:
identical result arrays (sorted unique ``int64``; the shared ``EMPTY``
singleton for empty results), identical cache state (stamps in address
order, consecutive ticks), and bit-identical floats (the loop bodies use
the same double expressions in the same order — see :mod:`._loops`).
"""

from __future__ import annotations

import numpy as np

from ...mining.setops import EMPTY

_INT64 = np.dtype(np.int64)


class BackendUnavailable(RuntimeError):
    """Raised when a backend's dependency or toolchain is missing."""


def _norm(arr: np.ndarray) -> np.ndarray:
    """C-contiguous ``int64`` view/copy of ``arr`` (no-op on the hot path)."""
    if arr.dtype is _INT64 and arr.flags.c_contiguous:
        return arr
    return np.ascontiguousarray(arr, dtype=np.int64)


class KernelSet:
    """One selectable backend: named kernel callables as instance attrs.

    Attributes are plain functions (not methods), so the profiler's
    instrumentation can swap timed wrappers in and out per instance and
    ``setops`` can bind them directly as its implementation globals.
    """

    def __init__(self, name, compiled, intersect, subtract, intersect_multi,
                 span_resident_stamp, ema_fold,
                 task_fastpath=None, macro_bind=None,
                 tree_select=None, tree_fill=None, tree_complete=None,
                 tree_bind=None):
        self.name = name
        self.compiled = compiled
        self.intersect = intersect
        self.subtract = subtract
        self.intersect_multi = intersect_multi
        self.span_resident_stamp = span_resident_stamp
        self.ema_fold = ema_fold
        #: Macro-step fast-path loop with the :func:`._loops
        #: .task_fastpath_loop` signature (interpreted for pure, jitted
        #: for numba); ``None`` when the backend binds at a lower level.
        self.task_fastpath = task_fastpath
        #: Backend-native per-PE binder ``(accel, spans, result) ->
        #: [book, ...]`` (the C extension pre-marshals pointers into
        #: per-PE structs); ``None`` to bind ``task_fastpath`` through
        #: the generic numpy-view binder in :mod:`.macro`.
        self.macro_bind = macro_bind
        #: Task-tree scheduler kernels with the ``tree_*_loop``
        #: signatures of :mod:`._loops` (``TaskTree._bind_kernels``
        #: closes them over one tree's struct-of-arrays state).
        self.tree_select = tree_select
        self.tree_fill = tree_fill
        self.tree_complete = tree_complete
        #: Backend-native tree binder ``(state) -> ops`` returning an
        #: object with ``select``/``fill``/``complete`` (the C extension
        #: pre-marshals the tree's array pointers into one struct);
        #: ``None`` to close the loop kernels over numpy views.
        self.tree_bind = tree_bind

    #: Kernel attributes eligible for per-kernel instrumentation.
    KERNELS = (
        "intersect",
        "subtract",
        "intersect_multi",
        "span_resident_stamp",
        "ema_fold",
    )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"KernelSet({self.name!r}, compiled={self.compiled})"


def make_kernel_set(name: str, lib) -> KernelSet:
    """Build a :class:`KernelSet` over array-level loop kernels ``lib``."""

    lib_intersect = lib.intersect_loop
    lib_subtract = lib.subtract_loop
    lib_multi = lib.intersect_multi_loop
    lib_resident = lib.resident_stamp_loop
    lib_ema = lib.ema_fold_loop
    lib_ema_window = getattr(lib, "ema_fold_window", None)
    empty = np.empty

    # Reusable result buffers: the loop kernels write into these and the
    # adapters copy the live prefix out, so per-call output allocation —
    # and, for the C backend, per-call marshalling of the output pointer
    # (the adapter caches pointers by object identity) — stays off the
    # hot path.  Kernel calls never reenter Python, so reuse is safe in
    # the single-threaded simulator.  A result can be at most as long as
    # the smallest operand, so sizing to that operand always suffices.
    buffers = {
        "out": empty(256, dtype=np.int64),
        "scratch": empty(256, dtype=np.int64),
    }

    def _out_buffer(n):
        out = buffers["out"]
        if n > out.shape[0]:
            size = max(n, out.shape[0] * 2)
            out = buffers["out"] = empty(size, dtype=np.int64)
            buffers["scratch"] = empty(size, dtype=np.int64)
        return out

    def intersect(a, b):
        if len(a) > len(b):
            a, b = b, a
        a = _norm(a)
        b = _norm(b)
        out = _out_buffer(a.shape[0])
        k = lib_intersect(a, b, out)
        if k == 0:
            return EMPTY
        return out[:k].copy()

    def subtract(a, b):
        a = _norm(a)
        b = _norm(b)
        out = _out_buffer(a.shape[0])
        k = lib_subtract(a, b, out)
        if k == 0:
            return EMPTY
        return out[:k].copy()

    def intersect_multi(arrays):
        operands = [_norm(a) for a in arrays]
        out = _out_buffer(operands[0].shape[0])
        k = lib_multi(operands, out, buffers["scratch"])
        if k == 0:
            return EMPTY
        return out[:k].copy()

    def span_resident_stamp(cache, first_line, last_line):
        if lib_resident(
            cache._tags,
            cache._stamps,
            cache.num_sets,
            cache.assoc,
            first_line,
            last_line,
            cache._tick,
        ):
            cache._tick += last_line - first_line + 1
            return True
        return False

    def ema_fold(window, latency, n, scratch=None):
        if n >= 8 and lib_ema_window is not None:
            # Adapter-owned state handshake (persistent C-side buffer).
            lib_ema_window(window, latency, n)
        elif n >= 8 and scratch is not None:
            scratch[0] = window.value
            scratch[1] = window.total_latency
            lib_ema(scratch, window.alpha, latency, n)
            window.value = float(scratch[0])
            window.total_latency = float(scratch[1])
        else:
            # Tiny folds: the call/handshake overhead outweighs the loop.
            alpha = window.alpha
            value = window.value
            total = window.total_latency
            for _ in range(n):
                value += alpha * (latency - value)
                total += latency
            window.value = value
            window.total_latency = total
        window.samples += n

    return KernelSet(
        name, True, intersect, subtract, intersect_multi,
        span_resident_stamp, ema_fold,
        task_fastpath=getattr(lib, "task_fastpath_loop", None),
        macro_bind=getattr(lib, "macro_bind", None),
        tree_select=getattr(lib, "tree_select_loop", None),
        tree_fill=getattr(lib, "tree_fill_loop", None),
        tree_complete=getattr(lib, "tree_complete_loop", None),
        tree_bind=getattr(lib, "tree_bind", None),
    )
