"""Macro-step engine core: whole-task booking in one compiled call.

The per-event path books a task stage by stage through Python
(``PE._book_task``: decode → dispatch → vertex fetch → span fetches →
issue → IU service → writeback → spawn).  The macro-step core collapses
all of it into **one** call into the active backend's fast-path loop
(:func:`._loops.task_fastpath_loop`, its numba jit, or the C mirror in
:mod:`.cext`), so the simulator returns to Python once per task instead
of once per stage.

Escape protocol
---------------
The fast path is *probe-then-commit*: phase 1 verifies every
precondition with side-effect-free tag scans, and any failure returns a
typed escape **having mutated nothing**, so the Python slow path replays
the task through the exact per-event code.  Escapes, from outermost to
innermost:

``instrumented``
    A ``TraceRecorder`` / ``InvariantChecker`` wrapper is installed on
    the PE (instance-attribute ``_start_task`` / ``_complete_task``):
    the whole task books per-event so hooks observe every stage.
``injected``
    The test-only :attr:`MacroCore.fault_hook` forced an escape (the
    resume-correctness property test drives random escape points).
``multi_round``
    The working set exceeds the SPM share — the fetch/compute stages
    loop in Python (``PE._book_body`` multi-round branch).
``spans_overflow``
    More graph spans than the flattened marshalling buffer holds.
``vertex_miss`` / ``inter_miss`` / ``graph_miss``
    A cache probe failed (L1 vertex line, L1 intermediate span, L2
    graph span): the fetch needs DRAM/NoC modeling, which stays in
    Python.  Nothing was committed; the fallback reuses the already
    derived expansion (``PE._derive`` ran exactly once — re-running it
    would double-count ``context.expansions``).

Two success shapes come back from the loop: ``0`` (complete — the core
booked through spawn; Python posts the completion event) and ``1``
(partial — the output span was not fully L1-resident, so the core
committed decode through IU service and Python finishes with
``PE._book_tail``: writeback installs, spills and spawn).

Every accounted metric is bit-identical to the per-event path by
construction: the loop mirrors the Python float expressions statement
for statement, and the parity suite (``tests/test_macro_step.py``) plus
the golden registry enforce it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

#: Flattened ``(first, last)`` graph-span marshalling capacity.
SPANS_CAPACITY = 128

#: Escape/outcome counter keys, in reporting order.
COUNTER_KEYS = (
    "fast",
    "partial",
    "vertex_miss",
    "inter_miss",
    "graph_miss",
    "multi_round",
    "spans_overflow",
    "instrumented",
    "injected",
)

#: Escape-status → counter key for the negative loop returns.
_MISS_KEYS = {-3: "vertex_miss", -4: "inter_miss", -5: "graph_miss"}


class MacroCore:
    """Per-accelerator macro-step state: bindings, buffers, counters."""

    __slots__ = (
        "accel", "books", "counters", "fault_hook", "spans", "result",
        "max_depth", "spm_share", "line_bytes", "max_spans",
    )

    def __init__(self, accel, books: List[Callable]) -> None:
        self.accel = accel
        self.books = books
        self.counters: Dict[str, int] = {k: 0 for k in COUNTER_KEYS}
        #: Test-only escape injector: ``callable(pe, task) -> bool``;
        #: True forces this task down the per-event path (counted as
        #: ``injected``).  The resume property test uses it to prove
        #: random escape points never drop or reorder work.
        self.fault_hook = None
        self.spans = np.zeros(SPANS_CAPACITY, dtype=np.int64)
        self.result = np.zeros(2, dtype=np.float64)
        # Uniform across PEs (one config, one schedule); hoisted here so
        # the per-task hot path reads them off this core's slots instead
        # of chasing pe attributes.
        pe0 = accel.pes[0]
        self.max_depth = pe0._max_depth
        self.spm_share = pe0.spm_share
        self.line_bytes = pe0._line_bytes
        self.max_spans = SPANS_CAPACITY // 2

    # ------------------------------------------------------------------
    def start(self, pe, task, now: float) -> None:
        """Book ``task`` on ``pe`` — fast path when possible, else the
        exact per-event slow path (see the module docs for the escape
        taxonomy)."""
        counters = self.counters
        # Instrumentation wrappers live in the instance __dict__ (the
        # class attributes are the clean methods), so their presence is
        # exactly the "hooks want per-stage visibility" signal.
        instance = pe.__dict__
        if "_start_task" in instance or "_complete_task" in instance:
            counters["instrumented"] += 1
            pe._book_task(task, now)
            return
        hook = self.fault_hook
        if hook is not None and hook(pe, task):
            counters["injected"] += 1
            pe._book_task(task, now)
            return

        parent = task.parent
        if parent is not None and parent.set_address is not None:
            vertex_line = (
                parent.set_address + task.child_index * 4
            ) // self.line_bytes
        else:
            vertex_line = -1
        book = self.books[pe._row]
        result = self.result

        if task.depth >= self.max_depth:
            # Leaf: no derivation, no spans, no output set.
            status = book(now, 1, vertex_line, -1, -1, -1, -1, 0, 0, 0)
            if status == 0:
                counters["fast"] += 1
                pe.engine.post(float(result[0]), pe, task)
            else:
                counters["vertex_miss"] += 1
                pe._book_leaf(task, pe._book_front(task, now))
            return

        derived = pe._derive(task)
        (
            inter_span, graph_spans,
            out_first, out_last, out_count, segments, total_lines,
        ) = derived
        nspans = len(graph_spans)
        if total_lines > self.spm_share or nspans > self.max_spans:
            key = (
                "multi_round" if total_lines > self.spm_share
                else "spans_overflow"
            )
            counters[key] += 1
            pe._book_body(task, pe._book_front(task, now), *derived)
            return
        spans = self.spans
        idx = 0
        for first, last in graph_spans:
            spans[idx] = first
            spans[idx + 1] = last
            idx += 2
        if inter_span is not None:
            inter_first, inter_last = inter_span
        else:
            inter_first = inter_last = -1

        status = book(
            now, 0, vertex_line, inter_first, inter_last,
            out_first, out_last, out_count, segments, nspans,
        )
        if status == 0:
            counters["fast"] += 1
            pe.engine.post(float(result[0]), pe, task)
        elif status == 1:
            counters["partial"] += 1
            pe._book_tail(task, float(result[0]), out_first, out_last, out_count)
        else:
            counters[_MISS_KEYS[status]] += 1
            pe._book_body(task, pe._book_front(task, now), *derived)

    # ------------------------------------------------------------------
    def coverage(self) -> Dict[str, object]:
        """Fast-path coverage: counts, totals and the drained fraction."""
        counters = dict(self.counters)
        total = sum(counters.values())
        drained = counters["fast"] + counters["partial"]
        return {
            "tasks": total,
            "drained": drained,
            "drained_fraction": (drained / total) if total else 0.0,
            "counters": counters,
        }


# ----------------------------------------------------------------------
def _bind_loop(accel, spans, result, loop) -> List[Callable]:
    """Generic per-PE binder over numpy views for a python-level loop.

    Builds one closure per PE with every array view and config scalar
    pre-bound, so a fast-path call marshals only the 10 per-task
    scalars.  Used for the interpreted reference loop (pure backend)
    and the numba jit; the C extension binds at a lower level
    (:func:`.cext._CLib.macro_bind`).
    """
    memory = accel.memory
    config = accel.config
    state = accel.pe_state
    l2 = memory.l2
    books: List[Callable] = []
    for pe in accel.pes:
        row = pe._row
        l1 = memory.l1s[pe.pe_id]
        window = memory.l1_windows[pe.pe_id]

        def book(
            now, is_leaf, vertex_line, inter_first, inter_last,
            out_first, out_last, out_count, segments, nspans,
            # pre-bound per-PE state and config scalars:
            _loop=loop,
            _spans=spans,
            _result=result,
            _decode=state.decode_free[row:row + 1],
            _dispatch=state.dispatch_free[row:row + 1],
            _issue=state.issue_free[row:row + 1],
            _spawn=state.spawn_free[row:row + 1],
            _l1_tags=l1._tags,
            _l1_stamps=l1._stamps,
            _l1_meta=l1._meta,
            _l1_sets=l1.num_sets,
            _l1_assoc=l1.assoc,
            _l1_window=window._state,
            _l2_tags=l2._tags,
            _l2_stamps=l2._stamps,
            _l2_meta=l2._meta,
            _l2_sets=l2.num_sets,
            _l2_assoc=l2.assoc,
            _bank_free=memory._l2_bank_free,
            _mem_stats=memory._stats,
            _iu_free=pe.iu_pool._server_free,
            _iu_acc=pe.iu_pool._acc,
            _unit_interval=pe._unit_interval,
            _decode_cycles=float(config.decode_cycles),
            _dispatch_cycles=float(config.dispatch_cycles),
            _post_spawn=float(pe._post_spawn_cycles),
            _leaf_cycles=float(config.leaf_cycles),
            _l1_hit=memory._l1_hit_cycles_f,
            _l2_hit=float(config.l2_hit_cycles),
            _l2_service=float(config.l2_service_cycles),
            _hop=float(memory._hop_cycles),
            _alpha=window.alpha,
            _segment_cycles=float(config.segment_cycles),
            _num_dividers=float(config.num_dividers),
            _fetch_ports=int(config.fetch_ports),
            _stream_ok=1 if memory._l2_stream_ok else 0,
        ):
            return _loop(
                now, is_leaf, vertex_line, inter_first, inter_last,
                out_first, out_last, out_count, segments, _spans, nspans,
                _result,
                _decode, _dispatch, _issue, _spawn,
                _l1_tags, _l1_stamps, _l1_meta, _l1_sets, _l1_assoc,
                _l1_window,
                _l2_tags, _l2_stamps, _l2_meta, _l2_sets, _l2_assoc,
                _bank_free, _mem_stats, _iu_free, _iu_acc,
                _unit_interval, _decode_cycles, _dispatch_cycles,
                _post_spawn, _leaf_cycles, _l1_hit, _l2_hit, _l2_service,
                _hop, _alpha, _segment_cycles, _num_dividers,
                _fetch_ports, _stream_ok,
            )

        books.append(book)
    return books


def build_macro(accel) -> Optional[MacroCore]:
    """Bind the macro-step core to ``accel`` (or ``None`` when off).

    Resolution of ``config.macro_step``: ``False`` pins the per-event
    path; ``None`` (auto) enables the core exactly when the active
    kernel backend is compiled (the interpreted loop is slower than
    per-event booking, so auto never picks it); ``True`` forces it even
    under pure — the parity suite uses that to differential-test the
    reference loop.  On success every PE's ``_macro`` is pointed at the
    returned core.
    """
    setting = getattr(accel.config, "macro_step", None)
    if setting is False:
        return None
    kernels = accel.memory._kernels
    if setting is None and not kernels.compiled:
        return None
    spans = np.zeros(SPANS_CAPACITY, dtype=np.int64)
    result = np.zeros(2, dtype=np.float64)
    binder = kernels.macro_bind
    if binder is not None:
        books = binder(accel, spans, result)
    elif kernels.task_fastpath is not None:
        books = _bind_loop(accel, spans, result, kernels.task_fastpath)
    else:  # pragma: no cover - every shipped backend has one of the two
        return None
    core = MacroCore(accel, books)
    core.spans = spans
    core.result = result
    for pe in accel.pes:
        pe._macro = core
    return core
