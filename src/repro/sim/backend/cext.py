"""C-extension kernel backend (cffi, no setuptools).

The kernels are mirror images of :mod:`._loops`, written in C below and
compiled on demand with the system C compiler into a shared object
cached under ``$REPRO_KERNEL_CACHE`` (default ``~/.cache/repro/kernels``)
keyed by a hash of the source and compiler, so every process after the
first just loads the cached ``.so``.  Neither path needs
setuptools/distutils — the compiler is driven directly:

* **API mode** (preferred) — cffi emits the CPython extension source
  (``emit_c_code``), which is compiled against the interpreter's
  headers.  Calls through an API-mode ``lib`` are native extension
  calls, several times cheaper than ABI-mode's ``libffi`` trampolines —
  and on these microsecond kernels the call overhead *is* the price of
  admission.  Requires ``Python.h``; the cache key includes the
  interpreter version because the module links against its C API.
* **ABI mode** (fallback) — the plain C source is compiled standalone
  and ``dlopen``\\ ed: declare, open, call.  Works without Python
  headers; calls are slower.

Two flags matter for metric byte-identity:

* ``-ffp-contract=off`` — gcc at ``-O2`` may otherwise fuse the EMA's
  multiply-add into an FMA, which rounds once instead of twice and
  drifts from the Python loop's doubles.
* no ``-ffast-math`` — IEEE semantics throughout.

Anything missing (cffi, a C compiler, a writable cache dir, a failed
compile) raises :class:`BackendUnavailable`; the registry falls back to
the next backend and the simulator keeps running pure.
"""

from __future__ import annotations

import hashlib
import importlib.machinery
import importlib.util
import os
import shutil
import subprocess
import sys
import sysconfig
import tempfile
from pathlib import Path

from .compiled import BackendUnavailable, make_kernel_set

C_SOURCE = r"""
#include <stdint.h>

int64_t repro_intersect(const int64_t *a, int64_t na,
                        const int64_t *b, int64_t nb, int64_t *out)
{
    int64_t k = 0;
    if (na * 32 < nb) {
        int64_t lo = 0;
        for (int64_t i = 0; i < na; i++) {
            int64_t v = a[i];
            int64_t left = lo, right = nb;
            while (left < right) {
                int64_t mid = (left + right) >> 1;
                if (b[mid] < v) left = mid + 1; else right = mid;
            }
            lo = left;
            if (left < nb && b[left] == v) out[k++] = v;
        }
    } else {
        int64_t i = 0, j = 0;
        while (i < na && j < nb) {
            int64_t x = a[i], y = b[j];
            if (x == y) { out[k++] = x; i++; j++; }
            else if (x < y) i++;
            else j++;
        }
    }
    return k;
}

int64_t repro_subtract(const int64_t *a, int64_t na,
                       const int64_t *b, int64_t nb, int64_t *out)
{
    int64_t k = 0;
    if (nb > na * 32) {
        int64_t lo = 0;
        for (int64_t i = 0; i < na; i++) {
            int64_t v = a[i];
            int64_t left = lo, right = nb;
            while (left < right) {
                int64_t mid = (left + right) >> 1;
                if (b[mid] < v) left = mid + 1; else right = mid;
            }
            lo = left;
            if (left >= nb || b[left] != v) out[k++] = v;
        }
    } else {
        int64_t j = 0;
        for (int64_t i = 0; i < na; i++) {
            int64_t v = a[i];
            while (j < nb && b[j] < v) j++;
            if (j >= nb || b[j] != v) out[k++] = v;
        }
    }
    return k;
}

int repro_resident_stamp(const int64_t *tags, int64_t *stamps,
                         int64_t num_sets, int64_t assoc,
                         int64_t first_line, int64_t last_line, int64_t tick)
{
    for (int64_t addr = first_line; addr <= last_line; addr++) {
        const int64_t *ways = tags + (addr % num_sets) * assoc;
        int hit = 0;
        for (int64_t w = 0; w < assoc; w++) {
            if (ways[w] == addr) { hit = 1; break; }
        }
        if (!hit) return 0;
    }
    for (int64_t addr = first_line; addr <= last_line; addr++) {
        int64_t base = (addr % num_sets) * assoc;
        for (int64_t w = 0; w < assoc; w++) {
            if (tags[base + w] == addr) { stamps[base + w] = tick++; break; }
        }
    }
    return 1;
}

void repro_ema_fold(double *state, double alpha, double latency, int64_t n)
{
    double value = state[0];
    double total = state[1];
    for (int64_t i = 0; i < n; i++) {
        value += alpha * (latency - value);
        total += latency;
    }
    state[0] = value;
    state[1] = total;
}

"""

CDEF = """
int64_t repro_intersect(const int64_t *a, int64_t na,
                        const int64_t *b, int64_t nb, int64_t *out);
int64_t repro_subtract(const int64_t *a, int64_t na,
                       const int64_t *b, int64_t nb, int64_t *out);
int repro_resident_stamp(const int64_t *tags, int64_t *stamps,
                         int64_t num_sets, int64_t assoc,
                         int64_t first_line, int64_t last_line, int64_t tick);
void repro_ema_fold(double *state, double alpha, double latency, int64_t n);
"""

CFLAGS = ["-O2", "-fPIC", "-shared", "-ffp-contract=off"]


def _cache_dir() -> Path:
    env = os.environ.get("REPRO_KERNEL_CACHE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "kernels"


def _find_cc() -> str:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    raise BackendUnavailable("no C compiler found (tried $CC, cc, gcc, clang)")


def _compile(cc, args, tmp_so, so_path):
    """Run one compiler invocation and atomically publish the result."""
    proc = subprocess.run(
        [cc, *args], capture_output=True, text=True, timeout=120
    )
    if proc.returncode != 0:
        raise BackendUnavailable(
            f"kernel compile failed ({cc}): {proc.stderr.strip()[:500]}"
        )
    # Atomic publish: concurrent builders race to an identical file.
    os.replace(tmp_so, so_path)


def build_library(verbose: bool = False) -> Path:
    """Compile (or reuse) the ABI-mode shared object; returns its path."""
    cc = _find_cc()
    key = hashlib.sha256(
        ("\n".join([cc, *CFLAGS, C_SOURCE, CDEF])).encode()
    ).hexdigest()[:16]
    cache = _cache_dir()
    so_path = cache / f"repro_kernels_{key}.so"
    if so_path.exists():
        return so_path
    try:
        cache.mkdir(parents=True, exist_ok=True)
        with tempfile.TemporaryDirectory(dir=cache) as tmp:
            src = Path(tmp) / "kernels.c"
            src.write_text(C_SOURCE)
            tmp_so = Path(tmp) / "kernels.so"
            _compile(cc, [*CFLAGS, "-o", str(tmp_so), str(src)], tmp_so, so_path)
    except OSError as exc:
        raise BackendUnavailable(f"kernel build failed: {exc}") from exc
    if verbose:  # pragma: no cover - debug aid
        print(f"built kernel library: {so_path}")
    return so_path


def _python_include() -> str:
    """The running interpreter's C header directory (must hold Python.h)."""
    include = sysconfig.get_paths()["include"]
    if not os.path.exists(os.path.join(include, "Python.h")):
        raise BackendUnavailable(f"Python.h not found under {include}")
    return include


def build_api_module(verbose: bool = False):
    """Compile (or reuse) the API-mode extension; returns (name, path).

    The module name embeds the cache key, so distinct kernel versions
    never collide in ``sys.modules`` and a stale cached ``.so`` is
    simply never looked up again.
    """
    cc = _find_cc()
    tag = (
        f"{sys.implementation.name}-"
        f"{sys.version_info.major}.{sys.version_info.minor}"
    )
    key = hashlib.sha256(
        ("\n".join([cc, tag, *CFLAGS, C_SOURCE, CDEF])).encode()
    ).hexdigest()[:16]
    name = f"_repro_kernels_{key}"
    cache = _cache_dir()
    so_path = cache / f"{name}.so"
    if so_path.exists():
        return name, so_path
    include = _python_include()
    try:
        from cffi import FFI
    except ImportError as exc:
        raise BackendUnavailable(f"cffi is not installed: {exc}") from exc
    try:
        cache.mkdir(parents=True, exist_ok=True)
        with tempfile.TemporaryDirectory(dir=cache) as tmp:
            builder = FFI()
            builder.cdef(CDEF)
            builder.set_source(name, C_SOURCE)
            src = Path(tmp) / f"{name}.c"
            # cffi prints a "generating ..." notice; keep the build quiet.
            import contextlib
            import io

            with contextlib.redirect_stdout(io.StringIO()):
                builder.emit_c_code(str(src))
            tmp_so = Path(tmp) / f"{name}.so"
            _compile(
                cc,
                [*CFLAGS, f"-I{include}", "-o", str(tmp_so), str(src)],
                tmp_so,
                so_path,
            )
    except OSError as exc:
        raise BackendUnavailable(f"kernel build failed: {exc}") from exc
    if verbose:  # pragma: no cover - debug aid
        print(f"built kernel extension: {so_path}")
    return name, so_path


def _load_api_module(name: str, so_path: Path):
    """Import the API-mode extension; returns its (ffi, lib) pair."""
    loader = importlib.machinery.ExtensionFileLoader(name, str(so_path))
    spec = importlib.util.spec_from_file_location(
        name, str(so_path), loader=loader
    )
    module = importlib.util.module_from_spec(spec)
    try:
        loader.exec_module(module)
    except ImportError as exc:
        raise BackendUnavailable(f"kernel extension failed to load: {exc}") from exc
    return module.ffi, module.lib


class _CLib:
    """Array-level adapter over the dlopened C library.

    Presents the :mod:`._loops` signatures (numpy arrays in, counts
    out) so the shared glue in :mod:`.compiled` works unchanged.  The
    arrays are already C-contiguous ``int64``/``float64`` — the glue
    normalizes operands — so ``from_buffer`` is a zero-copy cast.

    The adapter exists to make each call as thin as possible: a kernel
    invocation here costs about as much as the C loop it wraps, so
    every hundred nanoseconds of marshalling shows up in the speedup.

    * **Pointer cache** — long-lived state arrays (cache tag/stamp
      arrays, the glue's reusable output buffers) are marshalled once
      and the resulting cdata cached by object identity.  This is safe
      because ``from_buffer`` pins the underlying array: a cached id
      can never be reused by a different array while its entry lives.
      Ephemeral operands (neighbor sets) are never cached — pinning
      them would leak.
    * **Persistent EMA state** — :meth:`ema_fold_window` folds through
      a preallocated 2-double cdata buffer, skipping the numpy scratch
      handshake entirely (cdata scalar access is cheaper than numpy
      item access, and doubles round-trip bit-exactly).
    """

    #: Pointer-cache capacity; eviction just clears (entries rebuild on
    #: the next call), bounding how many retired buffers stay pinned.
    _PTR_CACHE_MAX = 64

    def __init__(self) -> None:
        try:
            name, so_path = build_api_module()
            ffi, lib = _load_api_module(name, so_path)
            self.mode = "api"
        except BackendUnavailable:
            # No Python headers (or the extension build failed): fall
            # back to the standalone shared object through libffi.
            try:
                from cffi import FFI
            except ImportError as exc:
                raise BackendUnavailable(
                    f"cffi is not installed: {exc}"
                ) from exc
            so_path = build_library()
            ffi = FFI()
            ffi.cdef(CDEF)
            lib = ffi.dlopen(str(so_path))
            self.mode = "abi"
        self._ffi = ffi
        self._lib = lib
        self._i64 = ffi.typeof("int64_t *")
        self._ema_state = ffi.new("double[2]")
        self._ptr_cache = {}
        self.path = so_path

    def _pinned(self, arr, writable):
        """Cached ``int64_t *`` for a long-lived array (pins ``arr``)."""
        cache = self._ptr_cache
        ptr = cache.get(id(arr))
        if ptr is None:
            if len(cache) >= self._PTR_CACHE_MAX:
                cache.clear()
            ptr = self._ffi.from_buffer(
                self._i64, arr, require_writable=writable
            )
            cache[id(arr)] = ptr
        return ptr

    def intersect_loop(self, a, b, out):
        from_buffer = self._ffi.from_buffer
        i64 = self._i64
        return self._lib.repro_intersect(
            from_buffer(i64, a),
            len(a),
            from_buffer(i64, b),
            len(b),
            self._pinned(out, True),
        )

    def subtract_loop(self, a, b, out):
        from_buffer = self._ffi.from_buffer
        i64 = self._i64
        return self._lib.repro_subtract(
            from_buffer(i64, a),
            len(a),
            from_buffer(i64, b),
            len(b),
            self._pinned(out, True),
        )

    def intersect_multi_loop(self, arrays, out, scratch):
        """Chained intersections entirely in cdata: the survivor ping-
        pongs between the pinned out/scratch pointers, so no numpy view
        is materialized between pairs.  The starting buffer is chosen so
        the final survivor always lands in ``out`` (an odd number of
        pairwise steps ends where it starts)."""
        from_buffer = self._ffi.from_buffer
        i64 = self._i64
        c_intersect = self._lib.repro_intersect
        pout = self._pinned(out, True)
        pscr = self._pinned(scratch, True)
        cur = from_buffer(i64, arrays[0])
        ncur = len(arrays[0])
        dst, alt = (pout, pscr) if len(arrays) % 2 == 0 else (pscr, pout)
        for arr in arrays[1:]:
            ncur = c_intersect(cur, ncur, from_buffer(i64, arr), len(arr), dst)
            if ncur == 0:
                return 0
            cur = dst
            dst, alt = alt, dst
        return ncur

    def resident_stamp_loop(self, tags, stamps, num_sets, assoc, first_line, last_line, tick):
        return bool(
            self._lib.repro_resident_stamp(
                self._pinned(tags, False),
                self._pinned(stamps, True),
                num_sets,
                assoc,
                first_line,
                last_line,
                tick,
            )
        )

    def ema_fold_window(self, window, latency, n):
        state = self._ema_state
        state[0] = window.value
        state[1] = window.total_latency
        self._lib.repro_ema_fold(state, window.alpha, latency, n)
        window.value = state[0]
        window.total_latency = state[1]

    def ema_fold_loop(self, state, alpha, latency, n):
        self._lib.repro_ema_fold(
            self._ffi.from_buffer("double *", state, require_writable=True),
            alpha,
            latency,
            n,
        )


def make_kernels():
    """Build the C-extension kernel set (raises :class:`BackendUnavailable`)."""
    return make_kernel_set("cext", _CLib())
