"""C-extension kernel backend (cffi, no setuptools).

The kernels are mirror images of :mod:`._loops`, written in C below and
compiled on demand with the system C compiler into a shared object
cached under ``$REPRO_KERNEL_CACHE`` (default ``~/.cache/repro/kernels``)
keyed by a hash of the source and compiler, so every process after the
first just loads the cached ``.so``.  Neither path needs
setuptools/distutils — the compiler is driven directly:

* **API mode** (preferred) — cffi emits the CPython extension source
  (``emit_c_code``), which is compiled against the interpreter's
  headers.  Calls through an API-mode ``lib`` are native extension
  calls, several times cheaper than ABI-mode's ``libffi`` trampolines —
  and on these microsecond kernels the call overhead *is* the price of
  admission.  Requires ``Python.h``; the cache key includes the
  interpreter version because the module links against its C API.
* **ABI mode** (fallback) — the plain C source is compiled standalone
  and ``dlopen``\\ ed: declare, open, call.  Works without Python
  headers; calls are slower.

Two flags matter for metric byte-identity:

* ``-ffp-contract=off`` — gcc at ``-O2`` may otherwise fuse the EMA's
  multiply-add into an FMA, which rounds once instead of twice and
  drifts from the Python loop's doubles.
* no ``-ffast-math`` — IEEE semantics throughout.

Anything missing (cffi, a C compiler, a writable cache dir, a failed
compile) raises :class:`BackendUnavailable`; the registry falls back to
the next backend and the simulator keeps running pure.
"""

from __future__ import annotations

import hashlib
import importlib.machinery
import importlib.util
import os
import shutil
import subprocess
import sys
import sysconfig
import tempfile
from pathlib import Path

from .compiled import BackendUnavailable, make_kernel_set

C_SOURCE = r"""
#include <stdint.h>

int64_t repro_intersect(const int64_t *a, int64_t na,
                        const int64_t *b, int64_t nb, int64_t *out)
{
    int64_t k = 0;
    if (na * 32 < nb) {
        int64_t lo = 0;
        for (int64_t i = 0; i < na; i++) {
            int64_t v = a[i];
            int64_t left = lo, right = nb;
            while (left < right) {
                int64_t mid = (left + right) >> 1;
                if (b[mid] < v) left = mid + 1; else right = mid;
            }
            lo = left;
            if (left < nb && b[left] == v) out[k++] = v;
        }
    } else {
        int64_t i = 0, j = 0;
        while (i < na && j < nb) {
            int64_t x = a[i], y = b[j];
            if (x == y) { out[k++] = x; i++; j++; }
            else if (x < y) i++;
            else j++;
        }
    }
    return k;
}

int64_t repro_subtract(const int64_t *a, int64_t na,
                       const int64_t *b, int64_t nb, int64_t *out)
{
    int64_t k = 0;
    if (nb > na * 32) {
        int64_t lo = 0;
        for (int64_t i = 0; i < na; i++) {
            int64_t v = a[i];
            int64_t left = lo, right = nb;
            while (left < right) {
                int64_t mid = (left + right) >> 1;
                if (b[mid] < v) left = mid + 1; else right = mid;
            }
            lo = left;
            if (left >= nb || b[left] != v) out[k++] = v;
        }
    } else {
        int64_t j = 0;
        for (int64_t i = 0; i < na; i++) {
            int64_t v = a[i];
            while (j < nb && b[j] < v) j++;
            if (j >= nb || b[j] != v) out[k++] = v;
        }
    }
    return k;
}

int repro_resident_stamp(const int64_t *tags, int64_t *stamps,
                         int64_t num_sets, int64_t assoc,
                         int64_t first_line, int64_t last_line, int64_t tick)
{
    for (int64_t addr = first_line; addr <= last_line; addr++) {
        const int64_t *ways = tags + (addr % num_sets) * assoc;
        int hit = 0;
        for (int64_t w = 0; w < assoc; w++) {
            if (ways[w] == addr) { hit = 1; break; }
        }
        if (!hit) return 0;
    }
    for (int64_t addr = first_line; addr <= last_line; addr++) {
        int64_t base = (addr % num_sets) * assoc;
        for (int64_t w = 0; w < assoc; w++) {
            if (tags[base + w] == addr) { stamps[base + w] = tick++; break; }
        }
    }
    return 1;
}

void repro_ema_fold(double *state, double alpha, double latency, int64_t n)
{
    double value = state[0];
    double total = state[1];
    for (int64_t i = 0; i < n; i++) {
        value += alpha * (latency - value);
        total += latency;
    }
    state[0] = value;
    state[1] = total;
}

/* Macro-step engine core: one task booked through every pipeline stage.
 *
 * C mirror of task_fastpath_loop in _loops.py — same statements, same
 * double expressions in the same order, so the booked state is
 * bit-identical to the Python per-event path.  One struct per PE holds
 * pre-offset pointers into the owning objects' numpy storage plus the
 * config scalars, so a call marshals only the per-task scalars.
 *
 * Returns 0 (complete, result[0] = completion time), 1 (partial —
 * output span not L1-resident; committed through IU service, result[0]
 * = post-IU time), or a negative escape having mutated nothing:
 * -3 vertex L1 miss, -4 intermediate-span L1 miss, -5 graph L2 miss.
 */
typedef struct {
    double *decode_free;     /* 1-elem views into the PE's state row */
    double *dispatch_free;
    double *issue_free;
    double *spawn_free;
    int64_t *l1_tags;        /* this PE's L1: tags/stamps/meta */
    int64_t *l1_stamps;
    int64_t *l1_meta;        /* [tick, hits, misses] */
    int64_t l1_sets;
    int64_t l1_assoc;
    double *l1_window;       /* latency window [value, total, samples] */
    int64_t *l2_tags;        /* shared L2 */
    int64_t *l2_stamps;
    int64_t *l2_meta;
    int64_t l2_sets;
    int64_t l2_assoc;
    double *bank_free;       /* shared L2 bank free times */
    int64_t nbanks;
    int64_t *mem_stats;      /* [graph_line_fetches, intermediate_line_fetches] */
    double *iu_free;         /* this PE's IU pool server frees */
    int64_t num_ius;
    double *iu_acc;          /* [max_free, busy_cycles, segments_processed] */
    int64_t *spans;          /* shared span marshalling buffer */
    double *result;          /* shared [time, unused] */
    double unit_interval;
    double decode_cycles;
    double dispatch_cycles;
    double post_spawn_cycles;
    double leaf_cycles;
    double l1_hit;
    double l2_hit;
    double l2_service;
    double hop;
    double alpha;
    double segment_cycles;
    double num_dividers;
    int64_t fetch_ports;
    int64_t stream_ok;
} repro_core_t;

int64_t repro_task_fastpath(repro_core_t *c, double now, int64_t is_leaf,
                            int64_t vertex_line,
                            int64_t inter_first, int64_t inter_last,
                            int64_t out_first, int64_t out_last,
                            int64_t out_count, int64_t segments,
                            int64_t nspans)
{
    const int64_t l1_sets = c->l1_sets, l1_assoc = c->l1_assoc;
    const int64_t l2_sets = c->l2_sets, l2_assoc = c->l2_assoc;
    const int64_t ports = c->fetch_ports;
    int64_t base, way, addr, s;
    int hit;

    /* ------------------------------------------------------ probe */
    if (vertex_line >= 0) {
        base = (vertex_line % l1_sets) * l1_assoc;
        hit = 0;
        for (way = 0; way < l1_assoc; way++) {
            if (c->l1_tags[base + way] == vertex_line) { hit = 1; break; }
        }
        if (!hit) return -3;
    }
    if (!is_leaf) {
        if (inter_first >= 0) {
            for (addr = inter_first; addr <= inter_last; addr++) {
                base = (addr % l1_sets) * l1_assoc;
                hit = 0;
                for (way = 0; way < l1_assoc; way++) {
                    if (c->l1_tags[base + way] == addr) { hit = 1; break; }
                }
                if (!hit) return -4;
            }
        }
        for (s = 0; s < nspans; s++) {
            for (addr = c->spans[2 * s]; addr <= c->spans[2 * s + 1]; addr++) {
                base = (addr % l2_sets) * l2_assoc;
                hit = 0;
                for (way = 0; way < l2_assoc; way++) {
                    if (c->l2_tags[base + way] == addr) { hit = 1; break; }
                }
                if (!hit) return -5;
            }
        }
    }

    /* ----------------------------------------------------- commit */
    double free_t = c->decode_free[0];
    double start = now >= free_t ? now : free_t;
    c->decode_free[0] = start + c->unit_interval;
    double t = start + c->decode_cycles;
    free_t = c->dispatch_free[0];
    start = t >= free_t ? t : free_t;
    c->dispatch_free[0] = start + c->unit_interval;
    t = start + c->dispatch_cycles;

    if (vertex_line >= 0) {
        c->mem_stats[1] += 1;
        base = (vertex_line % l1_sets) * l1_assoc;
        for (way = 0; way < l1_assoc; way++) {
            if (c->l1_tags[base + way] == vertex_line) {
                c->l1_stamps[base + way] = c->l1_meta[0];
                break;
            }
        }
        c->l1_meta[0] += 1;
        c->l1_meta[1] += 1;
        double finish = t + c->l1_hit;
        if (finish > t) t = finish;
    }

    if (is_leaf) {
        free_t = c->spawn_free[0];
        double at = t + c->leaf_cycles;
        start = at >= free_t ? at : free_t;
        c->spawn_free[0] = start + c->unit_interval;
        c->result[0] = start + c->post_spawn_cycles;
        return 0;
    }

    double t_inter = t;
    if (inter_first >= 0) {
        int64_t n = inter_last - inter_first + 1;
        int64_t tick = c->l1_meta[0];
        for (addr = inter_first; addr <= inter_last; addr++) {
            base = (addr % l1_sets) * l1_assoc;
            for (way = 0; way < l1_assoc; way++) {
                if (c->l1_tags[base + way] == addr) {
                    c->l1_stamps[base + way] = tick++;
                    break;
                }
            }
        }
        c->l1_meta[0] = tick;
        c->l1_meta[1] += n;
        c->mem_stats[1] += n;
        double value = c->l1_window[0];
        double total = c->l1_window[1];
        for (int64_t i = 0; i < n; i++) {
            value += c->alpha * (c->l1_hit - value);
            total += c->l1_hit;
        }
        c->l1_window[0] = value;
        c->l1_window[1] = total;
        c->l1_window[2] += (double)n;
        double finish = (t + (double)((n - 1) / ports)) + c->l1_hit;
        t_inter = finish > t ? finish : t;
    }

    double t_graph = t;
    if (nspans > 0) {
        const int64_t nbanks = c->nbanks;
        int64_t tick = c->l2_meta[0];
        int64_t hits = 0;
        double done = t;
        int64_t i = 0;
        for (s = 0; s < nspans; s++) {
            int64_t first = c->spans[2 * s];
            int64_t last = c->spans[2 * s + 1];
            if (last == first) {
                base = (first % l2_sets) * l2_assoc;
                for (way = 0; way < l2_assoc; way++) {
                    if (c->l2_tags[base + way] == first) {
                        c->l2_stamps[base + way] = tick++;
                        break;
                    }
                }
                hits += 1;
                double issue = t + (double)(i / ports);
                double arrive = issue + c->hop;
                int64_t bank = first % nbanks;
                double queued = c->bank_free[bank];
                double st = queued >= arrive ? queued : arrive;
                c->bank_free[bank] = st + c->l2_service;
                double back = st + c->l2_hit + c->hop;
                if (back > done) done = back;
                i += 1;
                continue;
            }
            int64_t n = last - first + 1;
            for (addr = first; addr <= last; addr++) {
                base = (addr % l2_sets) * l2_assoc;
                for (way = 0; way < l2_assoc; way++) {
                    if (c->l2_tags[base + way] == addr) {
                        c->l2_stamps[base + way] = tick++;
                        break;
                    }
                }
            }
            hits += n;
            int64_t bank = first % nbanks;
            int64_t head = (c->stream_ok && n > nbanks) ? nbanks : n;
            int streaming = 1;
            for (int64_t h = 0; h < head; h++) {
                double issue = t + (double)(i / ports);
                double arrive = issue + c->hop;
                double queued = c->bank_free[bank];
                double st;
                if (queued >= arrive) {
                    st = queued;
                    if (queued > arrive) streaming = 0;
                } else {
                    st = arrive;
                }
                c->bank_free[bank] = st + c->l2_service;
                double back = st + c->l2_hit + c->hop;
                if (back > done) done = back;
                i += 1;
                bank += 1;
                if (bank == nbanks) bank = 0;
            }
            int64_t rest = n - head;
            if (rest > 0) {
                if (streaming) {
                    int64_t last_k = i + rest - 1;
                    double back =
                        ((t + (double)(last_k / ports)) + c->hop)
                        + c->l2_hit + c->hop;
                    if (back > done) done = back;
                    int64_t lim = rest < nbanks ? rest : nbanks;
                    for (int64_t h = 0; h < lim; h++) {
                        double arrive =
                            (t + (double)(last_k / ports)) + c->hop;
                        int64_t b = (first + (last_k - i) + head) % nbanks;
                        c->bank_free[b] = arrive + c->l2_service;
                        last_k -= 1;
                    }
                    i += rest;
                } else {
                    for (int64_t h = 0; h < rest; h++) {
                        double issue = t + (double)(i / ports);
                        double arrive = issue + c->hop;
                        double queued = c->bank_free[bank];
                        double st = queued >= arrive ? queued : arrive;
                        c->bank_free[bank] = st + c->l2_service;
                        double back = st + c->l2_hit + c->hop;
                        if (back > done) done = back;
                        i += 1;
                        bank += 1;
                        if (bank == nbanks) bank = 0;
                    }
                }
            }
        }
        c->l2_meta[0] = tick;
        c->l2_meta[1] += hits;
        c->mem_stats[0] += i;
        t_graph = done;
    }

    double ready = t_inter >= t_graph ? t_inter : t_graph;
    free_t = c->issue_free[0];
    start = ready >= free_t ? ready : free_t;
    c->issue_free[0] = start + c->unit_interval;
    double ready_time = start + 1.0;
    if (segments <= 0) {
        t = ready_time;
    } else {
        double formed = ready_time + (double)segments / c->num_dividers;
        const int64_t k = c->num_ius;
        const double cy = c->segment_cycles;
        double finish;
        if (c->iu_acc[0] <= formed) {
            int64_t q = segments / k;
            int64_t r = segments - q * k;
            double done;
            if (q == 0) {
                /* done exceeds every entry, so iterated argmin-
                 * overwrite replaces exactly the `segments` smallest. */
                done = formed + cy;
                for (int64_t m = 0; m < segments; m++) {
                    int64_t mi = 0;
                    double mv = c->iu_free[0];
                    for (int64_t j = 1; j < k; j++) {
                        if (c->iu_free[j] < mv) { mv = c->iu_free[j]; mi = j; }
                    }
                    c->iu_free[mi] = done;
                }
                finish = done;
            } else {
                done = formed;
                for (int64_t m = 0; m < q; m++) done = done + cy;
                if (r > 0) {
                    finish = done + cy;
                    for (int64_t j = 0; j < k - r; j++) c->iu_free[j] = done;
                    for (int64_t j = k - r; j < k; j++) c->iu_free[j] = finish;
                } else {
                    finish = done;
                    for (int64_t j = 0; j < k; j++) c->iu_free[j] = done;
                }
            }
            c->iu_acc[0] = finish;
        } else {
            finish = formed;
            for (int64_t m = 0; m < segments; m++) {
                int64_t mi = 0;
                double mv = c->iu_free[0];
                for (int64_t j = 1; j < k; j++) {
                    if (c->iu_free[j] < mv) { mv = c->iu_free[j]; mi = j; }
                }
                double fv = c->iu_free[mi];
                double st = fv >= formed ? fv : formed;
                double done = st + cy;
                c->iu_free[mi] = done;
                if (done > finish) finish = done;
            }
            if (finish > c->iu_acc[0]) c->iu_acc[0] = finish;
        }
        c->iu_acc[1] += (double)segments * cy;
        c->iu_acc[2] += (double)segments;
        t = finish;
    }

    if (out_count > 0) {
        int resident = 1;
        for (addr = out_first; addr <= out_last; addr++) {
            base = (addr % l1_sets) * l1_assoc;
            hit = 0;
            for (way = 0; way < l1_assoc; way++) {
                if (c->l1_tags[base + way] == addr) { hit = 1; break; }
            }
            if (!hit) { resident = 0; break; }
        }
        if (!resident) {
            c->result[0] = t;
            return 1;
        }
        /* All-resident writeback: pure LRU refresh, no hits counted. */
        int64_t tick = c->l1_meta[0];
        for (addr = out_first; addr <= out_last; addr++) {
            base = (addr % l1_sets) * l1_assoc;
            for (way = 0; way < l1_assoc; way++) {
                if (c->l1_tags[base + way] == addr) {
                    c->l1_stamps[base + way] = tick++;
                    break;
                }
            }
        }
        c->l1_meta[0] = tick;
        double wb = (double)out_count / (double)ports;
        t += wb > 1.0 ? wb : 1.0;
    }

    free_t = c->spawn_free[0];
    start = t >= free_t ? t : free_t;
    c->spawn_free[0] = start + c->unit_interval;
    c->result[0] = start + c->post_spawn_cycles;
    return 0;
}

/* Task-tree scheduler kernels: C mirrors of tree_select_loop /
 * tree_fill_loop / tree_complete_loop in _loops.py, statement for
 * statement.  One struct per task tree holds the pinned pointers into
 * the tree's struct-of-arrays numpy state plus its layout scalars, so
 * a scheduler call marshals only the per-call scalars.  The ctl word
 * indices and DONE_* return codes are the module constants of
 * repro.core.task_tree.
 */
typedef struct {
    int64_t *b_depth;
    int64_t *b_cap;
    int64_t *b_in_use;
    int64_t *b_tree;
    int64_t *b_quiesced;
    int64_t *b_active;
    int64_t *b_executing;
    int64_t *ring;
    int64_t *ring_head;
    int64_t *ring_len;
    int64_t *e_vertex;
    int64_t *e_child_index;
    int64_t *e_token;
    int64_t *tok_free;
    int64_t *tok_n;
    int64_t *d_start;
    int64_t *d_end;
    int64_t *ctl;
    int64_t nb;
    int64_t cap;
    int64_t max_depth;
    int64_t tokens_per_depth;
} repro_tree_t;

/* Schedule one Ready entry out of bunch b; -1 = token stall. */
static int64_t repro_tree_sched(repro_tree_t *t, int64_t b)
{
    int64_t depth = t->b_depth[b];
    int leaf = depth >= t->max_depth;
    int64_t cap = t->cap;
    int64_t base = b * cap;
    int64_t head = t->ring_head[b];
    int64_t length = t->ring_len[b];
    int64_t slot = -1;
    if (leaf || t->tok_n[depth] > 0) {
        slot = t->ring[base + head];
        t->ring_head[b] = (head + 1) % cap;
        t->ring_len[b] = length - 1;
    } else {
        /* Pool drained: an entry already holding a token is still
         * valid (ordered middle deletion from the ready ring). */
        for (int64_t j = 0; j < length; j++) {
            int64_t cand = t->ring[base + (head + j) % cap];
            if (t->e_token[cand] >= 0) {
                slot = cand;
                for (int64_t m = j; m < length - 1; m++) {
                    t->ring[base + (head + m) % cap] =
                        t->ring[base + (head + m + 1) % cap];
                }
                t->ring_len[b] = length - 1;
                break;
            }
        }
        if (slot < 0) {
            t->ctl[6] += 1;  /* CTL_STALLS */
            return -1;
        }
    }
    t->ctl[0] -= 1;  /* CTL_READY */
    if (!leaf && t->e_token[slot] < 0) {
        int64_t n_free = t->tok_n[depth] - 1;
        t->tok_n[depth] = n_free;
        t->e_token[slot] = t->tok_free[depth * t->tokens_per_depth + n_free];
    }
    t->b_executing[b] += 1;
    t->ctl[1] += 1;  /* CTL_EXECUTING */
    t->ctl[3] = b;   /* CTL_EXEC_BUNCH */
    t->ctl[2] = b;   /* CTL_LAST_BUNCH */
    t->ctl[5] += 1;  /* CTL_SCHEDULED */
    return slot;
}

int64_t repro_tree_select(repro_tree_t *t, int64_t conservative, int64_t k,
                          int64_t *out_slots)
{
    int64_t count = 0;
    int64_t nb = t->nb;
    while (count < k) {
        if (t->ctl[0] == 0) break;
        int64_t picked = -1;
        if (conservative == 1 && t->ctl[1] > 0) {
            /* Conservative: only the executing bunch, no fallback. */
            int64_t b = t->ctl[3];
            if (b >= 0 && t->ring_len[b] != 0 && t->b_quiesced[b] == 0)
                picked = repro_tree_sched(t, b);
        } else {
            int64_t last = t->ctl[2];
            int64_t start = t->ctl[4];  /* CTL_RR_CURSOR */
            if (last >= 0 && t->ring_len[last] != 0 &&
                t->b_quiesced[last] == 0)
                picked = repro_tree_sched(t, last);
            if (picked < 0) {
                for (int64_t off = 0; off < nb; off++) {
                    int64_t b = (start + off) % nb;
                    if (b == last || t->ring_len[b] == 0 ||
                        t->b_quiesced[b] != 0)
                        continue;
                    t->ctl[4] = (start + off + 1) % nb;
                    picked = repro_tree_sched(t, b);
                    if (picked >= 0) break;
                }
            }
        }
        if (picked < 0) break;
        out_slots[count++] = picked;
    }
    return count;
}

int64_t repro_tree_fill(repro_tree_t *t, int64_t b, int64_t tree_id,
                        int64_t quiesced, const int64_t *vertices,
                        int64_t first, int64_t count)
{
    t->b_in_use[b] = 1;
    t->b_tree[b] = tree_id;
    t->b_quiesced[b] = quiesced;
    int64_t base = b * t->cap;
    for (int64_t i = 0; i < count; i++) {
        int64_t slot = base + i;
        t->e_vertex[slot] = vertices[first + i];
        t->e_child_index[slot] = first + i;
        t->e_token[slot] = -1;
        t->ring[slot] = slot;
    }
    t->ring_head[b] = 0;
    t->ring_len[b] = count;
    t->ctl[0] += count;
    t->b_active[b] = count;
    return count;
}

int64_t repro_tree_complete(repro_tree_t *t, int64_t slot, int64_t b,
                            int64_t has_children, const int64_t *children,
                            int64_t first, int64_t navail,
                            int64_t parent_unexplored, int64_t ext_vertex,
                            int64_t ext_position, int64_t tree_quiesced,
                            int64_t *out)
{
    t->b_executing[b] -= 1;
    t->ctl[1] -= 1;
    if (has_children == 1) {
        int64_t child_depth = t->b_depth[b] + 1;
        int64_t target = -1;
        for (int64_t bb = t->d_start[child_depth];
             bb < t->d_end[child_depth]; bb++) {
            if (t->b_in_use[bb] == 0) { target = bb; break; }
        }
        if (target < 0) {
            t->ctl[7] += 1;  /* CTL_WAITS */
            return 1;        /* DONE_WAITING */
        }
        int64_t cnt = navail - first;
        if (cnt > t->b_cap[target]) cnt = t->b_cap[target];
        if (cnt <= 0) return 5;  /* DONE_UNDERFLOW */
        t->b_in_use[target] = 1;
        t->b_tree[target] = t->b_tree[b];
        t->b_quiesced[target] = tree_quiesced;
        int64_t tbase = target * t->cap;
        for (int64_t i = 0; i < cnt; i++) {
            int64_t ts = tbase + i;
            t->e_vertex[ts] = children[first + i];
            t->e_child_index[ts] = first + i;
            t->e_token[ts] = -1;
            t->ring[ts] = ts;
        }
        t->ring_head[target] = 0;
        t->ring_len[target] = cnt;
        t->ctl[0] += cnt;
        t->b_active[target] = cnt;
        out[0] = target;
        out[1] = cnt;
        return 0;  /* DONE_SPAWNED */
    }
    if (parent_unexplored > 0) {
        /* Extend: entry and address token explore the parent's next
         * unexplored candidate. */
        t->e_vertex[slot] = ext_vertex;
        t->e_child_index[slot] = ext_position;
        t->ring[b * t->cap +
                (t->ring_head[b] + t->ring_len[b]) % t->cap] = slot;
        t->ring_len[b] += 1;
        t->ctl[0] += 1;
        return 2;  /* DONE_EXTENDED */
    }
    int64_t tok = t->e_token[slot];
    if (tok >= 0) {
        int64_t depth = t->b_depth[b];
        int64_t n_free = t->tok_n[depth];
        t->tok_free[depth * t->tokens_per_depth + n_free] = tok;
        t->tok_n[depth] = n_free + 1;
        t->e_token[slot] = -1;
    }
    t->b_active[b] -= 1;
    if (t->b_active[b] < 0) return 5;  /* DONE_UNDERFLOW */
    if (t->b_active[b] == 0) return 4; /* DONE_RECYCLE */
    return 3;  /* DONE_IDLED */
}

"""

CDEF = """
int64_t repro_intersect(const int64_t *a, int64_t na,
                        const int64_t *b, int64_t nb, int64_t *out);
int64_t repro_subtract(const int64_t *a, int64_t na,
                       const int64_t *b, int64_t nb, int64_t *out);
int repro_resident_stamp(const int64_t *tags, int64_t *stamps,
                         int64_t num_sets, int64_t assoc,
                         int64_t first_line, int64_t last_line, int64_t tick);
void repro_ema_fold(double *state, double alpha, double latency, int64_t n);
typedef struct {
    double *decode_free;
    double *dispatch_free;
    double *issue_free;
    double *spawn_free;
    int64_t *l1_tags;
    int64_t *l1_stamps;
    int64_t *l1_meta;
    int64_t l1_sets;
    int64_t l1_assoc;
    double *l1_window;
    int64_t *l2_tags;
    int64_t *l2_stamps;
    int64_t *l2_meta;
    int64_t l2_sets;
    int64_t l2_assoc;
    double *bank_free;
    int64_t nbanks;
    int64_t *mem_stats;
    double *iu_free;
    int64_t num_ius;
    double *iu_acc;
    int64_t *spans;
    double *result;
    double unit_interval;
    double decode_cycles;
    double dispatch_cycles;
    double post_spawn_cycles;
    double leaf_cycles;
    double l1_hit;
    double l2_hit;
    double l2_service;
    double hop;
    double alpha;
    double segment_cycles;
    double num_dividers;
    int64_t fetch_ports;
    int64_t stream_ok;
} repro_core_t;
int64_t repro_task_fastpath(repro_core_t *c, double now, int64_t is_leaf,
                            int64_t vertex_line,
                            int64_t inter_first, int64_t inter_last,
                            int64_t out_first, int64_t out_last,
                            int64_t out_count, int64_t segments,
                            int64_t nspans);
typedef struct {
    int64_t *b_depth;
    int64_t *b_cap;
    int64_t *b_in_use;
    int64_t *b_tree;
    int64_t *b_quiesced;
    int64_t *b_active;
    int64_t *b_executing;
    int64_t *ring;
    int64_t *ring_head;
    int64_t *ring_len;
    int64_t *e_vertex;
    int64_t *e_child_index;
    int64_t *e_token;
    int64_t *tok_free;
    int64_t *tok_n;
    int64_t *d_start;
    int64_t *d_end;
    int64_t *ctl;
    int64_t nb;
    int64_t cap;
    int64_t max_depth;
    int64_t tokens_per_depth;
} repro_tree_t;
int64_t repro_tree_select(repro_tree_t *t, int64_t conservative, int64_t k,
                          int64_t *out_slots);
int64_t repro_tree_fill(repro_tree_t *t, int64_t b, int64_t tree_id,
                        int64_t quiesced, const int64_t *vertices,
                        int64_t first, int64_t count);
int64_t repro_tree_complete(repro_tree_t *t, int64_t slot, int64_t b,
                            int64_t has_children, const int64_t *children,
                            int64_t first, int64_t navail,
                            int64_t parent_unexplored, int64_t ext_vertex,
                            int64_t ext_position, int64_t tree_quiesced,
                            int64_t *out);
"""

CFLAGS = ["-O2", "-fPIC", "-shared", "-ffp-contract=off"]


def _cache_dir() -> Path:
    env = os.environ.get("REPRO_KERNEL_CACHE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "kernels"


def _find_cc() -> str:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    raise BackendUnavailable("no C compiler found (tried $CC, cc, gcc, clang)")


def _compile(cc, args, tmp_so, so_path):
    """Run one compiler invocation and atomically publish the result."""
    proc = subprocess.run(
        [cc, *args], capture_output=True, text=True, timeout=120
    )
    if proc.returncode != 0:
        raise BackendUnavailable(
            f"kernel compile failed ({cc}): {proc.stderr.strip()[:500]}"
        )
    # Atomic publish: concurrent builders race to an identical file.
    os.replace(tmp_so, so_path)


def build_library(verbose: bool = False) -> Path:
    """Compile (or reuse) the ABI-mode shared object; returns its path."""
    cc = _find_cc()
    key = hashlib.sha256(
        ("\n".join([cc, *CFLAGS, C_SOURCE, CDEF])).encode()
    ).hexdigest()[:16]
    cache = _cache_dir()
    so_path = cache / f"repro_kernels_{key}.so"
    if so_path.exists():
        return so_path
    try:
        cache.mkdir(parents=True, exist_ok=True)
        with tempfile.TemporaryDirectory(dir=cache) as tmp:
            src = Path(tmp) / "kernels.c"
            src.write_text(C_SOURCE)
            tmp_so = Path(tmp) / "kernels.so"
            _compile(cc, [*CFLAGS, "-o", str(tmp_so), str(src)], tmp_so, so_path)
    except OSError as exc:
        raise BackendUnavailable(f"kernel build failed: {exc}") from exc
    if verbose:  # pragma: no cover - debug aid
        print(f"built kernel library: {so_path}")
    return so_path


def _python_include() -> str:
    """The running interpreter's C header directory (must hold Python.h)."""
    include = sysconfig.get_paths()["include"]
    if not os.path.exists(os.path.join(include, "Python.h")):
        raise BackendUnavailable(f"Python.h not found under {include}")
    return include


def build_api_module(verbose: bool = False):
    """Compile (or reuse) the API-mode extension; returns (name, path).

    The module name embeds the cache key, so distinct kernel versions
    never collide in ``sys.modules`` and a stale cached ``.so`` is
    simply never looked up again.
    """
    cc = _find_cc()
    tag = (
        f"{sys.implementation.name}-"
        f"{sys.version_info.major}.{sys.version_info.minor}"
    )
    key = hashlib.sha256(
        ("\n".join([cc, tag, *CFLAGS, C_SOURCE, CDEF])).encode()
    ).hexdigest()[:16]
    name = f"_repro_kernels_{key}"
    cache = _cache_dir()
    so_path = cache / f"{name}.so"
    if so_path.exists():
        return name, so_path
    include = _python_include()
    try:
        from cffi import FFI
    except ImportError as exc:
        raise BackendUnavailable(f"cffi is not installed: {exc}") from exc
    try:
        cache.mkdir(parents=True, exist_ok=True)
        with tempfile.TemporaryDirectory(dir=cache) as tmp:
            builder = FFI()
            builder.cdef(CDEF)
            builder.set_source(name, C_SOURCE)
            src = Path(tmp) / f"{name}.c"
            # cffi prints a "generating ..." notice; keep the build quiet.
            import contextlib
            import io

            with contextlib.redirect_stdout(io.StringIO()):
                builder.emit_c_code(str(src))
            tmp_so = Path(tmp) / f"{name}.so"
            _compile(
                cc,
                [*CFLAGS, f"-I{include}", "-o", str(tmp_so), str(src)],
                tmp_so,
                so_path,
            )
    except OSError as exc:
        raise BackendUnavailable(f"kernel build failed: {exc}") from exc
    if verbose:  # pragma: no cover - debug aid
        print(f"built kernel extension: {so_path}")
    return name, so_path


def _load_api_module(name: str, so_path: Path):
    """Import the API-mode extension; returns its (ffi, lib) pair."""
    loader = importlib.machinery.ExtensionFileLoader(name, str(so_path))
    spec = importlib.util.spec_from_file_location(
        name, str(so_path), loader=loader
    )
    module = importlib.util.module_from_spec(spec)
    try:
        loader.exec_module(module)
    except ImportError as exc:
        raise BackendUnavailable(f"kernel extension failed to load: {exc}") from exc
    return module.ffi, module.lib


class _CLib:
    """Array-level adapter over the dlopened C library.

    Presents the :mod:`._loops` signatures (numpy arrays in, counts
    out) so the shared glue in :mod:`.compiled` works unchanged.  The
    arrays are already C-contiguous ``int64``/``float64`` — the glue
    normalizes operands — so ``from_buffer`` is a zero-copy cast.

    The adapter exists to make each call as thin as possible: a kernel
    invocation here costs about as much as the C loop it wraps, so
    every hundred nanoseconds of marshalling shows up in the speedup.

    * **Pointer cache** — long-lived state arrays (cache tag/stamp
      arrays, the glue's reusable output buffers) are marshalled once
      and the resulting cdata cached by object identity.  This is safe
      because ``from_buffer`` pins the underlying array: a cached id
      can never be reused by a different array while its entry lives.
      Ephemeral operands (neighbor sets) are never cached — pinning
      them would leak.
    * **Persistent EMA state** — :meth:`ema_fold_window` folds through
      a preallocated 2-double cdata buffer, skipping the numpy scratch
      handshake entirely (cdata scalar access is cheaper than numpy
      item access, and doubles round-trip bit-exactly).
    """

    #: Pointer-cache capacity; eviction just clears (entries rebuild on
    #: the next call), bounding how many retired buffers stay pinned.
    _PTR_CACHE_MAX = 64

    def __init__(self) -> None:
        try:
            name, so_path = build_api_module()
            ffi, lib = _load_api_module(name, so_path)
            self.mode = "api"
        except BackendUnavailable:
            # No Python headers (or the extension build failed): fall
            # back to the standalone shared object through libffi.
            try:
                from cffi import FFI
            except ImportError as exc:
                raise BackendUnavailable(
                    f"cffi is not installed: {exc}"
                ) from exc
            so_path = build_library()
            ffi = FFI()
            ffi.cdef(CDEF)
            lib = ffi.dlopen(str(so_path))
            self.mode = "abi"
        self._ffi = ffi
        self._lib = lib
        self._i64 = ffi.typeof("int64_t *")
        self._ema_state = ffi.new("double[2]")
        self._ptr_cache = {}
        self.path = so_path

    def _pinned(self, arr, writable):
        """Cached ``int64_t *`` for a long-lived array (pins ``arr``)."""
        cache = self._ptr_cache
        ptr = cache.get(id(arr))
        if ptr is None:
            if len(cache) >= self._PTR_CACHE_MAX:
                cache.clear()
            ptr = self._ffi.from_buffer(
                self._i64, arr, require_writable=writable
            )
            cache[id(arr)] = ptr
        return ptr

    def intersect_loop(self, a, b, out):
        from_buffer = self._ffi.from_buffer
        i64 = self._i64
        return self._lib.repro_intersect(
            from_buffer(i64, a),
            len(a),
            from_buffer(i64, b),
            len(b),
            self._pinned(out, True),
        )

    def subtract_loop(self, a, b, out):
        from_buffer = self._ffi.from_buffer
        i64 = self._i64
        return self._lib.repro_subtract(
            from_buffer(i64, a),
            len(a),
            from_buffer(i64, b),
            len(b),
            self._pinned(out, True),
        )

    def intersect_multi_loop(self, arrays, out, scratch):
        """Chained intersections entirely in cdata: the survivor ping-
        pongs between the pinned out/scratch pointers, so no numpy view
        is materialized between pairs.  The starting buffer is chosen so
        the final survivor always lands in ``out`` (an odd number of
        pairwise steps ends where it starts)."""
        from_buffer = self._ffi.from_buffer
        i64 = self._i64
        c_intersect = self._lib.repro_intersect
        pout = self._pinned(out, True)
        pscr = self._pinned(scratch, True)
        cur = from_buffer(i64, arrays[0])
        ncur = len(arrays[0])
        dst, alt = (pout, pscr) if len(arrays) % 2 == 0 else (pscr, pout)
        for arr in arrays[1:]:
            ncur = c_intersect(cur, ncur, from_buffer(i64, arr), len(arr), dst)
            if ncur == 0:
                return 0
            cur = dst
            dst, alt = alt, dst
        return ncur

    def resident_stamp_loop(self, tags, stamps, num_sets, assoc, first_line, last_line, tick):
        return bool(
            self._lib.repro_resident_stamp(
                self._pinned(tags, False),
                self._pinned(stamps, True),
                num_sets,
                assoc,
                first_line,
                last_line,
                tick,
            )
        )

    def ema_fold_window(self, window, latency, n):
        state = self._ema_state
        state[0] = window.value
        state[1] = window.total_latency
        self._lib.repro_ema_fold(state, window.alpha, latency, n)
        window.value = state[0]
        window.total_latency = state[1]

    def ema_fold_loop(self, state, alpha, latency, n):
        self._lib.repro_ema_fold(
            self._ffi.from_buffer("double *", state, require_writable=True),
            alpha,
            latency,
            n,
        )

    def macro_bind(self, accel, spans, result):
        """Per-PE macro-step bindings: ``repro_core_t`` structs with
        pre-offset pointers into the live numpy state, so a fast-path
        call marshals ten scalars and nothing else.

        ``from_buffer`` pins each array; the cdata pointers (and the
        structs) ride in every closure's defaults, so the bindings keep
        the state alive exactly as long as the accelerator's PEs hold
        the closures.
        """
        ffi = self._ffi
        fastpath = self._lib.repro_task_fastpath
        f64 = ffi.typeof("double *")
        i64 = self._i64
        keep = []

        def fp(arr):
            p = ffi.from_buffer(f64, arr, require_writable=True)
            keep.append(p)
            return p

        def ip(arr):
            p = ffi.from_buffer(i64, arr, require_writable=True)
            keep.append(p)
            return p

        memory = accel.memory
        config = accel.config
        state = accel.pe_state
        l2 = memory.l2
        decode_p = fp(state.decode_free)
        dispatch_p = fp(state.dispatch_free)
        issue_p = fp(state.issue_free)
        spawn_p = fp(state.spawn_free)
        l2_tags_p = ip(l2._tags)
        l2_stamps_p = ip(l2._stamps)
        l2_meta_p = ip(l2._meta)
        bank_p = fp(memory._l2_bank_free)
        stats_p = ip(memory._stats)
        spans_p = ip(spans)
        result_p = fp(result)
        books = []
        for pe in accel.pes:
            row = pe._row
            l1 = memory.l1s[pe.pe_id]
            window = memory.l1_windows[pe.pe_id]
            core = ffi.new("repro_core_t *")
            core.decode_free = decode_p + row
            core.dispatch_free = dispatch_p + row
            core.issue_free = issue_p + row
            core.spawn_free = spawn_p + row
            core.l1_tags = ip(l1._tags)
            core.l1_stamps = ip(l1._stamps)
            core.l1_meta = ip(l1._meta)
            core.l1_sets = l1.num_sets
            core.l1_assoc = l1.assoc
            core.l1_window = fp(window._state)
            core.l2_tags = l2_tags_p
            core.l2_stamps = l2_stamps_p
            core.l2_meta = l2_meta_p
            core.l2_sets = l2.num_sets
            core.l2_assoc = l2.assoc
            core.bank_free = bank_p
            core.nbanks = memory._l2_bank_free.shape[0]
            core.mem_stats = stats_p
            core.iu_free = fp(pe.iu_pool._server_free)
            core.num_ius = pe.iu_pool._server_free.shape[0]
            core.iu_acc = fp(pe.iu_pool._acc)
            core.spans = spans_p
            core.result = result_p
            core.unit_interval = pe._unit_interval
            core.decode_cycles = float(config.decode_cycles)
            core.dispatch_cycles = float(config.dispatch_cycles)
            core.post_spawn_cycles = float(pe._post_spawn_cycles)
            core.leaf_cycles = float(config.leaf_cycles)
            core.l1_hit = memory._l1_hit_cycles_f
            core.l2_hit = float(config.l2_hit_cycles)
            core.l2_service = float(config.l2_service_cycles)
            core.hop = float(memory._hop_cycles)
            core.alpha = window.alpha
            core.segment_cycles = float(config.segment_cycles)
            core.num_dividers = float(config.num_dividers)
            core.fetch_ports = int(config.fetch_ports)
            core.stream_ok = 1 if memory._l2_stream_ok else 0

            def book(
                now, is_leaf, vertex_line, inter_first, inter_last,
                out_first, out_last, out_count, segments, nspans,
                _fp=fastpath, _core=core, _keep=keep,
            ):
                return _fp(
                    _core, now, is_leaf, vertex_line, inter_first,
                    inter_last, out_first, out_last, out_count,
                    segments, nspans,
                )

            books.append(book)
        return books

    def tree_bind(self, state):
        """Per-tree scheduler bindings: one ``repro_tree_t`` struct with
        pinned pointers into the tree's struct-of-arrays numpy state.

        The returned ops object carries ``select``/``fill``/``complete``
        closures over the struct; a call marshals only the per-call
        scalars plus the (ephemeral) candidate span.  ``from_buffer``
        pins every array for the life of the ops object, which the
        owning :class:`~repro.core.task_tree.TaskTree` holds.
        """
        ffi = self._ffi
        i64 = self._i64
        keep = []

        def ip(arr):
            p = ffi.from_buffer(i64, arr, require_writable=True)
            keep.append(p)
            return p

        tree = ffi.new("repro_tree_t *")
        tree.b_depth = ip(state.b_depth)
        tree.b_cap = ip(state.b_cap)
        tree.b_in_use = ip(state.b_in_use)
        tree.b_tree = ip(state.b_tree)
        tree.b_quiesced = ip(state.b_quiesced)
        tree.b_active = ip(state.b_active)
        tree.b_executing = ip(state.b_executing)
        tree.ring = ip(state.ring)
        tree.ring_head = ip(state.ring_head)
        tree.ring_len = ip(state.ring_len)
        tree.e_vertex = ip(state.e_vertex)
        tree.e_child_index = ip(state.e_child_index)
        tree.e_token = ip(state.e_token)
        tree.tok_free = ip(state.tok_free)
        tree.tok_n = ip(state.tok_n)
        tree.d_start = ip(state.d_start)
        tree.d_end = ip(state.d_end)
        tree.ctl = ip(state.ctl)
        tree.nb = state.nb
        tree.cap = state.cap
        tree.max_depth = state.max_depth
        tree.tokens_per_depth = state.tokens_per_depth

        lib = self._lib
        from_buffer = ffi.from_buffer
        # The out buffers are per-tree and long-lived: pin them once.
        out_cache = {}

        def pout(out):
            p = out_cache.get(id(out))
            if p is None:
                p = ffi.from_buffer(i64, out, require_writable=True)
                out_cache[id(out)] = p
            return p

        class _TreeOps:
            __slots__ = ("select", "fill", "complete", "_keep")

        ops = _TreeOps()
        ops._keep = (tree, keep, out_cache)

        def select(conservative, k, out,
                   _t=tree, _f=lib.repro_tree_select, _p=pout):
            return _f(_t, conservative, k, _p(out))

        def fill(b, tree_id, quiesced, vertices, first, count,
                 _t=tree, _f=lib.repro_tree_fill, _fb=from_buffer, _i64=i64):
            return _f(_t, b, tree_id, quiesced, _fb(_i64, vertices),
                      first, count)

        # Leaf completions (no children) dominate and never read the
        # children span — hand the kernel a static dummy instead of
        # pinning the caller's empty array on every call.
        null_children = ffi.new("int64_t[1]")
        keep.append(null_children)

        def complete(slot, b, has_children, children, first, navail,
                     parent_unexplored, ext_vertex, ext_position,
                     tree_quiesced, out,
                     _t=tree, _f=lib.repro_tree_complete, _fb=from_buffer,
                     _i64=i64, _p=pout, _null=null_children):
            return _f(_t, slot, b, has_children,
                      _null if not has_children else _fb(_i64, children),
                      first, navail, parent_unexplored, ext_vertex,
                      ext_position, tree_quiesced, _p(out))

        ops.select = select
        ops.fill = fill
        ops.complete = complete
        return ops


def make_kernels():
    """Build the C-extension kernel set (raises :class:`BackendUnavailable`)."""
    return make_kernel_set("cext", _CLib())
