"""The event-drain inner loop, extracted from ``sim/engine.py``.

Unlike the set/span kernels this loop has exactly one implementation,
shared by every backend: each drained event runs an arbitrary Python
callback (policy hooks, task completions), so the loop *itself* cannot
move to C.  What moves to C instead is the work **between** the two
events a task costs: under a compiled backend the macro-step core
(:mod:`repro.sim.backend.macro`) drains a task's whole booking — the
dozen stages the start event used to walk through Python — in one
``task_fastpath`` call, escaping back to the per-event path only when
a precondition fails.  This loop then sees exactly two events per task
either way; the macro core changes what the start event *does*, never
what this loop observes.  What the extraction buys:

* the loop handles *typed events* — ``(owner, payload)`` tuples posted
  by :meth:`Engine.post` — without allocating a closure per event, and
  batches consecutive same-owner tuples within a bucket into one
  ``owner.dispatch_events(payloads)`` cohort call (the struct-of-arrays
  PE completion path),
* the ``Engine._pending`` counter is maintained bucket-at-a-time here
  (one subtraction per timestamp instead of a per-event count), which is
  what makes :meth:`Engine.pending` O(1),
* profilers and the kernel benchmarks measure the drain as a unit.

Exactness: a cohort call is defined as equivalent to dispatching each
payload in FIFO order (``PE.dispatch_events`` preserves per-task side
-effect order; instrumented PEs fall back to per-task dispatch), and a
mixed bucket executes plain callables and tuples in exactly the
scheduled order.  On a callback exception the rest of the bucket is
dropped with it — ``_pending`` was already debited for the whole
bucket, so the counter stays consistent with the queue.
"""

from __future__ import annotations

import heapq
from typing import Optional

_INFINITY = float("inf")


def drain(engine, until: Optional[float], max_events: Optional[int]) -> int:
    """Run ``engine``'s queue; returns the number of events executed.

    Semantics documented on :meth:`Engine.run` (which delegates here).
    """
    executed = 0
    bound = _INFINITY if until is None else until
    times = engine._times
    buckets = engine._buckets
    heappop = heapq.heappop

    if max_events is None:
        while times:
            time = times[0]
            if time > bound:
                break
            heappop(times)
            engine.now = time
            bucket = buckets.pop(time)
            nb = len(bucket)
            executed += nb
            engine._pending -= nb
            i = 0
            while i < nb:
                ev = bucket[i]
                if ev.__class__ is tuple:
                    owner = ev[0]
                    j = i + 1
                    while j < nb:
                        nxt = bucket[j]
                        if nxt.__class__ is not tuple or nxt[0] is not owner:
                            break
                        j += 1
                    if j - i == 1:
                        owner.dispatch_event(ev[1])
                    else:
                        owner.dispatch_events([bucket[k][1] for k in range(i, j)])
                    i = j
                else:
                    ev()
                    i += 1
        return executed

    # max_events path (tests and stepped execution): per-event counting,
    # re-queueing the bucket remainder on an early stop ahead of any
    # same-time events the executed callbacks scheduled.
    heappush = heapq.heappush
    while times:
        time = times[0]
        if time > bound:
            break
        heappop(times)
        engine.now = time
        bucket = buckets.pop(time)
        engine._pending -= len(bucket)
        i = 0
        n = len(bucket)
        while i < n:
            ev = bucket[i]
            i += 1
            if ev.__class__ is tuple:
                ev[0].dispatch_event(ev[1])
            else:
                ev()
            executed += 1
            if executed >= max_events:
                break
        if i < n:
            rest = bucket[i:]
            engine._pending += len(rest)
            fresh = buckets.get(time)
            if fresh is None:
                buckets[time] = rest
                heappush(times, time)
            else:
                rest.extend(fresh)
                buckets[time] = rest
        if executed >= max_events:
            break
    return executed
