"""Pure python/numpy kernel backend — the reference implementation.

These are the exact kernels the simulator ran before the backend layer
existed: the searchsorted set operations from ``mining.setops`` and the
tiered span-residency / EMA folds lifted verbatim out of
``sim/memory.py``.  Every other backend is differential-tested against
this one (``tests/test_backend_parity.py``), the same way ``Cache`` is
tested against ``ReferenceCache``.

Kernel contracts
----------------
``intersect(a, b)`` / ``subtract(a, b)``
    General case only — both operands non-empty sorted unique ``int64``
    arrays; the trivial cases live in the ``setops`` dispatchers so all
    backends share them.  Results are sorted unique ``int64``.

``intersect_multi(arrays)``
    Chained intersection of two or more operands, presorted
    smallest-first by the dispatcher, first operand non-empty.  One
    kernel call per chain lets compiled backends amortize their call
    overhead across all operands.

``span_resident_stamp(cache, first_line, last_line)``
    If every line of the span is resident in ``cache``, stamp the hit
    ways in address order with consecutive ticks (advancing
    ``cache._tick``) and return True; otherwise change nothing and
    return False.  Hit/miss *statistics* are the caller's job — the
    writeback path refreshes LRU without counting hits.

``ema_fold(window, latency, n, scratch)``
    Fold ``n`` identical latencies into a ``PELatencyWindow``.
    ``scratch`` is a reusable 2-element float64 buffer for compiled
    backends; the pure loop ignores it.
"""

from __future__ import annotations

import numpy as np

from ...mining.setops import (
    _intersect_multi_numpy,
    _intersect_numpy,
    _subtract_numpy,
)

intersect = _intersect_numpy
subtract = _subtract_numpy
intersect_multi = _intersect_multi_numpy


def span_resident_stamp(cache, first_line: int, last_line: int) -> bool:
    """Tiered all-resident probe + batch LRU stamp (see module docs).

    The tiers mirror the span sizes the simulator produces: a scalar
    dict walk for narrow spans (numpy setup costs more than a few dict
    probes), a listcomp probe with batch stamping for mid-size spans,
    and the vectorized tag-array probe for very wide ones.  All three
    leave identical state: hit ways stamped in address order with
    consecutive ticks, nothing touched on a miss.
    """
    n = last_line - first_line + 1
    tick = cache._tick
    if n >= 64:
        sets, hit_ways, mask = cache._span_probe(first_line, last_line)
        if not mask.all():
            return False
        cache._stamps[sets * cache.assoc + hit_ways.argmax(axis=1)] = np.arange(
            tick, tick + n, dtype=np.int64
        )
    elif n >= 8:
        where_get = cache._where.get
        slots = [where_get(addr) for addr in range(first_line, last_line + 1)]
        if None in slots:
            return False
        cache._stamps[slots] = np.arange(tick, tick + n, dtype=np.int64)
    else:
        where_get = cache._where.get
        slots = []
        append = slots.append
        for addr in range(first_line, last_line + 1):
            slot = where_get(addr)
            if slot is None:
                return False
            append(slot)
        stamps = cache._stamps
        for slot in slots:
            stamps[slot] = tick
            tick += 1
        cache._tick = tick
        return True
    cache._tick = tick + n
    return True


def ema_fold(window, latency: float, n: int, scratch=None) -> None:
    """Per-access EMA folds of ``n`` identical latencies (exact loop)."""
    alpha = window.alpha
    value = window.value
    total = window.total_latency
    for _ in range(n):
        value += alpha * (latency - value)
        total += latency
    window.value = value
    window.total_latency = total
    window.samples += n
