"""Numba-jitted kernel backend.

JIT-compiles the loop kernels of :mod:`._loops` with ``nopython`` mode.
Import fails with :class:`BackendUnavailable` when numba is not
installed; the registry treats that as "fall back to the next backend".

``cache=True`` persists the compiled machine code next to the package,
so only the first process ever pays the JIT cost; ``fastmath`` stays
off (the default) so the float kernels keep the exact IEEE semantics
the pure loops have.
"""

from __future__ import annotations

from . import _loops
from .compiled import BackendUnavailable, make_kernel_set

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit
except ImportError as exc:  # pragma: no cover - environment dependent
    njit = None
    _IMPORT_ERROR = exc


class _JittedLib:
    """Lazily-jitted view of the loop kernels.

    Compilation happens on first call per kernel, not at backend
    selection, so selecting ``numba`` never stalls a short run on
    whole-library JIT.
    """

    def __init__(self) -> None:
        jit = njit(cache=True, nogil=True)
        self.intersect_loop = jit(_loops.intersect_loop)
        self.subtract_loop = jit(_loops.subtract_loop)
        self.resident_stamp_loop = jit(_loops.resident_stamp_loop)
        self.ema_fold_loop = jit(_loops.ema_fold_loop)
        # Macro-step core: bound per PE by the generic numpy-view
        # binder in .macro (the jitted signature matches _loops).
        self.task_fastpath_loop = jit(_loops.task_fastpath_loop)
        # Task-tree scheduler kernels: closed over each tree's arrays
        # by TaskTree._bind_kernels (signatures match _loops).
        self.tree_select_loop = jit(_loops.tree_select_loop)
        self.tree_fill_loop = jit(_loops.tree_fill_loop)
        self.tree_complete_loop = jit(_loops.tree_complete_loop)

    def intersect_multi_loop(self, arrays, out, scratch):
        """Chained pairwise intersections, ping-ponging out/scratch.

        Chaining stays in Python (a handful of jitted pairwise calls);
        the buffers make it allocation-free.  The final survivor always
        ends in ``out``; returns its length.
        """
        intersect = self.intersect_loop
        cur = arrays[0]
        dst, alt = out, scratch
        k = 0
        in_out = True
        for arr in arrays[1:]:
            k = intersect(cur, arr, dst)
            if k == 0:
                return 0
            cur = dst[:k]
            in_out = dst is out
            dst, alt = alt, dst
        if not in_out:
            out[:k] = cur
        return k


def make_kernels():
    """Build the numba kernel set (raises :class:`BackendUnavailable`)."""
    if njit is None:
        raise BackendUnavailable(f"numba is not installed: {_IMPORT_ERROR}")
    return make_kernel_set("numba", _JittedLib())
