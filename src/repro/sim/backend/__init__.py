"""Runtime-selectable kernel backends for the simulator hot path.

The hottest validated kernels — sorted-set intersection/subtraction
(``mining/setops.py``), span residency/stamping and EMA latency folds
(``sim/memory.py``), and the event-drain inner loop (``sim/engine.py``)
— live behind this interface with three implementations:

``pure``
    The existing python/numpy reference (:mod:`.pure`).  Always
    available; every other backend is differential-tested against it.
``numba``
    The loop kernels of :mod:`._loops` JIT-compiled by numba
    (:mod:`.numba_backend`).  Available when numba is installed.
``cext``
    The same loops as C, compiled on demand with the system compiler
    and loaded through cffi's ABI mode (:mod:`.cext`).  Available when
    cffi and a C compiler are present.

Selection
---------
Explicit wins over ambient: ``SimConfig.backend`` (per simulation) >
``REPRO_BACKEND`` (per process) > ``auto``.  ``auto`` picks the first
available of ``cext`` > ``numba`` > ``pure``.  A requested backend
whose dependency is missing falls back down that same order with a
one-time warning — simulations never fail because a toolchain is
absent.  All backends produce byte-identical accounted metrics; only
wall time differs (``repro validate`` and the golden registry hold
under every backend).

Selection is process-global: activating a backend rebinds the
``setops`` implementation globals and the kernel set that
``MemorySystem`` instances consult.  Simulations are single-threaded
and activation happens at ``Accelerator`` construction, so a process
mixing configs simply switches before each run.
"""

from __future__ import annotations

import os
import time
import warnings
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple

from ...mining import setops as _setops
from . import _loops
from . import pure as _pure
from .compiled import BackendUnavailable, KernelSet
from .engine_loop import drain as engine_drain

__all__ = [
    "BackendUnavailable",
    "KernelSet",
    "activate",
    "active",
    "available_backends",
    "engine_drain",
    "instrument",
    "resolution",
    "resolve_name",
]

#: ``auto`` preference order (fastest first, ``pure`` always last).
AUTO_ORDER = ("cext", "numba", "pure")

#: Names accepted by ``SimConfig.backend`` / ``REPRO_BACKEND``.
BACKEND_NAMES = ("auto",) + AUTO_ORDER


def _make_pure() -> KernelSet:
    return KernelSet(
        "pure",
        False,
        _pure.intersect,
        _pure.subtract,
        _pure.intersect_multi,
        _pure.span_resident_stamp,
        _pure.ema_fold,
        # The interpreted reference of the macro-step core: slower than
        # per-event booking, but lets the parity suite force the macro
        # path under the pure backend (config.macro_step=True).
        task_fastpath=_loops.task_fastpath_loop,
        # Interpreted task-tree scheduler kernels, for the same reason:
        # config.tree_kernels=True differential-tests them under pure.
        tree_select=_loops.tree_select_loop,
        tree_fill=_loops.tree_fill_loop,
        tree_complete=_loops.tree_complete_loop,
    )


def _make_numba() -> KernelSet:
    from . import numba_backend

    return numba_backend.make_kernels()


def _make_cext() -> KernelSet:
    from . import cext

    return cext.make_kernels()


_FACTORIES = {"pure": _make_pure, "numba": _make_numba, "cext": _make_cext}

_instances: Dict[str, KernelSet] = {}
_failures: Dict[str, str] = {}
_warned: set = set()


def _get_instance(name: str) -> KernelSet:
    """Build-or-reuse one backend; raises :class:`BackendUnavailable`."""
    inst = _instances.get(name)
    if inst is not None:
        return inst
    failure = _failures.get(name)
    if failure is not None:
        raise BackendUnavailable(failure)
    try:
        inst = _FACTORIES[name]()
    except BackendUnavailable as exc:
        _failures[name] = str(exc)
        raise
    _instances[name] = inst
    return inst


def _install(kernels: KernelSet) -> None:
    global _active
    _active = kernels
    _setops._intersect_impl = kernels.intersect
    _setops._subtract_impl = kernels.subtract
    _setops._intersect_multi_impl = kernels.intersect_multi


_active: KernelSet = _get_instance("pure")
_install(_active)

#: How the most recent :func:`activate` resolved (see :func:`resolution`).
_resolution: Dict[str, Optional[str]] = {
    "requested": "auto",
    "resolved": "pure",
    "fallback": None,
}


def resolve_name(name: Optional[str] = None) -> str:
    """The backend name a request resolves to (before availability)."""
    if name:
        return name
    env = os.environ.get("REPRO_BACKEND", "").strip()
    if env:
        if env not in BACKEND_NAMES:
            _warn_once(
                f"REPRO_BACKEND={env!r} is not a known backend "
                f"{BACKEND_NAMES}; using auto"
            )
            return "auto"
        return env
    return "auto"


def _warn_once(message: str) -> None:
    if message not in _warned:
        _warned.add(message)
        warnings.warn(message, RuntimeWarning, stacklevel=3)


def activate(name: Optional[str] = None) -> KernelSet:
    """Select and install a backend; returns the active kernel set.

    ``name=None`` defers to ``REPRO_BACKEND`` / ``auto``.  An
    unavailable request falls back down :data:`AUTO_ORDER` with a
    one-time warning.  Idempotent and cheap when the resolution does
    not change.
    """
    global _resolution
    requested = resolve_name(name)
    candidates = AUTO_ORDER if requested == "auto" else (requested,) + AUTO_ORDER
    fallback: Optional[str] = None
    for idx, candidate in enumerate(candidates):
        try:
            kernels = _get_instance(candidate)
        except BackendUnavailable as exc:
            if idx == 0 and requested != "auto":
                fallback = str(exc)
                _warn_once(
                    f"backend {requested!r} unavailable ({exc}); falling back"
                )
            continue
        if kernels is not _active:
            _install(kernels)
        _resolution = {
            "requested": requested,
            "resolved": candidate,
            "fallback": fallback,
        }
        return kernels
    raise AssertionError("pure backend must always be constructible")


def resolution() -> Dict[str, Optional[str]]:
    """How the last :func:`activate` call resolved.

    ``{"requested", "resolved", "fallback"}`` — ``fallback`` is the
    unavailability detail when the explicit request could not be
    honored, else ``None``.  Run manifests and distributed workers
    record this so a silent cext→pure downgrade (the one-time warning
    is easy to lose in worker processes) stays visible after the run.
    """
    return dict(_resolution)


def active() -> KernelSet:
    """The currently installed kernel set."""
    return _active


def available_backends() -> Dict[str, Tuple[bool, str]]:
    """Availability of every backend: name -> (available, detail).

    Probing builds each backend once (compiling the C library on first
    use); failures are cached and reported as the detail string.
    """
    out: Dict[str, Tuple[bool, str]] = {}
    for name in AUTO_ORDER:
        try:
            _get_instance(name)
            out[name] = (True, "ok")
        except BackendUnavailable as exc:
            out[name] = (False, str(exc))
    return out


@contextmanager
def instrument() -> Iterator[Dict[str, list]]:
    """Per-kernel call/time attribution for the active backend.

    Wraps every kernel of the active set with a ``perf_counter`` timer
    for the duration of the context and yields a live mapping
    ``kernel -> [calls, seconds]``.  The wrappers are installed through
    the same path as backend activation, so existing ``MemorySystem``
    instances and the ``setops`` dispatchers all route through them.
    Do not switch backends inside the context.
    """
    kernels = _active
    stats: Dict[str, list] = {k: [0, 0.0] for k in KernelSet.KERNELS}
    originals = {k: getattr(kernels, k) for k in KernelSet.KERNELS}
    perf = time.perf_counter

    def _wrap(record: list, fn):
        def timed(*args, **kwargs):
            t0 = perf()
            result = fn(*args, **kwargs)
            record[1] += perf() - t0
            record[0] += 1
            return result

        return timed

    for k, fn in originals.items():
        setattr(kernels, k, _wrap(stats[k], fn))
    _install(kernels)
    try:
        yield stats
    finally:
        for k, fn in originals.items():
            setattr(kernels, k, fn)
        _install(kernels)
