"""Processing element: pipeline, execution slots, FUs and local memory.

The PE (Figure 4(a)) executes tasks through five pipelined units —
decoder, dispatch, issue, FUs, spawn — each with a one-task-per-cycle
entry throughput; a task occupies one of ``execution_width`` execution
slots from decode to spawn.  Inputs are staged through the SPM: the
dispatch unit fetches intermediate results via the private L1 and
streams neighbor sets from the L2, the issue unit fires when inputs are
ready, and the FUs chew through divider segments on the IU pool.  For
large-degree vertices whose working set exceeds the task's SPM share,
the fetch/compute stages run for multiple rounds (§3.1).

The simulator books all stage times analytically when the task starts:
every shared resource (pipeline units, L2 port, DRAM channels, IU
servers) is a booked-until-time model, so contention is preserved while
each task costs only two events.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from ..core.task import SimTask, TaskState
from ..core.tokens import SetBufferMap
from ..errors import SimulationError
from ..mining.setops import segment_count
from .fu import IUPool
from .memory import Scratchpad

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.policies.base import SchedulingPolicy
    from .accelerator import Accelerator

PolicyFactory = Callable[["PE"], "SchedulingPolicy"]


class PE:
    """One processing element with its policy-driven task scheduler."""

    def __init__(self, pe_id: int, accel: "Accelerator", policy_factory: PolicyFactory) -> None:
        self.pe_id = pe_id
        self.accel = accel
        self.engine = accel.engine
        self.config = accel.config
        self.memory = accel.memory
        self.context = accel.context
        self.schedule = accel.schedule
        graph = accel.graph

        buffer_lines = max(1, -(-graph.max_degree * 4 // self.config.cache_line_bytes))
        buffers = max(self.config.tokens_per_depth, self.config.execution_width)
        self.buffer_map = SetBufferMap(
            pe_id,
            self.config.max_pattern_depth,
            buffers,
            buffer_lines,
            self.config.cache_line_bytes,
        )
        self.iu_pool = IUPool(
            self.config.num_ius, self.config.segment_cycles, self.config.num_dividers
        )
        self.spm = Scratchpad(self.config.spm_lines)
        # Per-slot SPM share: a task whose inputs+output exceed it runs
        # the fetch/compute stages in multiple rounds.
        self.spm_share = max(4, self.config.spm_lines // self.config.execution_width)

        # Pipeline units: one task entry per cycle each.
        self._unit_free: Dict[str, float] = {
            "decode": 0.0,
            "dispatch": 0.0,
            "issue": 0.0,
            "spawn": 0.0,
        }
        # Hot-path constants (attribute chains hoisted out of the
        # per-task booking loop).
        self._unit_interval = 1.0 / self.config.unit_tasks_per_cycle
        self._post_spawn_cycles = self.config.spawn_cycles + self.config.tree_access_cycles
        self._line_bytes = self.config.cache_line_bytes
        self._segment_elements = self.config.segment_elements
        self._max_depth = self.schedule.max_depth
        # Shared empty ancestor-set list for root tasks (read-only use).
        self._no_ancestor_sets: List[Optional[object]] = [None] * (
            self.schedule.depth + 1
        )

        self.slots_used = 0
        self.tasks_executed = 0
        self.depth_executed: List[int] = [0] * self.schedule.depth
        self.matches = 0
        self.finish_cycle = 0.0
        self._kick_pending = False

        # Slot-occupancy integrals.
        self._last_integrate = 0.0
        self._busy_slot_cycles = 0.0
        self._idle_with_work_cycles = 0.0

        # Windowed IU utilization for the locality monitor.
        self._iu_win_start = 0.0
        self._iu_win_busy = 0.0
        self._iu_recent = 0.0

        self.policy: "SchedulingPolicy" = policy_factory(self)

    # ------------------------------------------------------------------
    # accounting helpers
    # ------------------------------------------------------------------
    def _integrate(self) -> None:
        now = self.engine.now
        dt = now - self._last_integrate
        if dt <= 0:
            return
        self._busy_slot_cycles += self.slots_used * dt
        if self.policy.has_work():
            idle_slots = self.config.execution_width - self.slots_used
            if idle_slots > 0:
                self._idle_with_work_cycles += idle_slots * dt
        self._last_integrate = now

    def recent_iu_utilization(self) -> float:
        """IU utilization over the last completed monitor epoch."""
        now = self.engine.now
        epoch = self.config.monitor_epoch_cycles
        elapsed = now - self._iu_win_start
        if elapsed >= epoch:
            delta = self.iu_pool.busy_cycles - self._iu_win_busy
            self._iu_recent = min(1.0, delta / (elapsed * self.config.num_ius))
            self._iu_win_start = now
            self._iu_win_busy = self.iu_pool.busy_cycles
        return self._iu_recent

    def footprint_add(self, num_bytes: int) -> None:
        """Report a newly materialized candidate set."""
        self.accel.footprint_add(num_bytes)

    def footprint_remove(self, num_bytes: int) -> None:
        """Report a candidate set whose last reader is done."""
        self.accel.footprint_remove(num_bytes)

    def on_tree_finished(self) -> None:
        """Policy callback: one assigned search tree fully explored."""
        self.finish_cycle = self.engine.now
        self.kick()

    # ------------------------------------------------------------------
    # dispatch loop
    # ------------------------------------------------------------------
    def kick(self) -> None:
        """Request a dispatch pass (coalesced within the current cycle)."""
        if self._kick_pending:
            return
        self._kick_pending = True
        self.engine.after(0, self._dispatch)

    def _dispatch(self) -> None:
        self._kick_pending = False
        self._integrate()
        self.accel.feed_roots(self)
        while self.slots_used < self.config.execution_width:
            task = self.policy.select_task()
            if task is None:
                break
            self._start_task(task)
        self.accel.check_done()

    def _enter_unit(self, name: str, at: float) -> float:
        free = self._unit_free[name]
        start = at if at >= free else free
        self._unit_free[name] = start + self._unit_interval
        return start

    # ------------------------------------------------------------------
    # task execution (all stage times booked analytically)
    # ------------------------------------------------------------------
    def _start_task(self, task: SimTask) -> None:
        self._integrate()
        self.slots_used += 1
        task.state = TaskState.EXECUTING
        now = self.engine.now
        config = self.config
        unit_free = self._unit_free
        interval = self._unit_interval
        memory = self.memory
        engine_at = self.engine.at

        free = unit_free["decode"]
        start = now if now >= free else free
        unit_free["decode"] = start + interval
        t = start + config.decode_cycles
        free = unit_free["dispatch"]
        start = t if t >= free else free
        unit_free["dispatch"] = start + interval
        t = start + config.dispatch_cycles

        # Fetching this task's vertex touched one line of the parent's
        # candidate set (the Wait_Vertex step of spawning/extending);
        # consecutive siblings hit the same line — sibling locality.
        parent = task.parent
        if parent is not None and parent.set_address is not None:
            vertex_line = (parent.set_address + task.child_index * 4) // self._line_bytes
            t = memory.fetch_intermediate_line(self.pe_id, vertex_line, t)

        if task.depth >= self._max_depth:
            # Leaf task: report the match, no set operation.
            free = unit_free["spawn"]
            at = t + config.leaf_cycles
            start = at if at >= free else free
            unit_free["spawn"] = start + interval
            t = start + self._post_spawn_cycles
            engine_at(t, lambda: self._complete_task(task))
            return

        expansion = self.context.expand(task.embedding, self._ancestor_sets(task))
        task.expansion = expansion

        inter_lines = self._intermediate_lines(task)
        graph_lines = self._graph_lines(task)
        out_bytes = len(expansion.candidates) * 4
        set_address = task.set_address
        if set_address is not None and out_bytes > 0:
            line_bytes = self._line_bytes
            out_lines = list(
                range(
                    set_address // line_bytes,
                    (set_address + out_bytes - 1) // line_bytes + 1,
                )
            )
        else:
            out_lines = []
        segments = segment_count(expansion.comparisons, self._segment_elements)

        total_lines = len(inter_lines) + len(graph_lines) + len(out_lines)
        if total_lines <= self.spm_share:
            # Single round (the overwhelmingly common case): the chunk
            # slices `x[0::1]` degenerate to the full lists.
            t_inter = memory.fetch_intermediate(self.pe_id, inter_lines, t) if inter_lines else t
            t_graph = memory.fetch_graph(self.pe_id, graph_lines, t) if graph_lines else t
            ready = t_inter if t_inter >= t_graph else t_graph
            free = unit_free["issue"]
            start = ready if ready >= free else free
            unit_free["issue"] = start + interval
            t = self.iu_pool.submit(segments, start + 1.0)
        else:
            rounds = -(-total_lines // self.spm_share)
            for r in range(rounds):
                ichunk = inter_lines[r::rounds]
                gchunk = graph_lines[r::rounds]
                schunk = segments // rounds + (1 if r < segments % rounds else 0)
                t_inter = memory.fetch_intermediate(self.pe_id, ichunk, t) if ichunk else t
                t_graph = memory.fetch_graph(self.pe_id, gchunk, t) if gchunk else t
                ready = max(t_inter, t_graph)
                ready = self._enter_unit("issue", ready) + 1.0
                t = self.iu_pool.submit(schunk, ready)

        # Writeback: the produced candidate set lands in the L1.
        if out_lines:
            memory.install_intermediate(self.pe_id, out_lines)
            wb = len(out_lines) / config.fetch_ports
            t += wb if wb > 1.0 else 1.0
        free = unit_free["spawn"]
        start = t if t >= free else free
        unit_free["spawn"] = start + interval
        t = start + self._post_spawn_cycles
        engine_at(t, lambda: self._complete_task(task))

    def _vertex_fetch_line(self, task: SimTask) -> Optional[int]:
        """L1 line holding this task's vertex in the parent candidate set."""
        parent = task.parent
        if parent is None or parent.set_address is None:
            return None
        byte = parent.set_address + task.child_index * 4
        return byte // self.config.cache_line_bytes

    def _ancestor_sets(self, task: SimTask) -> List[Optional[object]]:
        """Materialized candidate sets along this task's ancestor path.

        ``sets[e]`` is the candidate set *for* depth ``e`` (produced by
        the depth ``e - 1`` ancestor); only ancestors still holding their
        expansion contribute, which is guaranteed for the reused depth —
        its producer is Resting exactly because descendants may read it.

        The list is cached on the parent (``child_sets``) and shared by
        all siblings: an ancestor's expansion is written once, before any
        descendant exists, and never replaced, so the walk result is
        identical for every child.  ``expand`` only reads the list.
        """
        parent = task.parent
        if parent is None:
            return self._no_ancestor_sets
        sets = parent.child_sets
        if sets is None:
            sets = self._child_sets(parent)
        return sets

    def _child_sets(self, parent: SimTask) -> List[Optional[object]]:
        grandparent = parent.parent
        if grandparent is None:
            sets: List[Optional[object]] = [None] * (self.schedule.depth + 1)
        else:
            base = grandparent.child_sets
            if base is None:
                base = self._child_sets(grandparent)
            sets = list(base)
        if parent.expansion is not None:
            sets[parent.depth + 1] = parent.expansion.candidates
        parent.child_sets = sets
        return sets

    def _intermediate_lines(self, task: SimTask) -> List[int]:
        """L1 line addresses of the reused ancestor candidate set."""
        expansion = task.expansion
        if expansion is None or expansion.reused_depth is None:
            return []
        producer = task.ancestor_at_depth(expansion.reused_depth - 1)
        if producer.set_address is None:
            raise SimulationError(
                f"reused set of depth {expansion.reused_depth} has no address"
            )
        # With a reused ancestor, the first op's left input is always that
        # intermediate set (either the fetch or the head of the residual
        # merge chain).
        num_bytes = expansion.ops[0].left.size * 4
        if num_bytes <= 0:
            return []
        base = producer.set_address
        line_bytes = self._line_bytes
        return list(
            range(base // line_bytes, (base + num_bytes - 1) // line_bytes + 1)
        )

    def _graph_lines(self, task: SimTask) -> List[int]:
        """L2 line addresses of all neighbor-set inputs.

        Uses the accelerator's precomputed per-vertex line spans — a
        neighbor input always covers the vertex's whole adjacency, so its
        lines are a fixed ``range`` known at graph-load time.  Empty
        neighbor sets contribute no lines (``line_addrs`` of zero bytes).
        """
        first = self.accel.graph_first_line
        last = self.accel.graph_last_line
        lines: List[int] = []
        extend = lines.extend
        for inp in task.expansion.neighbors:
            if inp.size:
                ref = inp.ref
                extend(range(first[ref], last[ref] + 1))
        return lines

    def _complete_task(self, task: SimTask) -> None:
        self._integrate()
        task.state = TaskState.COMPLETE
        self.tasks_executed += 1
        self.depth_executed[task.depth] += 1
        if task.depth >= self.schedule.max_depth:
            self.matches += 1
            task.children_vertices = []
        else:
            task.children_vertices = self.context.children(
                task.embedding, task.expansion.candidates
            )
            self.footprint_add(len(task.expansion.candidates) * 4)
        self.slots_used -= 1
        self.policy.on_task_complete(task)
        self.kick()
