"""Processing element: pipeline, execution slots, FUs and local memory.

The PE (Figure 4(a)) executes tasks through five pipelined units —
decoder, dispatch, issue, FUs, spawn — each with a one-task-per-cycle
entry throughput; a task occupies one of ``execution_width`` execution
slots from decode to spawn.  Inputs are staged through the SPM: the
dispatch unit fetches intermediate results via the private L1 and
streams neighbor sets from the L2, the issue unit fires when inputs are
ready, and the FUs chew through divider segments on the IU pool.  For
large-degree vertices whose working set exceeds the task's SPM share,
the fetch/compute stages run for multiple rounds (§3.1).

The simulator books all stage times analytically when the task starts:
every shared resource (pipeline units, L2 port, DRAM channels, IU
servers) is a booked-until-time model, so contention is preserved while
each task costs only two events.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from ..core.task import SimTask, TaskState
from ..core.tokens import SetBufferMap
from ..errors import SimulationError
from .fu import IUPool
from .memory import Scratchpad, span_round_chunk, spans_round_chunk

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.policies.base import SchedulingPolicy
    from .accelerator import Accelerator

PolicyFactory = Callable[["PE"], "SchedulingPolicy"]

# Enum members resolved once (descriptor lookups add up on the per-task path).
_EXECUTING = TaskState.EXECUTING
_COMPLETE = TaskState.COMPLETE


class PE:
    """One processing element with its policy-driven task scheduler."""

    def __init__(self, pe_id: int, accel: "Accelerator", policy_factory: PolicyFactory) -> None:
        self.pe_id = pe_id
        self.accel = accel
        self.engine = accel.engine
        self.config = accel.config
        self.memory = accel.memory
        self.context = accel.context
        self.schedule = accel.schedule
        graph = accel.graph

        buffer_lines = max(1, -(-graph.max_degree * 4 // self.config.cache_line_bytes))
        buffers = max(self.config.tokens_per_depth, self.config.execution_width)
        self.buffer_map = SetBufferMap(
            pe_id,
            self.config.max_pattern_depth,
            buffers,
            buffer_lines,
            self.config.cache_line_bytes,
        )
        self.iu_pool = IUPool(
            self.config.num_ius, self.config.segment_cycles, self.config.num_dividers
        )
        self.spm = Scratchpad(self.config.spm_lines)
        # Per-slot SPM share: a task whose inputs+output exceed it runs
        # the fetch/compute stages in multiple rounds.
        self.spm_share = max(4, self.config.spm_lines // self.config.execution_width)

        # Pipeline units: one task entry per cycle each.
        self._unit_free: Dict[str, float] = {
            "decode": 0.0,
            "dispatch": 0.0,
            "issue": 0.0,
            "spawn": 0.0,
        }
        # Hot-path constants (attribute chains hoisted out of the
        # per-task booking loop).
        self._unit_interval = 1.0 / self.config.unit_tasks_per_cycle
        self._post_spawn_cycles = self.config.spawn_cycles + self.config.tree_access_cycles
        self._line_bytes = self.config.cache_line_bytes
        self._segment_elements = int(self.config.segment_elements)
        self._max_depth = self.schedule.max_depth
        self._iu_submit = self.iu_pool.submit
        # Shared empty ancestor-set list for root tasks (read-only use).
        self._no_ancestor_sets: List[Optional[object]] = [None] * (
            self.schedule.depth + 1
        )

        self.slots_used = 0
        self.tasks_executed = 0
        # Tasks whose working set exceeded the SPM share (ran >1 round).
        # Diagnostic only — not part of RunMetrics.
        self.multi_round_tasks = 0
        self.depth_executed: List[int] = [0] * self.schedule.depth
        self.matches = 0
        self.finish_cycle = 0.0
        self._kick_pending = False

        # Slot-occupancy integrals.
        self._last_integrate = 0.0
        self._busy_slot_cycles = 0.0
        self._idle_with_work_cycles = 0.0

        # Windowed IU utilization for the locality monitor.
        self._iu_win_start = 0.0
        self._iu_win_busy = 0.0
        self._iu_recent = 0.0

        self.policy: "SchedulingPolicy" = policy_factory(self)

    # ------------------------------------------------------------------
    # accounting helpers
    # ------------------------------------------------------------------
    def _integrate(self) -> None:
        now = self.engine.now
        dt = now - self._last_integrate
        if dt <= 0:
            return
        self._busy_slot_cycles += self.slots_used * dt
        if self.policy.has_work():
            idle_slots = self.config.execution_width - self.slots_used
            if idle_slots > 0:
                self._idle_with_work_cycles += idle_slots * dt
        self._last_integrate = now

    def recent_iu_utilization(self) -> float:
        """IU utilization over the last completed monitor epoch."""
        now = self.engine.now
        epoch = self.config.monitor_epoch_cycles
        elapsed = now - self._iu_win_start
        if elapsed >= epoch:
            delta = self.iu_pool.busy_cycles - self._iu_win_busy
            self._iu_recent = min(1.0, delta / (elapsed * self.config.num_ius))
            self._iu_win_start = now
            self._iu_win_busy = self.iu_pool.busy_cycles
        return self._iu_recent

    def footprint_add(self, num_bytes: int) -> None:
        """Report a newly materialized candidate set."""
        self.accel.footprint_add(num_bytes)

    def footprint_remove(self, num_bytes: int) -> None:
        """Report a candidate set whose last reader is done."""
        self.accel.footprint_remove(num_bytes)

    def on_tree_finished(self) -> None:
        """Policy callback: one assigned search tree fully explored."""
        self.finish_cycle = self.engine.now
        self.kick()

    # ------------------------------------------------------------------
    # dispatch loop
    # ------------------------------------------------------------------
    def kick(self) -> None:
        """Request a dispatch pass (coalesced within the current cycle)."""
        if self._kick_pending:
            return
        self._kick_pending = True
        self.engine.after(0, self._dispatch)

    def _dispatch(self) -> None:
        self._kick_pending = False
        # Guarded call: a completion at this cycle already integrated.
        if self.engine.now > self._last_integrate:
            self._integrate()
        self.accel.feed_roots(self)
        width = self.config.execution_width
        select_task = self.policy.select_task
        while self.slots_used < width:
            task = select_task()
            if task is None:
                break
            self._start_task(task)
        self.accel.check_done()

    def _enter_unit(self, name: str, at: float) -> float:
        free = self._unit_free[name]
        start = at if at >= free else free
        self._unit_free[name] = start + self._unit_interval
        return start

    # ------------------------------------------------------------------
    # task execution (all stage times booked analytically)
    # ------------------------------------------------------------------
    def _start_task(self, task: SimTask) -> None:
        now = self.engine.now
        # Guarded call: the dispatch pass at this cycle already integrated.
        if now > self._last_integrate:
            self._integrate()
        self.slots_used += 1
        task.state = _EXECUTING
        config = self.config
        unit_free = self._unit_free
        interval = self._unit_interval
        memory = self.memory
        engine_at = self.engine.at

        free = unit_free["decode"]
        start = now if now >= free else free
        unit_free["decode"] = start + interval
        t = start + config.decode_cycles
        free = unit_free["dispatch"]
        start = t if t >= free else free
        unit_free["dispatch"] = start + interval
        t = start + config.dispatch_cycles

        # Fetching this task's vertex touched one line of the parent's
        # candidate set (the Wait_Vertex step of spawning/extending);
        # consecutive siblings hit the same line — sibling locality.
        parent = task.parent
        if parent is not None and parent.set_address is not None:
            vertex_line = (parent.set_address + task.child_index * 4) // self._line_bytes
            t = memory.fetch_intermediate_line(self.pe_id, vertex_line, t)

        if task.depth >= self._max_depth:
            # Leaf task: report the match, no set operation.
            free = unit_free["spawn"]
            at = t + config.leaf_cycles
            start = at if at >= free else free
            unit_free["spawn"] = start + interval
            t = start + self._post_spawn_cycles
            engine_at(t, lambda: self._complete_task(task))
            return

        # Ancestor sets inline (see _ancestor_sets): parent is at hand.
        if parent is None:
            sets = self._no_ancestor_sets
        else:
            sets = parent.child_sets
            if sets is None:
                sets = self._child_sets(parent)
        expansion = self.context.expand(task.embedding, sets)
        task.expansion = expansion

        inter_span = self._intermediate_span(task)
        graph_spans, graph_count = self._graph_spans(task)
        out_bytes = len(expansion.candidates) * 4
        set_address = task.set_address
        if set_address is not None and out_bytes > 0:
            line_bytes = self._line_bytes
            out_first = set_address // line_bytes
            out_last = (set_address + out_bytes - 1) // line_bytes
            out_count = out_last - out_first + 1
        else:
            out_first = out_last = -1
            out_count = 0
        # segment_count inlined (segment_elements validated positive).
        comparisons = expansion.comparisons
        segments = (
            -(-comparisons // self._segment_elements) if comparisons > 0 else 0
        )

        inter_count = 0 if inter_span is None else inter_span[1] - inter_span[0] + 1
        total_lines = inter_count + graph_count + out_count
        if total_lines <= self.spm_share:
            # Single round (the overwhelmingly common case): the whole
            # working set streams through as unbroken spans.
            t_inter = (
                memory.fetch_intermediate_span(self.pe_id, inter_span[0], inter_span[1], t)
                if inter_span is not None
                else t
            )
            t_graph = memory.fetch_graph_spans(self.pe_id, graph_spans, t) if graph_spans else t
            ready = t_inter if t_inter >= t_graph else t_graph
            free = unit_free["issue"]
            start = ready if ready >= free else free
            unit_free["issue"] = start + interval
            t = self._iu_submit(segments, start + 1.0)
        else:
            self.multi_round_tasks += 1
            rounds = -(-total_lines // self.spm_share)
            for r in range(rounds):
                ichunk = (
                    span_round_chunk(inter_span[0], inter_span[1], r, rounds)
                    if inter_span is not None
                    else ()
                )
                gchunk = spans_round_chunk(graph_spans, r, rounds)
                schunk = segments // rounds + (1 if r < segments % rounds else 0)
                t_inter = memory.fetch_intermediate(self.pe_id, ichunk, t) if ichunk else t
                t_graph = memory.fetch_graph(self.pe_id, gchunk, t) if gchunk else t
                ready = max(t_inter, t_graph)
                ready = self._enter_unit("issue", ready) + 1.0
                t = self.iu_pool.submit(schunk, ready)

        # Writeback: the produced candidate set lands in the L1.
        if out_count:
            memory.install_intermediate_span(self.pe_id, out_first, out_last)
            wb = out_count / config.fetch_ports
            t += wb if wb > 1.0 else 1.0
        free = unit_free["spawn"]
        start = t if t >= free else free
        unit_free["spawn"] = start + interval
        t = start + self._post_spawn_cycles
        engine_at(t, lambda: self._complete_task(task))

    def _ancestor_sets(self, task: SimTask) -> List[Optional[object]]:
        """Materialized candidate sets along this task's ancestor path.

        ``sets[e]`` is the candidate set *for* depth ``e`` (produced by
        the depth ``e - 1`` ancestor); only ancestors still holding their
        expansion contribute, which is guaranteed for the reused depth —
        its producer is Resting exactly because descendants may read it.

        The list is cached on the parent (``child_sets``) and shared by
        all siblings: an ancestor's expansion is written once, before any
        descendant exists, and never replaced, so the walk result is
        identical for every child.  ``expand`` only reads the list.
        """
        parent = task.parent
        if parent is None:
            return self._no_ancestor_sets
        sets = parent.child_sets
        if sets is None:
            sets = self._child_sets(parent)
        return sets

    def _child_sets(self, parent: SimTask) -> List[Optional[object]]:
        grandparent = parent.parent
        if grandparent is None:
            sets: List[Optional[object]] = [None] * (self.schedule.depth + 1)
        else:
            base = grandparent.child_sets
            if base is None:
                base = self._child_sets(grandparent)
            sets = list(base)
        if parent.expansion is not None:
            sets[parent.depth + 1] = parent.expansion.candidates
        parent.child_sets = sets
        return sets

    def _intermediate_span(self, task: SimTask) -> Optional[Tuple[int, int]]:
        """L1 line span of the reused ancestor candidate set (or None)."""
        expansion = task.expansion
        if expansion is None or expansion.reused_depth is None:
            return None
        producer = task.ancestor_at_depth(expansion.reused_depth - 1)
        if producer.set_address is None:
            raise SimulationError(
                f"reused set of depth {expansion.reused_depth} has no address"
            )
        # With a reused ancestor, the first op's left input is always that
        # intermediate set (either the fetch or the head of the residual
        # merge chain).
        num_bytes = expansion.ops[0].left.size * 4
        if num_bytes <= 0:
            return None
        base = producer.set_address
        line_bytes = self._line_bytes
        return (base // line_bytes, (base + num_bytes - 1) // line_bytes)

    def _graph_spans(self, task: SimTask) -> Tuple[List[Tuple[int, int]], int]:
        """L2 line spans of all neighbor-set inputs, plus the line total.

        Uses the accelerator's precomputed per-vertex line spans — a
        neighbor input always covers the vertex's whole adjacency, so its
        span ``(first_line, last_line)`` is fixed at graph-load time.
        Empty neighbor sets contribute no span.
        """
        first = self.accel.graph_first_line
        last = self.accel.graph_last_line
        spans: List[Tuple[int, int]] = []
        append = spans.append
        count = 0
        for inp in task.expansion.neighbors:
            if inp.size:
                ref = inp.ref
                f = first[ref]
                l = last[ref]
                append((f, l))
                count += l - f + 1
        return spans, count

    def _complete_task(self, task: SimTask) -> None:
        self._integrate()
        task.state = _COMPLETE
        self.tasks_executed += 1
        self.depth_executed[task.depth] += 1
        if task.depth >= self._max_depth:
            self.matches += 1
            task.children_vertices = []
        else:
            task.children_vertices = self.context.children(
                task.embedding, task.expansion.candidates
            )
            self.footprint_add(len(task.expansion.candidates) * 4)
        self.slots_used -= 1
        self.policy.on_task_complete(task)
        self.kick()
