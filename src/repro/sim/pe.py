"""Processing element: pipeline, execution slots, FUs and local memory.

The PE (Figure 4(a)) executes tasks through five pipelined units —
decoder, dispatch, issue, FUs, spawn — each with a one-task-per-cycle
entry throughput; a task occupies one of ``execution_width`` execution
slots from decode to spawn.  Inputs are staged through the SPM: the
dispatch unit fetches intermediate results via the private L1 and
streams neighbor sets from the L2, the issue unit fires when inputs are
ready, and the FUs chew through divider segments on the IU pool.  For
large-degree vertices whose working set exceeds the task's SPM share,
the fetch/compute stages run for multiple rounds (§3.1).

The simulator books all stage times analytically when the task starts:
every shared resource (pipeline units, L2 port, DRAM channels, IU
servers) is a booked-until-time model, so contention is preserved while
each task costs only two events.

Mutable PE state lives in a :class:`PEStateVector` — parallel arrays
indexed by ``pe_id``, shared by all PEs of one accelerator — rather
than per-instance attributes.  Task completions arrive as typed engine
events (:meth:`Engine.post`): the drain loop batches a run of
same-cycle completions on one PE into a single
:meth:`PE.dispatch_events` call, which advances the whole cohort
through the state-vector row in one pass instead of one closure
callback per task.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

import numpy as np

from ..core.task import SimTask, TaskState
from ..core.tokens import SetBufferMap
from ..errors import SimulationError
from .fu import IUPool
from .memory import Scratchpad, span_round_chunk, spans_round_chunk

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.policies.base import SchedulingPolicy
    from .accelerator import Accelerator

PolicyFactory = Callable[["PE"], "SchedulingPolicy"]

# Enum members resolved once (descriptor lookups add up on the per-task path).
_EXECUTING = TaskState.EXECUTING
_COMPLETE = TaskState.COMPLETE


class PEStateVector:
    """Struct-of-arrays mutable state for all PEs of one accelerator.

    One row per PE: pipeline-unit free times, slot occupancy, task and
    match counters, and the busy/idle slot integrals live in parallel
    arrays indexed by ``pe_id`` instead of per-PE instance attributes.
    The cohort completion path (:meth:`PE.dispatch_events`) folds a
    whole run of same-cycle completions into one pass over a row, and
    metrics collection aggregates straight off the columns.  ``PE``
    exposes its row through properties so external readers and writers
    (invariant checkers, tests) keep the familiar per-PE view.
    """

    __slots__ = (
        "num_pes",
        "decode_free",
        "dispatch_free",
        "issue_free",
        "spawn_free",
        "slots_used",
        "tasks_executed",
        "matches",
        "multi_round_tasks",
        "finish_cycle",
        "last_integrate",
        "busy_slot_cycles",
        "idle_with_work_cycles",
        "depth_executed",
    )

    def __init__(self, num_pes: int, depth: int) -> None:
        self.num_pes = num_pes
        # Pipeline units: one task entry per cycle each.  Numpy storage
        # (rather than Python lists) lets the compiled macro-step core
        # pin per-PE element pointers and book stages without a Python
        # round trip; interpreted readers cast on access so Python-float
        # arithmetic stays exact on the fallback paths.
        self.decode_free = np.zeros(num_pes, dtype=np.float64)
        self.dispatch_free = np.zeros(num_pes, dtype=np.float64)
        self.issue_free = np.zeros(num_pes, dtype=np.float64)
        self.spawn_free = np.zeros(num_pes, dtype=np.float64)
        self.slots_used = np.zeros(num_pes, dtype=np.int64)
        self.tasks_executed = np.zeros(num_pes, dtype=np.int64)
        self.matches = np.zeros(num_pes, dtype=np.int64)
        # Tasks whose working set exceeded the SPM share (ran >1 round).
        # Diagnostic only — not part of RunMetrics.
        self.multi_round_tasks = np.zeros(num_pes, dtype=np.int64)
        self.finish_cycle = np.zeros(num_pes, dtype=np.float64)
        # Slot-occupancy integrals.
        self.last_integrate = np.zeros(num_pes, dtype=np.float64)
        self.busy_slot_cycles = np.zeros(num_pes, dtype=np.float64)
        self.idle_with_work_cycles = np.zeros(num_pes, dtype=np.float64)
        self.depth_executed = np.zeros((num_pes, depth), dtype=np.int64)


class PE:
    """One processing element with its policy-driven task scheduler."""

    def __init__(self, pe_id: int, accel: "Accelerator", policy_factory: PolicyFactory) -> None:
        self.pe_id = pe_id
        self.accel = accel
        self.engine = accel.engine
        self.config = accel.config
        self.memory = accel.memory
        self.context = accel.context
        self.schedule = accel.schedule
        graph = accel.graph

        buffer_lines = max(1, -(-graph.max_degree * 4 // self.config.cache_line_bytes))
        buffers = max(self.config.tokens_per_depth, self.config.execution_width)
        self.buffer_map = SetBufferMap(
            pe_id,
            self.config.max_pattern_depth,
            buffers,
            buffer_lines,
            self.config.cache_line_bytes,
        )
        self.iu_pool = IUPool(
            self.config.num_ius, self.config.segment_cycles, self.config.num_dividers
        )
        self.spm = Scratchpad(self.config.spm_lines)
        # Per-slot SPM share: a task whose inputs+output exceed it runs
        # the fetch/compute stages in multiple rounds.
        self.spm_share = max(4, self.config.spm_lines // self.config.execution_width)

        state = getattr(accel, "pe_state", None)
        if state is None or pe_id >= state.num_pes:
            # Stand-alone construction (unit tests with a stub accel):
            # a private vector holding just this PE's row.
            state = PEStateVector(pe_id + 1, self.schedule.depth)
        self._state = state
        self._row = pe_id

        # Hot-path constants (attribute chains hoisted out of the
        # per-task booking loop).
        self._unit_interval = 1.0 / self.config.unit_tasks_per_cycle
        self._post_spawn_cycles = self.config.spawn_cycles + self.config.tree_access_cycles
        self._line_bytes = self.config.cache_line_bytes
        self._segment_elements = int(self.config.segment_elements)
        self._max_depth = self.schedule.max_depth
        self._iu_submit = self.iu_pool.submit
        # Shared empty ancestor-set list for root tasks (read-only use).
        self._no_ancestor_sets: List[Optional[object]] = [None] * (
            self.schedule.depth + 1
        )

        self._kick_pending = False

        # Macro-step binding: set by the accelerator after all PEs are
        # built (None = per-event booking).  Stand-alone PEs (unit
        # tests with a stub accel) never get one.
        self._macro = None

        # Windowed IU utilization for the locality monitor.
        self._iu_win_start = 0.0
        self._iu_win_busy = 0.0
        self._iu_recent = 0.0

        self.policy: "SchedulingPolicy" = policy_factory(self)
        # Batch dispatch drain: policies exposing select_tasks (Shogun's
        # compiled run-of-tasks over the task tree) fill all free slots
        # in one call; others fall back to per-slot select_task.
        self._select_many = getattr(self.policy, "select_tasks", None)

    # ------------------------------------------------------------------
    # state-vector row views (external readers/writers: invariants,
    # traces, metrics collection, tests).  Hot paths below index the
    # shared arrays directly instead of going through these.
    # ------------------------------------------------------------------
    @property
    def slots_used(self) -> int:
        return int(self._state.slots_used[self._row])

    @slots_used.setter
    def slots_used(self, value: int) -> None:
        self._state.slots_used[self._row] = value

    @property
    def tasks_executed(self) -> int:
        return int(self._state.tasks_executed[self._row])

    @tasks_executed.setter
    def tasks_executed(self, value: int) -> None:
        self._state.tasks_executed[self._row] = value

    @property
    def matches(self) -> int:
        return int(self._state.matches[self._row])

    @matches.setter
    def matches(self, value: int) -> None:
        self._state.matches[self._row] = value

    @property
    def multi_round_tasks(self) -> int:
        return int(self._state.multi_round_tasks[self._row])

    @multi_round_tasks.setter
    def multi_round_tasks(self, value: int) -> None:
        self._state.multi_round_tasks[self._row] = value

    @property
    def finish_cycle(self) -> float:
        return float(self._state.finish_cycle[self._row])

    @finish_cycle.setter
    def finish_cycle(self, value: float) -> None:
        self._state.finish_cycle[self._row] = value

    @property
    def depth_executed(self) -> np.ndarray:
        """This PE's per-depth task counts (a live row of the vector)."""
        return self._state.depth_executed[self._row]

    @property
    def _busy_slot_cycles(self) -> float:
        return float(self._state.busy_slot_cycles[self._row])

    @property
    def _idle_with_work_cycles(self) -> float:
        return float(self._state.idle_with_work_cycles[self._row])

    # ------------------------------------------------------------------
    # accounting helpers
    # ------------------------------------------------------------------
    def _integrate(self) -> None:
        now = self.engine.now
        state = self._state
        row = self._row
        dt = now - float(state.last_integrate[row])
        if dt <= 0:
            return
        used = int(state.slots_used[row])
        state.busy_slot_cycles[row] += used * dt
        if self.policy.has_work():
            idle_slots = self.config.execution_width - used
            if idle_slots > 0:
                state.idle_with_work_cycles[row] += idle_slots * dt
        state.last_integrate[row] = now

    def recent_iu_utilization(self) -> float:
        """IU utilization over the last completed monitor epoch."""
        now = self.engine.now
        epoch = self.config.monitor_epoch_cycles
        elapsed = now - self._iu_win_start
        if elapsed >= epoch:
            delta = self.iu_pool.busy_cycles - self._iu_win_busy
            self._iu_recent = min(1.0, delta / (elapsed * self.config.num_ius))
            self._iu_win_start = now
            self._iu_win_busy = self.iu_pool.busy_cycles
        return self._iu_recent

    def footprint_add(self, num_bytes: int) -> None:
        """Report a newly materialized candidate set."""
        self.accel.footprint_add(num_bytes)

    def footprint_remove(self, num_bytes: int) -> None:
        """Report a candidate set whose last reader is done."""
        self.accel.footprint_remove(num_bytes)

    def on_tree_finished(self) -> None:
        """Policy callback: one assigned search tree fully explored."""
        self._state.finish_cycle[self._row] = self.engine.now
        self.kick()

    # ------------------------------------------------------------------
    # dispatch loop
    # ------------------------------------------------------------------
    def kick(self) -> None:
        """Request a dispatch pass (coalesced within the current cycle)."""
        if self._kick_pending:
            return
        self._kick_pending = True
        self.engine.after(0, self._dispatch)

    def _dispatch(self) -> None:
        self._kick_pending = False
        state = self._state
        row = self._row
        # Guarded call: a completion at this cycle already integrated.
        if self.engine.now > state.last_integrate[row]:
            self._integrate()
        self.accel.feed_roots(self)
        width = self.config.execution_width
        slots = state.slots_used
        select_many = self._select_many
        if select_many is not None:
            # Equivalent to the per-slot loop: bookings never mutate
            # tree state, so one batch selection drains all free slots,
            # stopping (like the loop) at the first failed selection.
            free = int(width - slots[row])
            if free > 0:
                for task in select_many(free):
                    self._start_task(task)
        else:
            select_task = self.policy.select_task
            while slots[row] < width:
                task = select_task()
                if task is None:
                    break
                self._start_task(task)
        self.accel.check_done()

    def _enter_unit(self, name: str, at: float) -> float:
        free_times = getattr(self._state, name + "_free")
        free = float(free_times[self._row])
        start = at if at >= free else free
        free_times[self._row] = start + self._unit_interval
        return start

    # ------------------------------------------------------------------
    # task execution (all stage times booked analytically)
    # ------------------------------------------------------------------
    def _start_task(self, task: SimTask) -> None:
        now = self.engine.now
        state = self._state
        row = self._row
        # Guarded call: the dispatch pass at this cycle already integrated.
        if now > state.last_integrate[row]:
            self._integrate()
        state.slots_used[row] += 1
        task.state = _EXECUTING
        macro = self._macro
        if macro is not None:
            # Macro-step core: books the whole task pipeline in one
            # compiled call when every precondition holds, and falls
            # back to the exact per-event booking below on any escape
            # (miss, multi-round, instrumentation).  See
            # ``sim/backend/macro.py`` for the escape taxonomy.
            macro.start(self, task, now)
        else:
            self._book_task(task, now)

    def _book_task(self, task: SimTask, now: float) -> None:
        """The per-event booking path: every stage through Python."""
        t = self._book_front(task, now)
        if task.depth >= self._max_depth:
            self._book_leaf(task, t)
            return
        (
            inter_span,
            graph_spans,
            out_first,
            out_last,
            out_count,
            segments,
            total_lines,
        ) = self._derive(task)
        self._book_body(
            task, t, inter_span, graph_spans,
            out_first, out_last, out_count, segments, total_lines,
        )

    def _book_front(self, task: SimTask, now: float) -> float:
        """Book decode + dispatch and fetch the task's vertex line.

        The common front of every booking path; returns the time the
        task leaves the dispatch unit with its vertex at hand.
        """
        state = self._state
        row = self._row
        config = self.config
        interval = self._unit_interval
        free = float(state.decode_free[row])
        start = now if now >= free else free
        state.decode_free[row] = start + interval
        t = start + config.decode_cycles
        free = float(state.dispatch_free[row])
        start = t if t >= free else free
        state.dispatch_free[row] = start + interval
        t = start + config.dispatch_cycles

        # Fetching this task's vertex touched one line of the parent's
        # candidate set (the Wait_Vertex step of spawning/extending);
        # consecutive siblings hit the same line — sibling locality.
        parent = task.parent
        if parent is not None and parent.set_address is not None:
            vertex_line = (parent.set_address + task.child_index * 4) // self._line_bytes
            t = self.memory.fetch_intermediate_line(self.pe_id, vertex_line, t)
        return t

    def _book_leaf(self, task: SimTask, t: float) -> None:
        """Leaf task: report the match, no set operation."""
        state = self._state
        row = self._row
        free = float(state.spawn_free[row])
        at = t + self.config.leaf_cycles
        start = at if at >= free else free
        state.spawn_free[row] = start + self._unit_interval
        self.engine.post(start + self._post_spawn_cycles, self, task)

    def _derive(self, task: SimTask):
        """Expand a non-leaf task and size its working set.

        Pure derivation — reads the search tree and the graph, writes
        only ``task.expansion`` (and the parent's cached ``child_sets``)
        — so it is safe to run before *or* after the decode/dispatch
        booking; no booked resource state is consulted.
        """
        # Ancestor sets inline (see _ancestor_sets): parent is at hand.
        parent = task.parent
        if parent is None:
            sets = self._no_ancestor_sets
        else:
            sets = parent.child_sets
            if sets is None:
                sets = self._child_sets(parent)
        expansion = self.context.expand(task.embedding, sets)
        task.expansion = expansion

        inter_span = self._intermediate_span(task)
        graph_spans, graph_count = self._graph_spans(task)
        out_bytes = len(expansion.candidates) * 4
        set_address = task.set_address
        if set_address is not None and out_bytes > 0:
            line_bytes = self._line_bytes
            out_first = set_address // line_bytes
            out_last = (set_address + out_bytes - 1) // line_bytes
            out_count = out_last - out_first + 1
        else:
            out_first = out_last = -1
            out_count = 0
        # segment_count inlined (segment_elements validated positive).
        comparisons = expansion.comparisons
        segments = (
            -(-comparisons // self._segment_elements) if comparisons > 0 else 0
        )
        inter_count = 0 if inter_span is None else inter_span[1] - inter_span[0] + 1
        total_lines = inter_count + graph_count + out_count
        return (
            inter_span, graph_spans,
            out_first, out_last, out_count, segments, total_lines,
        )

    def _book_body(
        self,
        task: SimTask,
        t: float,
        inter_span: Optional[Tuple[int, int]],
        graph_spans: List[Tuple[int, int]],
        out_first: int,
        out_last: int,
        out_count: int,
        segments: int,
        total_lines: int,
    ) -> None:
        """Fetch, issue and FU stages of a derived non-leaf task."""
        state = self._state
        row = self._row
        memory = self.memory
        interval = self._unit_interval
        if total_lines <= self.spm_share:
            # Single round (the overwhelmingly common case): the whole
            # working set streams through as unbroken spans.
            t_inter = (
                memory.fetch_intermediate_span(self.pe_id, inter_span[0], inter_span[1], t)
                if inter_span is not None
                else t
            )
            t_graph = memory.fetch_graph_spans(self.pe_id, graph_spans, t) if graph_spans else t
            ready = t_inter if t_inter >= t_graph else t_graph
            free = float(state.issue_free[row])
            start = ready if ready >= free else free
            state.issue_free[row] = start + interval
            t = self._iu_submit(segments, start + 1.0)
        else:
            state.multi_round_tasks[row] += 1
            rounds = -(-total_lines // self.spm_share)
            for r in range(rounds):
                ichunk = (
                    span_round_chunk(inter_span[0], inter_span[1], r, rounds)
                    if inter_span is not None
                    else ()
                )
                gchunk = spans_round_chunk(graph_spans, r, rounds)
                schunk = segments // rounds + (1 if r < segments % rounds else 0)
                t_inter = memory.fetch_intermediate(self.pe_id, ichunk, t) if ichunk else t
                t_graph = memory.fetch_graph(self.pe_id, gchunk, t) if gchunk else t
                ready = max(t_inter, t_graph)
                ready = self._enter_unit("issue", ready) + 1.0
                t = self.iu_pool.submit(schunk, ready)
        self._book_tail(task, t, out_first, out_last, out_count)

    def _book_tail(
        self, task: SimTask, t: float, out_first: int, out_last: int, out_count: int
    ) -> None:
        """Writeback + spawn stages; posts the completion event."""
        # Writeback: the produced candidate set lands in the L1.
        if out_count:
            self.memory.install_intermediate_span(self.pe_id, out_first, out_last)
            wb = out_count / self.config.fetch_ports
            t += wb if wb > 1.0 else 1.0
        state = self._state
        row = self._row
        free = float(state.spawn_free[row])
        start = t if t >= free else free
        state.spawn_free[row] = start + self._unit_interval
        self.engine.post(start + self._post_spawn_cycles, self, task)

    def _ancestor_sets(self, task: SimTask) -> List[Optional[object]]:
        """Materialized candidate sets along this task's ancestor path.

        ``sets[e]`` is the candidate set *for* depth ``e`` (produced by
        the depth ``e - 1`` ancestor); only ancestors still holding their
        expansion contribute, which is guaranteed for the reused depth —
        its producer is Resting exactly because descendants may read it.

        The list is cached on the parent (``child_sets``) and shared by
        all siblings: an ancestor's expansion is written once, before any
        descendant exists, and never replaced, so the walk result is
        identical for every child.  ``expand`` only reads the list.
        """
        parent = task.parent
        if parent is None:
            return self._no_ancestor_sets
        sets = parent.child_sets
        if sets is None:
            sets = self._child_sets(parent)
        return sets

    def _child_sets(self, parent: SimTask) -> List[Optional[object]]:
        grandparent = parent.parent
        if grandparent is None:
            sets: List[Optional[object]] = [None] * (self.schedule.depth + 1)
        else:
            base = grandparent.child_sets
            if base is None:
                base = self._child_sets(grandparent)
            sets = list(base)
        if parent.expansion is not None:
            sets[parent.depth + 1] = parent.expansion.candidates
        parent.child_sets = sets
        return sets

    def _intermediate_span(self, task: SimTask) -> Optional[Tuple[int, int]]:
        """L1 line span of the reused ancestor candidate set (or None)."""
        expansion = task.expansion
        if expansion is None or expansion.reused_depth is None:
            return None
        producer = task.ancestor_at_depth(expansion.reused_depth - 1)
        if producer.set_address is None:
            raise SimulationError(
                f"reused set of depth {expansion.reused_depth} has no address"
            )
        # With a reused ancestor, the first op's left input is always that
        # intermediate set (either the fetch or the head of the residual
        # merge chain).
        num_bytes = expansion.ops[0].left.size * 4
        if num_bytes <= 0:
            return None
        base = producer.set_address
        line_bytes = self._line_bytes
        return (base // line_bytes, (base + num_bytes - 1) // line_bytes)

    def _graph_spans(self, task: SimTask) -> Tuple[List[Tuple[int, int]], int]:
        """L2 line spans of all neighbor-set inputs, plus the line total.

        Uses the accelerator's precomputed per-vertex line spans — a
        neighbor input always covers the vertex's whole adjacency, so its
        span ``(first_line, last_line)`` is fixed at graph-load time.
        Empty neighbor sets contribute no span.
        """
        first = self.accel.graph_first_line
        last = self.accel.graph_last_line
        spans: List[Tuple[int, int]] = []
        append = spans.append
        count = 0
        for inp in task.expansion.neighbors:
            if inp.size:
                ref = inp.ref
                f = first[ref]
                l = last[ref]
                append((f, l))
                count += l - f + 1
        return spans, count

    # ------------------------------------------------------------------
    # completion (typed-event sinks for Engine.post)
    # ------------------------------------------------------------------
    def dispatch_event(self, task: SimTask) -> None:
        """One posted completion (late-bound: instrumented PEs that
        replace ``_complete_task`` intercept every event)."""
        self._complete_task(task)

    def dispatch_events(self, tasks: List[SimTask]) -> None:
        """A cohort of same-cycle completions on this PE, in FIFO order.

        Equivalent by construction to dispatching each task singly; the
        batched path only folds the counter updates into one pass over
        the state-vector row.  Instrumented PEs (invariant checker,
        trace recorder — they install ``_complete_task`` as an instance
        attribute) fall back to per-task dispatch so their hooks see
        every completion.
        """
        if "_complete_task" in self.__dict__:
            complete = self._complete_task
            for task in tasks:
                complete(task)
            return
        self._complete_cohort(tasks)

    def _complete_task(self, task: SimTask) -> None:
        self._integrate()
        task.state = _COMPLETE
        state = self._state
        row = self._row
        state.tasks_executed[row] += 1
        state.depth_executed[row][task.depth] += 1
        if task.depth >= self._max_depth:
            state.matches[row] += 1
            task.children_vertices = []
        else:
            task.children_vertices = self.context.children(
                task.embedding, task.expansion.candidates
            )
            self.footprint_add(len(task.expansion.candidates) * 4)
        state.slots_used[row] -= 1
        self.policy.on_task_complete(task)
        self.kick()

    def _complete_cohort(self, tasks: List[SimTask]) -> None:
        """Complete a cohort in one pass over the state-vector row.

        Per-task side effects that other components observe mid-cohort
        — candidate-set materialization (footprint accounting), policy
        completion hooks and the dispatch kick — stay interleaved in
        FIFO order exactly as the per-task path runs them; only the
        pure counter updates (tasks/matches/depth/slots) batch into
        single row writes.  ``kick`` is idempotent within a cycle, so
        the repeated calls preserve event ordering without cost.
        """
        self._integrate()
        state = self._state
        row = self._row
        depth_row = state.depth_executed[row]
        max_depth = self._max_depth
        children = self.context.children
        footprint_add = self.accel.footprint_add
        on_task_complete = self.policy.on_task_complete
        kick = self.kick
        matches = 0
        for task in tasks:
            task.state = _COMPLETE
            depth = task.depth
            depth_row[depth] += 1
            if depth >= max_depth:
                matches += 1
                task.children_vertices = []
            else:
                candidates = task.expansion.candidates
                task.children_vertices = children(task.embedding, candidates)
                footprint_add(len(candidates) * 4)
            on_task_complete(task)
            kick()
        n = len(tasks)
        state.tasks_executed[row] += n
        state.matches[row] += matches
        state.slots_used[row] -= n
