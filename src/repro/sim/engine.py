"""Discrete-event simulation core.

A minimal, fast event queue: events are ``(time, sequence, callback)``
tuples ordered by time with FIFO tie-breaking, so simultaneous events run
in schedule order and the simulation is fully deterministic.  All
simulator components share one :class:`Engine` and advance a single
cycle-denominated clock.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from ..errors import SimulationError

Callback = Callable[[], None]


class Engine:
    """Deterministic event queue with a cycle clock."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, Callback]] = []
        self._seq = 0
        self._running = False

    def at(self, time: float, callback: Callback) -> None:
        """Schedule ``callback`` at absolute ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time} before now={self.now}"
            )
        heapq.heappush(self._queue, (time, self._seq, callback))
        self._seq += 1

    def after(self, delay: float, callback: Callback) -> None:
        """Schedule ``callback`` ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        heapq.heappush(self._queue, (self.now + delay, self._seq, callback))
        self._seq += 1

    def pending(self) -> int:
        """Number of queued events."""
        return len(self._queue)

    def run(self, *, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Drain the queue; returns the number of events executed.

        Stops when the queue empties, the clock passes ``until``, or
        ``max_events`` have run (whichever first).  Callbacks may schedule
        further events.

        The drain loop *coalesces* same-cycle events: the clock is
        advanced once per distinct timestamp and every event carrying that
        timestamp — including ones a callback schedules for the current
        cycle — runs in an inner loop, in stable ``(time, seq)`` order.
        Ties therefore execute exactly as they were scheduled, the clock
        jumps straight across idle gaps between timestamps, and the
        per-event ``until`` comparison drops out of the common path.
        """
        executed = 0
        self._running = True
        queue = self._queue
        heappop = heapq.heappop
        try:
            if max_events is None:
                while queue:
                    time = queue[0][0]
                    if until is not None and time > until:
                        break
                    self.now = time
                    while queue and queue[0][0] == time:
                        callback = heappop(queue)[2]
                        callback()
                        executed += 1
            else:
                while queue:
                    time, _, callback = queue[0]
                    if until is not None and time > until:
                        break
                    heappop(queue)
                    self.now = time
                    callback()
                    executed += 1
                    if executed >= max_events:
                        break
        finally:
            self._running = False
        return executed
