"""Discrete-event simulation core.

A minimal, fast event queue built for tie-heavy schedules: pending
events are bucketed by timestamp — a heap orders the *distinct* times,
and each time's callbacks sit in a FIFO list.  FIFO order within a
bucket is exactly the scheduling order, so simultaneous events run as
scheduled and the simulation is fully deterministic, while the heap
does one push/pop per distinct timestamp instead of one per event
(same-cycle storms — dispatch kicks, zero-delay chains — are the
common case in the simulator).

Events a callback schedules for the *current* time land in a fresh
bucket and drain after the current bucket finishes, which is precisely
where sequence-numbered heap ordering would have placed them.

Two event shapes share the queue:

* plain callables (:meth:`Engine.at` / :meth:`Engine.after`) — run as
  ``callback()``;
* typed events (:meth:`Engine.post`) — ``(owner, payload)`` tuples run
  as ``owner.dispatch_event(payload)``, with consecutive same-owner
  runs within a bucket batched into one
  ``owner.dispatch_events(payloads)`` cohort call.  Task completions
  use this shape: no closure allocation per task, and whole completion
  cohorts advance through the PE state vector in one call.

The drain inner loop itself lives in
:mod:`repro.sim.backend.engine_loop`, shared by every backend — each
drained event runs arbitrary Python, so the loop cannot move to C.
What does move to C under a compiled backend is the booking *between*
a task's two events: the macro-step core
(:mod:`repro.sim.backend.macro`) collapses the start event's whole
pipeline walk into one compiled call with a typed escape back to the
per-event path, leaving this queue's event count and ordering exactly
as before.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional

from ..errors import SimulationError
from .backend.engine_loop import drain as _drain

Callback = Callable[[], None]


class Engine:
    """Deterministic event queue with a cycle clock."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._times: List[float] = []  # heap of distinct pending timestamps
        self._buckets: Dict[float, List[Callback]] = {}
        self._pending = 0  # queued events (kept in lockstep with _buckets)
        self._running = False

    def at(self, time: float, callback: Callback) -> None:
        """Schedule ``callback`` at absolute ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time} before now={self.now}"
            )
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [callback]
            heapq.heappush(self._times, time)
        else:
            bucket.append(callback)
        self._pending += 1

    def after(self, delay: float, callback: Callback) -> None:
        """Schedule ``callback`` ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        time = self.now + delay
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [callback]
            heapq.heappush(self._times, time)
        else:
            bucket.append(callback)
        self._pending += 1

    def post(self, time: float, owner, payload) -> None:
        """Schedule a typed event: ``owner.dispatch_event(payload)`` at ``time``.

        Same ordering semantics as :meth:`at`, without allocating a
        closure — the queue stores the ``(owner, payload)`` tuple and
        the drain loop dispatches through the owner, late-bound (so
        instrumentation that replaces ``owner.dispatch_event`` or the
        underlying completion method still intercepts every event).
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time} before now={self.now}"
            )
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [(owner, payload)]
            heapq.heappush(self._times, time)
        else:
            bucket.append((owner, payload))
        self._pending += 1

    def pending(self) -> int:
        """Number of queued events (O(1) — a maintained counter)."""
        return self._pending

    def run(self, *, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Drain the queue; returns the number of events executed.

        Stops when the queue empties, the clock passes ``until``, or
        ``max_events`` have run (whichever first).  Callbacks may schedule
        further events.

        The clock advances once per distinct timestamp and that time's
        whole bucket drains in FIFO (= scheduling) order; the ``until``
        comparison happens once per timestamp, not once per event.  The
        ``max_events`` path counts per event and re-queues the bucket
        remainder on an early stop, ahead of any same-time events the
        executed callbacks scheduled.  If a callback raises, the rest of
        its bucket is dropped with it (later timestamps stay queued);
        a simulation never resumes a run that raised.
        """
        self._running = True
        try:
            return _drain(self, until, max_events)
        finally:
            self._running = False
