"""Discrete-event simulation core.

A minimal, fast event queue: events are ``(time, sequence, callback)``
tuples ordered by time with FIFO tie-breaking, so simultaneous events run
in schedule order and the simulation is fully deterministic.  All
simulator components share one :class:`Engine` and advance a single
cycle-denominated clock.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from ..errors import SimulationError

Callback = Callable[[], None]


class Engine:
    """Deterministic event queue with a cycle clock."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, Callback]] = []
        self._seq = 0
        self._running = False

    def at(self, time: float, callback: Callback) -> None:
        """Schedule ``callback`` at absolute ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time} before now={self.now}"
            )
        heapq.heappush(self._queue, (time, self._seq, callback))
        self._seq += 1

    def after(self, delay: float, callback: Callback) -> None:
        """Schedule ``callback`` ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.at(self.now + delay, callback)

    def pending(self) -> int:
        """Number of queued events."""
        return len(self._queue)

    def run(self, *, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Drain the queue; returns the number of events executed.

        Stops when the queue empties, the clock passes ``until``, or
        ``max_events`` have run (whichever first).  Callbacks may schedule
        further events.
        """
        executed = 0
        self._running = True
        try:
            while self._queue:
                time, _, callback = self._queue[0]
                if until is not None and time > until:
                    break
                heapq.heappop(self._queue)
                self.now = time
                callback()
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
        finally:
            self._running = False
        return executed
