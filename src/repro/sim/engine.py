"""Discrete-event simulation core.

A minimal, fast event queue built for tie-heavy schedules: pending
events are bucketed by timestamp — a heap orders the *distinct* times,
and each time's callbacks sit in a FIFO list.  FIFO order within a
bucket is exactly the scheduling order, so simultaneous events run as
scheduled and the simulation is fully deterministic, while the heap
does one push/pop per distinct timestamp instead of one per event
(same-cycle storms — dispatch kicks, zero-delay chains — are the
common case in the simulator).

Events a callback schedules for the *current* time land in a fresh
bucket and drain after the current bucket finishes, which is precisely
where sequence-numbered heap ordering would have placed them.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional

from ..errors import SimulationError

Callback = Callable[[], None]


class Engine:
    """Deterministic event queue with a cycle clock."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._times: List[float] = []  # heap of distinct pending timestamps
        self._buckets: Dict[float, List[Callback]] = {}
        self._running = False

    def at(self, time: float, callback: Callback) -> None:
        """Schedule ``callback`` at absolute ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time} before now={self.now}"
            )
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [callback]
            heapq.heappush(self._times, time)
        else:
            bucket.append(callback)

    def after(self, delay: float, callback: Callback) -> None:
        """Schedule ``callback`` ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        time = self.now + delay
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [callback]
            heapq.heappush(self._times, time)
        else:
            bucket.append(callback)

    def pending(self) -> int:
        """Number of queued events."""
        return sum(len(bucket) for bucket in self._buckets.values())

    def run(self, *, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Drain the queue; returns the number of events executed.

        Stops when the queue empties, the clock passes ``until``, or
        ``max_events`` have run (whichever first).  Callbacks may schedule
        further events.

        The clock advances once per distinct timestamp and that time's
        whole bucket drains in FIFO (= scheduling) order; the ``until``
        comparison happens once per timestamp, not once per event.  The
        ``max_events`` path counts per event and re-queues the bucket
        remainder on an early stop, ahead of any same-time events the
        executed callbacks scheduled.  If a callback raises, the rest of
        its bucket is dropped with it (later timestamps stay queued);
        a simulation never resumes a run that raised.
        """
        executed = 0
        self._running = True
        times = self._times
        buckets = self._buckets
        heappop = heapq.heappop
        try:
            if max_events is None:
                if until is None:
                    while times:
                        time = heappop(times)
                        self.now = time
                        bucket = buckets.pop(time)
                        executed += len(bucket)
                        for callback in bucket:
                            callback()
                else:
                    while times:
                        time = times[0]
                        if time > until:
                            break
                        heappop(times)
                        self.now = time
                        bucket = buckets.pop(time)
                        executed += len(bucket)
                        for callback in bucket:
                            callback()
            else:
                heappush = heapq.heappush
                while times:
                    time = times[0]
                    if until is not None and time > until:
                        break
                    heappop(times)
                    self.now = time
                    bucket = buckets.pop(time)
                    i = 0
                    n = len(bucket)
                    while i < n:
                        callback = bucket[i]
                        i += 1
                        callback()
                        executed += 1
                        if executed >= max_events:
                            break
                    if i < n:
                        # Early stop mid-bucket: the unexecuted remainder
                        # precedes any same-time events just scheduled.
                        rest = bucket[i:]
                        fresh = buckets.get(time)
                        if fresh is None:
                            buckets[time] = rest
                            heappush(times, time)
                        else:
                            rest.extend(fresh)
                            buckets[time] = rest
                    if executed >= max_events:
                        break
        finally:
            self._running = False
        return executed
