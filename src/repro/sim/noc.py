"""Network-on-chip model: latency plus serialized link bandwidth.

The accelerator connects the system scheduler, the PEs and the shared L2
with a NoC (§3.1).  Two traffic classes matter for the reproduction:

* PE ↔ L2 memory traffic — a fixed hop latency added on the miss path
  (bandwidth is dominated by the L2 port and DRAM models);
* PE ↔ PE partition messages for task-tree splitting (§4.1) — explicit
  transfers whose cost scales with the cache lines of the shipped
  neighbor set, which is the data-transfer overhead the splitting scheme
  trades against its performance gain.
"""

from __future__ import annotations

from ..errors import ConfigError


class NoC:
    """Shared interconnect with per-link serialization for messages."""

    def __init__(self, hop_cycles: float, *, link_line_cycles: float = 1.0) -> None:
        if hop_cycles < 0 or link_line_cycles <= 0:
            raise ConfigError("NoC timings must be positive")
        self.hop_cycles = float(hop_cycles)
        self.link_line_cycles = float(link_line_cycles)
        self._link_free = 0.0
        self.messages = 0
        self.lines_transferred = 0

    def memory_hop(self) -> float:
        """One-way PE ↔ L2 latency contribution."""
        return self.hop_cycles

    def transfer(self, lines: int, ready_time: float) -> float:
        """Ship a ``lines``-sized message between PEs; returns arrival time.

        Messages serialize on a shared link at one line per
        ``link_line_cycles`` and pay the hop latency once; the three
        partition-message types of §4.1 (root+range, set size, set data)
        are modelled as one message with their combined payload.
        """
        if lines < 0:
            raise ConfigError("message size cannot be negative")
        start = max(self._link_free, ready_time)
        occupancy = max(1.0, lines * self.link_line_cycles)
        self._link_free = start + occupancy
        self.messages += 1
        self.lines_transferred += lines
        return start + occupancy + self.hop_cycles
