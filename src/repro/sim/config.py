"""Simulator configuration mirroring Table 3 of the paper.

All knobs the evaluation sweeps (task execution width, bunches per depth,
L1 size, PE count, conservative-mode thresholds) are plain dataclass
fields so the benchmark harness can produce every figure by constructing
modified copies via :meth:`SimConfig.replace`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigError


@dataclass(frozen=True)
class SimConfig:
    """Accelerator configuration (defaults = Table 3)."""

    # --- device ---------------------------------------------------------
    num_pes: int = 10
    execution_width: int = 8           # max tasks in flight per PE
    num_dividers: int = 12             # segment formation units per PE
    num_ius: int = 24                  # intersection units per PE

    # --- task tree (Shogun) ----------------------------------------------
    bunches_per_depth: int = 4
    bunch_entries: int = 8             # = execution width by default
    root_bunches: int = 2              # depth-0/1 bunches (search tree merging)
    max_pattern_depth: int = 6         # GraphPi matches up to 7-vertex patterns
    tokens_per_depth: int = 8          # address tokens = execution width

    # --- memory system ----------------------------------------------------
    cache_line_bytes: int = 64
    spm_kb: int = 16                   # per-PE scratchpad (256 lines)
    l1_kb: int = 32
    l1_assoc: int = 4
    l1_hit_cycles: int = 2
    l2_kb: int = 4096
    l2_assoc: int = 8
    l2_hit_cycles: int = 18
    l2_banks: int = 8                  # independent service ports
    l2_service_cycles: float = 1.0     # per-bank serialization per line
    noc_hop_cycles: int = 6            # PE <-> L2 one-way latency
    dram_channels: int = 4
    dram_latency_cycles: int = 110     # activate+CAS at 1 GHz core clock
    dram_service_cycles: float = 4.0   # per-line channel occupancy (BW limit)
    fetch_ports: int = 2               # parallel line fetches per task

    # --- compute model ----------------------------------------------------
    segment_elements: int = 16         # elements per divider segment
    segment_cycles: int = 16           # IU cycles per segment (1 element/cycle merge)
    decode_cycles: int = 2
    dispatch_cycles: int = 2
    spawn_cycles: int = 2
    leaf_cycles: int = 2               # report/output cost of a leaf task
    tree_access_cycles: int = 1        # task-tree SPM access per operation
    #: Tasks each pipeline unit can accept per cycle.  The paper leaves
    #: "optimizing the PE pipeline design" as future work for the
    #: tiny-task-dominated cases (wi/as-tt_e, §5.2.1); raising this
    #: implements that optimization for the ablation study.
    unit_tasks_per_cycle: float = 1.0

    # --- conservative mode (locality monitor, Table 3) --------------------
    l1_latency_threshold: float = 50.0  # cycles of average L1 access latency
    iu_util_threshold: float = 0.5      # IU utilization floor
    monitor_epoch_cycles: int = 2048
    monitor_exit_epochs: int = 2        # clear epochs before leaving the mode
    #: None = adaptive (the monitor decides); True/False pin the mode on
    #: or off for the whole run (the conservative-mode ablation).
    conservative_override: Optional[bool] = None

    # --- system scheduler --------------------------------------------------
    #: "dynamic": PEs pull the next root from the system scheduler as
    #: trees complete (§3.1 — PEs inform the scheduler on completion);
    #: "static": all roots are dealt round-robin to PEs up front.
    root_dispatch: str = "dynamic"

    # --- accelerator optimizations (§4) ------------------------------------
    enable_splitting: bool = False
    enable_merging: bool = False
    lb_check_interval: int = 20000      # system-scheduler imbalance polling
    lb_idle_fraction: float = 0.5       # "most PEs have finished"
    lb_max_helpers: int = 4             # idle PEs granted per busy PE
    #: Deepest task depth whose candidate range may be split off.  The
    #: paper splits only the depth-0 task's range (limit 0); the scaled
    #: datasets drain root ranges early, so the default also allows
    #: depth-1 tasks — same messages, prefix one vertex longer (see
    #: DESIGN.md substitutions).
    split_depth_limit: int = 1
    merge_iu_util_ceiling: float = 0.5  # FU util must be below this to merge
    merge_l1_latency_ceiling: float = 25.0
    merge_mem_latency_ceiling: float = 60.0

    # --- misc ---------------------------------------------------------------
    max_cycles: int = 2_000_000_000     # runaway guard
    #: Kernel backend for the simulator hot path: "auto", "pure",
    #: "numba" or "cext".  None defers to ``REPRO_BACKEND`` / auto
    #: selection; an unavailable backend falls back gracefully (see
    #: ``repro.sim.backend``).  All backends produce byte-identical
    #: metrics, so this is a speed knob, not a model knob.
    backend: Optional[str] = None
    #: Macro-step engine core: book a whole task pipeline in one
    #: compiled call, escaping to the per-event Python path on cache
    #: misses, multi-round tasks and instrumentation.  None = auto (on
    #: exactly when the active kernel backend is compiled); True forces
    #: it on even under the pure backend (the interpreted reference
    #: loop — slower, used by the parity suite); False pins the
    #: per-event path.  All settings produce byte-identical metrics, so
    #: like ``backend`` this is a speed knob, not a model knob.
    macro_step: Optional[bool] = None
    #: Task-tree scheduler kernels: run the hot tree decisions
    #: (``tree_select``/``tree_fill``/``tree_complete``) as compiled
    #: backend calls over the tree's struct-of-arrays state.  None =
    #: auto (on exactly when the active kernel backend is compiled);
    #: True forces them on even under the pure backend (the interpreted
    #: reference loops — slower, used by the differential suite); False
    #: pins the interpreted object path.  All settings produce
    #: byte-identical metrics: a speed knob, not a model knob.
    tree_kernels: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.num_pes < 1:
            raise ConfigError("num_pes must be >= 1")
        if self.execution_width < 1:
            raise ConfigError("execution_width must be >= 1")
        if self.bunch_entries < 1 or self.bunches_per_depth < 1:
            raise ConfigError("task tree dimensions must be >= 1")
        if self.tokens_per_depth < 1:
            raise ConfigError("tokens_per_depth must be >= 1")
        for field_name in ("l1_kb", "l2_kb", "spm_kb", "cache_line_bytes"):
            if getattr(self, field_name) <= 0:
                raise ConfigError(f"{field_name} must be positive")
        if self.l1_assoc < 1 or self.l2_assoc < 1:
            raise ConfigError("associativity must be >= 1")
        if self.segment_elements < 1 or self.segment_cycles < 1:
            raise ConfigError("segment model values must be >= 1")
        if self.num_ius < 1 or self.num_dividers < 1:
            raise ConfigError("FU counts must be >= 1")
        if self.root_dispatch not in ("static", "dynamic"):
            raise ConfigError("root_dispatch must be 'static' or 'dynamic'")
        if self.conservative_override not in (None, True, False):
            raise ConfigError("conservative_override must be None, True or False")
        if self.unit_tasks_per_cycle <= 0:
            raise ConfigError("unit_tasks_per_cycle must be positive")
        if self.backend is not None and self.backend not in (
            "auto",
            "pure",
            "numba",
            "cext",
        ):
            raise ConfigError(
                "backend must be one of None, 'auto', 'pure', 'numba', 'cext'"
            )
        if self.macro_step not in (None, True, False):
            raise ConfigError("macro_step must be None, True or False")
        if self.tree_kernels not in (None, True, False):
            raise ConfigError("tree_kernels must be None, True or False")

    # ------------------------------------------------------------------
    def replace(self, **changes) -> "SimConfig":
        """A modified copy (convenience over ``dataclasses.replace``)."""
        return dataclasses.replace(self, **changes)

    @property
    def l1_lines(self) -> int:
        """L1 capacity in cache lines."""
        return self.l1_kb * 1024 // self.cache_line_bytes

    @property
    def l2_lines(self) -> int:
        """L2 capacity in cache lines."""
        return self.l2_kb * 1024 // self.cache_line_bytes

    @property
    def spm_lines(self) -> int:
        """Scratchpad capacity in cache lines."""
        return self.spm_kb * 1024 // self.cache_line_bytes

    @property
    def elements_per_line(self) -> int:
        """Vertex ids per cache line (16 for 64-byte lines)."""
        return self.cache_line_bytes // 4

    def task_tree_entries(self) -> int:
        """Total task-tree entries (178 with Table 3 defaults).

        Depth 0 has ``root_bunches`` single-entry bunches; depth 1 has
        ``root_bunches`` full bunches; depths 2..max use
        ``bunches_per_depth`` full bunches.
        """
        deep = (self.max_pattern_depth - 1) * self.bunches_per_depth * self.bunch_entries
        return self.root_bunches * 1 + self.root_bunches * self.bunch_entries + deep


#: The paper's baseline configuration (Table 3).
DEFAULT_CONFIG = SimConfig()
