"""Metrics containers for simulation runs.

Everything the evaluation section reports is collected here: cycles
(performance/speedups, Figs. 9/11/12/13/14), IU utilization rates
(Figs. 3(a)/10), L1 hit rates and average access latencies (Fig. 3(b)),
memory footprints (Table 1), barrier idle time, and the optimization
event counters (splitting rounds, merges, quiesces).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class PEMetrics:
    """Per-PE statistics of one run."""

    pe_id: int
    tasks_executed: int = 0
    matches: int = 0
    trees_completed: int = 0
    busy_slot_cycles: float = 0.0
    idle_with_work_cycles: float = 0.0
    finish_cycle: float = 0.0
    iu_busy_cycles: float = 0.0
    iu_utilization: float = 0.0
    l1_hits: int = 0
    l1_misses: int = 0
    l1_avg_latency: float = 0.0
    conservative_entries: int = 0
    conservative_fraction: float = 0.0
    spawn_waits: int = 0
    token_stalls: int = 0
    tasks_per_depth: List[int] = field(default_factory=list)

    @property
    def l1_hit_rate(self) -> float:
        """L1 hit fraction for this PE."""
        total = self.l1_hits + self.l1_misses
        return self.l1_hits / total if total else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable representation (see :meth:`from_dict`)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PEMetrics":
        """Rebuild from :meth:`to_dict` output; unknown keys are ignored."""
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass
class RunMetrics:
    """Whole-accelerator statistics of one run."""

    policy: str
    cycles: float = 0.0
    matches: int = 0
    tasks_executed: int = 0
    trees_completed: int = 0
    iu_utilization: float = 0.0
    l1_hit_rate: float = 0.0
    l1_avg_latency: float = 0.0
    l2_hit_rate: float = 0.0
    dram_requests: int = 0
    dram_utilization: float = 0.0
    noc_messages: int = 0
    noc_lines: int = 0
    peak_footprint_bytes: int = 0
    slot_utilization: float = 0.0
    barrier_idle_fraction: float = 0.0
    split_rounds: int = 0
    partitions_sent: int = 0
    merges: int = 0
    quiesces: int = 0
    conservative_fraction: float = 0.0
    tasks_per_depth: List[int] = field(default_factory=list)
    per_pe: List[PEMetrics] = field(default_factory=list)
    extra: Dict[str, float] = field(default_factory=dict)

    def speedup_over(self, baseline: "RunMetrics") -> float:
        """How much faster this run is than ``baseline`` (>1 = faster)."""
        if self.cycles <= 0:
            return float("inf")
        return baseline.cycles / self.cycles

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable representation, recursing into ``per_pe``.

        The persistent result cache (``repro.orchestrator``) stores runs
        in this form; :meth:`from_dict` round-trips it exactly.
        """
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunMetrics":
        """Rebuild from :meth:`to_dict` output; unknown keys are ignored
        so cache entries written by a newer schema still load."""
        known = {f.name for f in dataclasses.fields(cls)}
        payload = {k: v for k, v in data.items() if k in known}
        payload["per_pe"] = [PEMetrics.from_dict(p) for p in data.get("per_pe", [])]
        return cls(**payload)

    def summary(self) -> str:
        """One-line human-readable digest used by examples."""
        return (
            f"[{self.policy}] cycles={self.cycles:.0f} matches={self.matches} "
            f"tasks={self.tasks_executed} iu_util={self.iu_utilization:.3f} "
            f"l1_hit={self.l1_hit_rate:.3f} slot_util={self.slot_utilization:.3f} "
            f"peak_mem={self.peak_footprint_bytes}B"
        )


def geomean(values: List[float]) -> float:
    """Geometric mean (the paper's average-speedup aggregation)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    product = 1.0
    for v in vals:
        product *= v
    return product ** (1.0 / len(vals))
