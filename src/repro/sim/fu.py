"""Set-operation functional units: the divider + IU pool of one PE.

Following FINGERS (whose computation fabric the paper adopts, §5.1.1),
sorted vertex sets are cut into fixed-size segments by *dividers*; paired
segments are merged by *intersection units* (IUs).  The pool is modelled
as ``num_ius`` identical servers with FCFS segment assignment: a task
submits all segments of one set operation at once and completes when its
last segment drains.  Contention between concurrently executing tasks —
the thing task scheduling actually changes — emerges from the shared
server pool.

The server-free times live in a numpy ``float64`` array (with the
running accounting in a 3-slot ``_acc`` array) so the compiled
macro-step core can pin the same storage and advance the pool without a
Python round trip; see ``sim/backend/_loops.task_fastpath_loop`` for the
mirrored arithmetic.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError


class IUPool:
    """FCFS pool of intersection-unit servers with utilization accounting."""

    __slots__ = (
        "num_ius",
        "segment_cycles",
        "num_dividers",
        "_server_free",
        "_acc",
    )

    def __init__(self, num_ius: int, segment_cycles: float, num_dividers: int) -> None:
        if num_ius < 1 or num_dividers < 1 or segment_cycles <= 0:
            raise ConfigError("IU pool parameters must be positive")
        self.num_ius = num_ius
        self.segment_cycles = float(segment_cycles)
        self.num_dividers = num_dividers
        self._server_free = np.zeros(num_ius, dtype=np.float64)
        #: [max_free, busy_cycles, segments_processed] — one array so the
        #: compiled core updates all three through a single pointer.
        self._acc = np.zeros(3, dtype=np.float64)

    # ------------------------------------------------------------------
    # The accounting lives in ``_acc`` so the compiled core can mutate it
    # in place; these properties keep the public API (and its Python
    # float/int types) unchanged.
    @property
    def _max_free(self) -> float:
        return float(self._acc[0])

    @_max_free.setter
    def _max_free(self, value: float) -> None:
        self._acc[0] = value

    @property
    def busy_cycles(self) -> float:
        return float(self._acc[1])

    @busy_cycles.setter
    def busy_cycles(self, value: float) -> None:
        self._acc[1] = value

    @property
    def segments_processed(self) -> int:
        return int(self._acc[2])

    @segments_processed.setter
    def segments_processed(self, value: int) -> None:
        self._acc[2] = value

    def submit(self, segments: int, ready_time: float) -> float:
        """Run ``segments`` segment jobs starting no earlier than ``ready_time``.

        Dividers form segments at ``num_dividers`` per cycle before IUs
        can start.  Returns the completion time of the last segment; zero
        segments complete immediately (a pure-fetch task).

        When every server is already free at ``formed`` (the common case —
        task issue is spread out relative to segment service), FCFS
        assignment degenerates to round-robin: with ``k`` servers and
        ``m`` segments, ``m % k`` servers run ``m // k + 1`` back-to-back
        segments and the rest one fewer, every finish time being the
        repeated sum ``formed + c + c + ...`` the general loop would
        accumulate.  The fast path writes that final server state
        directly; the contended path assigns each segment to the
        least-loaded server (argmin), which is observationally identical
        to the historical min-heap pop/push — only the multiset of free
        times is ever observed, and pop-min ≡ argmin on values.

        ``_acc[0]`` caches ``max(_server_free)`` exactly so the common
        path never scans the pool.  The fast path leaves every server at
        ``done``/``finish``; the argmin path only advances minima, so its
        new maximum is ``max(old max, finish)`` — if the old maximum was
        overwritten, its replacement (and hence ``finish``) exceeds it.
        """
        if segments <= 0:
            return ready_time
        formed = ready_time + segments / self.num_dividers
        servers = self._server_free
        c = self.segment_cycles
        acc = self._acc
        if acc[0] <= formed:
            k = self.num_ius
            q, r = divmod(segments, k)
            if q == 0:
                # Only the `segments` least-loaded servers are touched;
                # done exceeds every current entry, so value-multiset-wise
                # this is "replace the `segments` smallest with done".
                done = formed + c
                if segments < k:
                    idx = np.argpartition(servers, segments - 1)[:segments]
                    servers[idx] = done
                else:
                    servers[:] = done
                finish = done
            else:
                # Chain values by repeated addition, exactly as the
                # FCFS loop would accumulate them.
                done = formed
                for _ in range(q):
                    done = done + c
                if r:
                    finish = done + c
                    servers[: k - r] = done
                    servers[k - r :] = finish
                else:
                    finish = done
                    servers[:] = done
            acc[0] = finish
        else:
            finish = formed
            for _ in range(segments):
                i = int(np.argmin(servers))
                free = float(servers[i])
                start = free if free >= formed else formed
                done = start + c
                servers[i] = done
                if done > finish:
                    finish = done
            if finish > acc[0]:
                acc[0] = finish
        acc[1] += segments * c
        acc[2] += segments
        return finish

    def utilization(self, elapsed_cycles: float) -> float:
        """Fraction of IU-cycles spent busy over ``elapsed_cycles``."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / (elapsed_cycles * self.num_ius))
