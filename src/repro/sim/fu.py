"""Set-operation functional units: the divider + IU pool of one PE.

Following FINGERS (whose computation fabric the paper adopts, §5.1.1),
sorted vertex sets are cut into fixed-size segments by *dividers*; paired
segments are merged by *intersection units* (IUs).  The pool is modelled
as ``num_ius`` identical servers with FCFS segment assignment: a task
submits all segments of one set operation at once and completes when its
last segment drains.  Contention between concurrently executing tasks —
the thing task scheduling actually changes — emerges from the shared
server pool.
"""

from __future__ import annotations

import heapq
from typing import List

from ..errors import ConfigError


class IUPool:
    """FCFS pool of intersection-unit servers with utilization accounting."""

    __slots__ = (
        "num_ius",
        "segment_cycles",
        "num_dividers",
        "_server_free",
        "_max_free",
        "busy_cycles",
        "segments_processed",
    )

    def __init__(self, num_ius: int, segment_cycles: float, num_dividers: int) -> None:
        if num_ius < 1 or num_dividers < 1 or segment_cycles <= 0:
            raise ConfigError("IU pool parameters must be positive")
        self.num_ius = num_ius
        self.segment_cycles = float(segment_cycles)
        self.num_dividers = num_dividers
        self._server_free: List[float] = [0.0] * num_ius
        heapq.heapify(self._server_free)
        self._max_free = 0.0
        self.busy_cycles = 0.0
        self.segments_processed = 0

    def submit(self, segments: int, ready_time: float) -> float:
        """Run ``segments`` segment jobs starting no earlier than ``ready_time``.

        Dividers form segments at ``num_dividers`` per cycle before IUs
        can start.  Returns the completion time of the last segment; zero
        segments complete immediately (a pure-fetch task).

        When every server is already free at ``formed`` (the common case —
        task issue is spread out relative to segment service), the FCFS
        pop/push loop degenerates to round-robin: with ``k`` servers and
        ``m`` segments, ``m % k`` servers run ``m // k + 1`` back-to-back
        segments and the rest one fewer, every finish time being the
        repeated sum ``formed + c + c + ...`` the loop would compute.  The
        fast path writes that final server state directly (a sorted list
        is a valid min-heap); the heap loop remains for the contended
        case and as the oracle in ``tests/test_sim_fu.py``.

        ``_max_free`` caches ``max(_server_free)`` exactly so the common
        path never scans the pool.  The fast path leaves every server at
        ``done``/``finish``; the heap path only pops minima, so its new
        maximum is ``max(old max, finish)`` — if the old maximum was
        popped, its replacement (and hence ``finish``) exceeds it.
        """
        if segments <= 0:
            return ready_time
        formed = ready_time + segments / self.num_dividers
        servers = self._server_free
        c = self.segment_cycles
        if self._max_free <= formed:
            k = self.num_ius
            q, r = divmod(segments, k)
            if q == 0:
                # Only the `segments` least-loaded servers are touched.
                done = formed + c
                servers.sort()
                del servers[:segments]
                servers += [done] * segments
                finish = done
            else:
                # Chain values by repeated addition, exactly as the
                # pop/push loop would accumulate them.
                done = formed
                for _ in range(q):
                    done = done + c
                if r:
                    finish = done + c
                    self._server_free = [done] * (k - r) + [finish] * r
                else:
                    finish = done
                    self._server_free = [done] * k
            self._max_free = finish
        else:
            finish = formed
            heappop = heapq.heappop
            heappush = heapq.heappush
            for _ in range(segments):
                free = heappop(servers)
                start = free if free >= formed else formed
                done = start + c
                heappush(servers, done)
                if done > finish:
                    finish = done
            if finish > self._max_free:
                self._max_free = finish
        self.busy_cycles += segments * c
        self.segments_processed += segments
        return finish

    def utilization(self, elapsed_cycles: float) -> float:
        """Fraction of IU-cycles spent busy over ``elapsed_cycles``."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / (elapsed_cycles * self.num_ius))
