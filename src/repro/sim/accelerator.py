"""The whole accelerator: system scheduler, PEs, shared memory, NoC.

Mirrors §3.1: a centralized system scheduler dispatches root vertices of
search trees to PEs over the NoC; each PE explores its assigned trees
independently and reports back on completion.  The system scheduler also
runs the load-balance procedure of §4.1 when task-tree splitting is
enabled: once the root queue drains, it polls for the many-idle/few-busy
pattern, apportions idle PEs to busy ones, and forwards partition
messages between them.

:func:`simulate` is the high-level entry point used by examples, tests
and the benchmark harness.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from ..core.policies.base import SchedulingPolicy
from ..core.policies.bfs import BFSPolicy
from ..core.policies.group_dfs import DFSPolicy, GroupDFSPolicy
from ..core.policies.parallel_dfs import ParallelDFSPolicy
from ..core.policies.shogun import ShogunPolicy
from ..core.splitting import apportion_helpers
from ..errors import SimulationError
from ..graph.csr import GRAPH_REGION_BASE, VERTEX_BYTES, CSRGraph
from ..mining.tree import SearchContext
from ..patterns.schedule import MatchingSchedule
from .backend.macro import build_macro
from .config import DEFAULT_CONFIG, SimConfig
from .engine import Engine
from .memory import MemorySystem
from .metrics import PEMetrics, RunMetrics
from .pe import PE, PEStateVector, PolicyFactory

#: Registered scheduling policies by name.  ``fingers`` is an alias for
#: pseudo-DFS, the baseline accelerator the paper compares against.
POLICIES: Dict[str, Callable[[PE], SchedulingPolicy]] = {
    "shogun": ShogunPolicy,
    "pseudo-dfs": GroupDFSPolicy,
    "fingers": GroupDFSPolicy,
    "dfs": DFSPolicy,
    "bfs": BFSPolicy,
    "parallel-dfs": ParallelDFSPolicy,
}


def policy_factory(name: str) -> PolicyFactory:
    """Look up a policy constructor by name."""
    try:
        return POLICIES[name]
    except KeyError:
        raise SimulationError(
            f"unknown policy {name!r}; known: {sorted(POLICIES)}"
        ) from None


class Accelerator:
    """One simulated device bound to a (graph, schedule, config, policy)."""

    def __init__(
        self,
        graph: CSRGraph,
        schedule: MatchingSchedule,
        config: SimConfig = DEFAULT_CONFIG,
        policy: str = "shogun",
    ) -> None:
        self.graph = graph
        self.schedule = schedule
        self.config = config
        self.policy_name = policy
        self.engine = Engine()
        # MemorySystem construction also activates the kernel backend
        # (config.backend / REPRO_BACKEND / auto) for this process.
        self.memory = MemorySystem(config)
        self.context = SearchContext(graph, schedule)
        # Per-vertex L2 line span of each neighbor set, precomputed once:
        # neighbor inputs always cover the full adjacency, so the PEs can
        # turn a vertex id into its line range without re-deriving byte
        # addresses per fetch.  Entries of degree-0 vertices are unused.
        line = config.cache_line_bytes
        base_addrs = GRAPH_REGION_BASE + graph.indptr[:-1] * VERTEX_BYTES
        self.graph_first_line: List[int] = (base_addrs // line).tolist()
        self.graph_last_line: List[int] = (
            (base_addrs + graph.degrees * VERTEX_BYTES - 1) // line
        ).tolist()
        factory = policy_factory(policy)
        # Shared struct-of-arrays PE state: every PE operates on its row,
        # cohort completions and metrics collection sweep the columns.
        self.pe_state = PEStateVector(config.num_pes, schedule.depth)
        self.pes: List[PE] = [PE(i, self, factory) for i in range(config.num_pes)]
        # Macro-step engine core: binds every PE's fast path to the
        # active backend (None = per-event booking; see
        # sim/backend/macro.py for the escape protocol).
        self.macro = build_macro(self)
        self._roots: Deque[int] = deque()
        self._pe_roots: List[Deque[int]] = [deque() for _ in self.pes]
        self._static_dispatch = config.root_dispatch == "static"
        if self._static_dispatch:
            # Deal roots round-robin: with vertices renumbered by
            # descending degree, heavy trees spread evenly across PEs.
            for v in self.context.roots():
                self._pe_roots[v % config.num_pes].append(v)
        else:
            self._roots.extend(self.context.roots())
        self._undispatched = graph.num_vertices
        self._tree_ids = 0
        self._finished = False
        self.finish_cycle = 0.0

        # Memory-footprint accounting (live candidate-set bytes).
        self._footprint = 0
        self.peak_footprint = 0

        # Load balance bookkeeping.
        self.split_rounds = 0
        self.partitions_sent = 0
        self._lb_scheduled = False

    # ------------------------------------------------------------------
    # services used by PEs / policies
    # ------------------------------------------------------------------
    def next_tree_id(self) -> int:
        """Globally unique search-tree instance id."""
        self._tree_ids += 1
        return self._tree_ids

    def feed_roots(self, pe: PE) -> None:
        """Hand root vertices to a PE while it can accept them."""
        queue = self._pe_roots[pe.pe_id] if self._static_dispatch else self._roots
        if not queue:
            return
        policy = pe.policy
        wants_root = policy.wants_root
        add_root = policy.add_root
        fed = 0
        while queue and wants_root():
            add_root(queue.popleft())
            fed += 1
        if fed:
            self._undispatched -= fed

    def footprint_add(self, num_bytes: int) -> None:
        """Track a newly live candidate set."""
        self._footprint += num_bytes
        if self._footprint > self.peak_footprint:
            self.peak_footprint = self._footprint

    def footprint_remove(self, num_bytes: int) -> None:
        """Track a candidate set going dead."""
        self._footprint -= num_bytes
        if self._footprint < 0:
            raise SimulationError("footprint accounting went negative")

    def roots_remaining(self) -> int:
        """Root vertices not yet handed to a policy."""
        return self._undispatched

    def _pe_busy(self, pe: PE) -> bool:
        """Whether a PE still has assigned work (live trees or queued roots)."""
        return pe.policy.has_work() or bool(self._pe_roots[pe.pe_id])

    def check_done(self) -> None:
        """Record the finish time once all work has drained."""
        if self._finished or self._undispatched:
            return
        for pe in self.pes:
            if pe.policy.has_work():
                return
        self._finished = True
        self.finish_cycle = self.engine.now

    # ------------------------------------------------------------------
    # load balance (system scheduler side of §4.1)
    # ------------------------------------------------------------------
    def _schedule_lb_check(self) -> None:
        if self._lb_scheduled or self._finished:
            return
        self._lb_scheduled = True
        self.engine.after(self.config.lb_check_interval, self._lb_check)

    def _lb_check(self) -> None:
        self._lb_scheduled = False
        if self._finished:
            return
        if not self._roots:
            busy = [pe.pe_id for pe in self.pes if self._pe_busy(pe)]
            idle = [pe.pe_id for pe in self.pes if not self._pe_busy(pe)]
            if busy and len(idle) >= self.config.lb_idle_fraction * len(self.pes):
                self._split_round(busy, idle)
        self._schedule_lb_check()

    def _split_round(self, busy: List[int], idle: List[int]) -> None:
        """One round of imbalance resolution (may repeat, §4.1 step 5)."""
        assignment = apportion_helpers(busy, idle, self.config.lb_max_helpers)
        any_sent = False
        for busy_pe, helpers in assignment.items():
            if not helpers:
                continue
            policy = self.pes[busy_pe].policy
            if not isinstance(policy, ShogunPolicy):
                continue
            partitions = policy.split_for_helpers(len(helpers))
            for helper_pe, partition in zip(helpers, partitions):
                arrival = self.memory.noc.transfer(
                    partition.message_lines, self.engine.now
                )
                receiver = self.pes[helper_pe].policy
                if not isinstance(receiver, ShogunPolicy):
                    raise SimulationError("partition sent to a non-Shogun PE")
                self.partitions_sent += 1
                any_sent = True

                def deliver(r=receiver, p=partition, pe=self.pes[helper_pe]) -> None:
                    r.receive_partition(p)
                    pe.kick()

                self.engine.at(arrival, deliver)
        if any_sent:
            self.split_rounds += 1

    # ------------------------------------------------------------------
    # run loop
    # ------------------------------------------------------------------
    def run(self) -> RunMetrics:
        """Simulate to completion and return the collected metrics."""
        for pe in self.pes:
            self.feed_roots(pe)
            pe.kick()
        if self.config.enable_splitting:
            self._schedule_lb_check()
        self.engine.run(until=self.config.max_cycles)
        self.check_done()
        if not self._finished:
            pending = {pe.pe_id: pe.policy.ready_count() for pe in self.pes}
            raise SimulationError(
                f"simulation stalled at cycle {self.engine.now}: "
                f"roots left={self.roots_remaining()}, ready={pending}"
            )
        return self._collect()

    # ------------------------------------------------------------------
    def _collect(self) -> RunMetrics:
        cycles = max(self.finish_cycle, 1.0)
        run = RunMetrics(policy=self.policy_name, cycles=self.finish_cycle)
        run.tasks_per_depth = [0] * self.schedule.depth
        total_iu_busy = 0.0
        total_busy_slots = 0.0
        total_idle_with_work = 0.0
        state = self.pe_state
        for pe in self.pes:
            pe._integrate()
            i = pe.pe_id
            l1 = self.memory.l1s[i]
            window = self.memory.l1_windows[i]
            pm = PEMetrics(
                pe_id=i,
                tasks_executed=int(state.tasks_executed[i]),
                matches=int(state.matches[i]),
                trees_completed=pe.policy.trees_completed,
                busy_slot_cycles=float(state.busy_slot_cycles[i]),
                idle_with_work_cycles=float(state.idle_with_work_cycles[i]),
                finish_cycle=float(state.finish_cycle[i]),
                iu_busy_cycles=pe.iu_pool.busy_cycles,
                iu_utilization=pe.iu_pool.utilization(cycles),
                l1_hits=l1.hits,
                l1_misses=l1.misses,
                l1_avg_latency=window.lifetime_average,
                tasks_per_depth=[int(n) for n in state.depth_executed[i]],
            )
            policy = pe.policy
            if isinstance(policy, ShogunPolicy):
                pm.conservative_entries = policy.monitor.entries
                pm.conservative_fraction = policy.monitor.conservative_fraction
                pm.spawn_waits = policy.tree.spawn_waits
                pm.token_stalls = policy.tree.token_stalls
                if policy.merger is not None:
                    run.merges += policy.merger.merges
                    run.quiesces += policy.merger.quiesces
            run.per_pe.append(pm)
            run.matches += pm.matches
            run.tasks_executed += pm.tasks_executed
            for d, n in enumerate(pm.tasks_per_depth):
                run.tasks_per_depth[d] += n
            run.trees_completed += pe.policy.trees_completed
            total_iu_busy += pe.iu_pool.busy_cycles
            total_busy_slots += pm.busy_slot_cycles
            total_idle_with_work += pm.idle_with_work_cycles

        num_pes = len(self.pes)
        run.iu_utilization = total_iu_busy / (cycles * self.config.num_ius * num_pes)
        run.l1_hit_rate = self.memory.overall_l1_hit_rate()
        samples = sum(w.samples for w in self.memory.l1_windows)
        run.l1_avg_latency = (
            sum(w.total_latency for w in self.memory.l1_windows) / samples
            if samples
            else 0.0
        )
        run.l2_hit_rate = self.memory.l2.hit_rate
        run.dram_requests = self.memory.dram.requests
        run.dram_utilization = self.memory.dram.utilization(cycles)
        run.noc_messages = self.memory.noc.messages
        run.noc_lines = self.memory.noc.lines_transferred
        run.peak_footprint_bytes = self.peak_footprint
        width = self.config.execution_width
        run.slot_utilization = total_busy_slots / (cycles * width * num_pes)
        run.barrier_idle_fraction = total_idle_with_work / (cycles * width * num_pes)
        run.split_rounds = self.split_rounds
        run.partitions_sent = self.partitions_sent
        if run.per_pe:
            run.conservative_fraction = sum(
                p.conservative_fraction for p in run.per_pe
            ) / len(run.per_pe)
        return run


def simulate(
    graph: CSRGraph,
    schedule: MatchingSchedule,
    *,
    policy: str = "shogun",
    config: Optional[SimConfig] = None,
) -> RunMetrics:
    """Run one accelerator simulation and return its metrics."""
    accel = Accelerator(graph, schedule, config or DEFAULT_CONFIG, policy)
    return accel.run()
