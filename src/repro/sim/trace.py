"""Task-event tracing: record what each PE executed and when.

The paper's Figure 2 visualizes scheduling schemes as occupancy charts
(task execution intervals per slot, with barrier gaps).  The
:class:`TraceRecorder` captures exactly that data from a live
simulation: one :class:`TaskSpan` per executed task with its dispatch
and completion times, depth, vertex and PE.  Attach it to an
:class:`~repro.sim.accelerator.Accelerator` before running:

    accel = Accelerator(graph, schedule, config, "shogun")
    trace = TraceRecorder.attach(accel)
    accel.run()
    print(trace.summary())
    trace.save_csv("trace.csv")

The recorder is deliberately non-invasive: it wraps the PE's start and
completion handlers, adds no simulation events, and changes no timing.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.task import SimTask
    from .accelerator import Accelerator


@dataclass(frozen=True)
class TaskSpan:
    """One executed task's occupancy interval."""

    pe: int
    task_id: int
    tree: int
    depth: int
    vertex: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Cycles from dispatch to completion."""
        return self.end - self.start


class TraceRecorder:
    """Records a :class:`TaskSpan` for every task a device executes."""

    def __init__(self) -> None:
        self.spans: List[TaskSpan] = []
        self._starts: Dict[int, float] = {}

    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, accel: "Accelerator") -> "TraceRecorder":
        """Wrap every PE of ``accel`` to feed this recorder."""
        recorder = cls()
        for pe in accel.pes:
            recorder._wrap(pe)
        return recorder

    def _wrap(self, pe) -> None:
        original_start = pe._start_task
        original_complete = pe._complete_task

        def start_task(task: "SimTask"):
            self._starts[task.task_id] = pe.engine.now
            return original_start(task)

        def complete_task(task: "SimTask"):
            begin = self._starts.pop(task.task_id, pe.engine.now)
            self.spans.append(
                TaskSpan(
                    pe=pe.pe_id,
                    task_id=task.task_id,
                    tree=task.tree,
                    depth=task.depth,
                    vertex=task.vertex,
                    start=begin,
                    end=pe.engine.now,
                )
            )
            return original_complete(task)

        pe._start_task = start_task
        pe._complete_task = complete_task

    # ------------------------------------------------------------------
    def spans_for_pe(self, pe_id: int) -> List[TaskSpan]:
        """Spans of one PE, in completion order."""
        return [s for s in self.spans if s.pe == pe_id]

    def concurrency_profile(self, pe_id: int, step: float = 1.0) -> List[int]:
        """Executing-task count per time step on one PE (Figure 2 data).

        Bucket ``i`` covers the half-open interval
        ``[i * step, (i + 1) * step)``: a span ending exactly on a bucket
        boundary does not leak into the next bucket, and a zero-duration
        span still occupies the bucket holding its start.  ``step`` may be
        any positive float; a run whose horizon is 0 (every span at time
        zero) yields a single bucket.
        """
        if step <= 0:
            raise ValueError("step must be positive")
        spans = self.spans_for_pe(pe_id)
        if not spans:
            return []
        horizon = max(s.end for s in spans)
        num = max(1, int(-(-horizon // step)))
        buckets = [0] * num
        for span in spans:
            first = min(int(span.start // step), num - 1)
            if span.end > span.start:
                # Half-open occupancy: an end on a boundary belongs to
                # the bucket it closes, not the one it opens.
                last = -(-span.end // step) - 1
            else:
                last = first
            last = min(int(last), num - 1)
            for i in range(first, last + 1):
                buckets[i] += 1
        return buckets

    def depth_histogram(self) -> Dict[int, int]:
        """Executed-task counts per search depth."""
        out: Dict[int, int] = {}
        for span in self.spans:
            out[span.depth] = out.get(span.depth, 0) + 1
        return out

    def mean_duration(self, depth: Optional[int] = None) -> float:
        """Average task duration (optionally for one depth)."""
        chosen = [s for s in self.spans if depth is None or s.depth == depth]
        if not chosen:
            return 0.0
        return sum(s.duration for s in chosen) / len(chosen)

    def summary(self) -> str:
        """Human-readable digest."""
        if not self.spans:
            return "trace: empty"
        per_depth = ", ".join(
            f"d{d}:{n}" for d, n in sorted(self.depth_histogram().items())
        )
        return (
            f"trace: {len(self.spans)} tasks ({per_depth}), "
            f"mean duration {self.mean_duration():.1f} cycles"
        )

    def save_csv(self, path: str | os.PathLike) -> None:
        """Write spans as CSV (pe, task, tree, depth, vertex, start, end).

        Missing parent directories are created, so nested output paths
        like ``out/run/trace.csv`` work without prior ``mkdir``.
        """
        parent = os.path.dirname(os.fspath(path))
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("pe,task_id,tree,depth,vertex,start,end\n")
            for s in self.spans:
                handle.write(
                    f"{s.pe},{s.task_id},{s.tree},{s.depth},{s.vertex},"
                    f"{s.start:.2f},{s.end:.2f}\n"
                )

    @classmethod
    def load_csv(cls, path: str | os.PathLike) -> "TraceRecorder":
        """Rebuild a recorder from a :meth:`save_csv` file.

        Times round-trip through the ``:.2f`` formatting of
        :meth:`save_csv`, so loaded spans carry centicycle-rounded
        ``start``/``end`` values; every analysis method
        (:meth:`concurrency_profile`, :meth:`depth_histogram`,
        :meth:`summary`, …) works on the loaded recorder.
        """
        recorder = cls()
        with open(path, "r", encoding="utf-8") as handle:
            header = handle.readline().strip()
            expected = "pe,task_id,tree,depth,vertex,start,end"
            if header != expected:
                raise ValueError(
                    f"unrecognized trace CSV header {header!r} in {os.fspath(path)}"
                )
            for lineno, line in enumerate(handle, start=2):
                line = line.strip()
                if not line:
                    continue
                fields = line.split(",")
                if len(fields) != 7:
                    raise ValueError(
                        f"malformed trace CSV row at {os.fspath(path)}:{lineno}"
                    )
                recorder.spans.append(
                    TaskSpan(
                        pe=int(fields[0]),
                        task_id=int(fields[1]),
                        tree=int(fields[2]),
                        depth=int(fields[3]),
                        vertex=int(fields[4]),
                        start=float(fields[5]),
                        end=float(fields[6]),
                    )
                )
        return recorder
