"""Accelerator simulator: event engine, memory system, PEs, device."""

from .accelerator import POLICIES, Accelerator, policy_factory, simulate
from .config import DEFAULT_CONFIG, SimConfig
from .dram import DRAMModel
from .engine import Engine
from .fu import IUPool
from .memory import Cache, MemorySystem, PELatencyWindow, ReferenceCache, Scratchpad
from .metrics import PEMetrics, RunMetrics, geomean
from .noc import NoC
from .pe import PE
from .trace import TaskSpan, TraceRecorder

__all__ = [
    "Accelerator",
    "Cache",
    "DEFAULT_CONFIG",
    "DRAMModel",
    "Engine",
    "IUPool",
    "MemorySystem",
    "NoC",
    "PE",
    "PELatencyWindow",
    "PEMetrics",
    "POLICIES",
    "ReferenceCache",
    "RunMetrics",
    "Scratchpad",
    "TaskSpan",
    "TraceRecorder",
    "SimConfig",
    "geomean",
    "policy_factory",
    "simulate",
]
