"""Memory hierarchy: set-associative caches, scratchpads and latency model.

The paper's memory system (Figure 4(a)): each PE owns a private scratchpad
(SPM) and a private L1 that caches *only intermediate results*; a shared
L2 backs the L1s and holds the CSR graph data (streamed, never in L1);
DRAM sits behind the L2.  This module provides:

* :class:`Cache` — a functional set-associative LRU cache at line
  granularity (used for both L1 and L2),
* :class:`Scratchpad` — an occupancy counter gating in-flight task data,
* :class:`MemorySystem` — the latency/accounting layer combining the
  caches, the NoC hop and the DRAM channel queues, with per-PE average
  L1-latency tracking feeding the conservative-mode monitor (§3.2.3:
  "the L1 cache thrashing is judged by the average cache access
  latency").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError, SimulationError
from .config import SimConfig
from .dram import DRAMModel
from .noc import NoC


class Cache:
    """Functional set-associative LRU cache at cache-line granularity."""

    def __init__(self, size_bytes: int, assoc: int, line_bytes: int, name: str = "cache") -> None:
        if size_bytes <= 0 or assoc < 1 or line_bytes <= 0:
            raise ConfigError("invalid cache geometry")
        lines = size_bytes // line_bytes
        if lines < assoc:
            raise ConfigError(f"{name}: fewer lines ({lines}) than ways ({assoc})")
        self.name = name
        self.assoc = assoc
        self.num_sets = max(1, lines // assoc)
        self.line_bytes = line_bytes
        # One insertion-ordered dict per set: first key = LRU.
        self._sets: List[Dict[int, None]] = [dict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _set_of(self, line_addr: int) -> Dict[int, None]:
        return self._sets[int(line_addr) % self.num_sets]

    def lookup(self, line_addr: int) -> bool:
        """Access a line: returns hit/miss and refreshes LRU order."""
        target = self._set_of(line_addr)
        if line_addr in target:
            del target[line_addr]
            target[line_addr] = None
            self.hits += 1
            return True
        self.misses += 1
        return False

    def contains(self, line_addr: int) -> bool:
        """Presence check without touching LRU state or stats."""
        return line_addr in self._set_of(line_addr)

    def insert(self, line_addr: int) -> Optional[int]:
        """Fill a line, returning the evicted line address (or ``None``)."""
        target = self._set_of(line_addr)
        if line_addr in target:
            del target[line_addr]
            target[line_addr] = None
            return None
        evicted = None
        if len(target) >= self.assoc:
            evicted = next(iter(target))
            del target[evicted]
            self.evictions += 1
        target[line_addr] = None
        return evicted

    def invalidate_all(self) -> None:
        """Drop all contents (used between independent simulations)."""
        for s in self._sets:
            s.clear()

    @property
    def accesses(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hit fraction over all lookups (0.0 when never accessed)."""
        total = self.accesses
        return self.hits / total if total else 0.0


class Scratchpad:
    """Per-PE SPM occupancy: lines reserved by in-flight tasks."""

    def __init__(self, capacity_lines: int) -> None:
        if capacity_lines < 1:
            raise ConfigError("scratchpad needs at least one line")
        self.capacity = capacity_lines
        self.used = 0
        self.peak = 0

    @property
    def free(self) -> int:
        """Unreserved lines."""
        return self.capacity - self.used

    def reserve(self, lines: int) -> None:
        """Claim lines for a task round; over-reservation is a PE bug."""
        if lines < 0 or lines > self.free:
            raise SimulationError(
                f"SPM reserve of {lines} lines with {self.free} free"
            )
        self.used += lines
        self.peak = max(self.peak, self.used)

    def release(self, lines: int) -> None:
        """Return reserved lines."""
        if lines < 0 or lines > self.used:
            raise SimulationError(f"SPM release of {lines} with {self.used} used")
        self.used -= lines


class PELatencyWindow:
    """Exponential moving average of L1 access latency for one PE.

    The conservative-mode monitor needs a *recent* average: an EMA with a
    per-access decay tracks thrashing onset quickly and recovers when the
    access pattern calms down, without storing per-epoch histograms.
    """

    def __init__(self, alpha: float = 0.02, initial: float = 2.0) -> None:
        self.alpha = alpha
        self.value = initial
        self.samples = 0
        self.total_latency = 0.0

    def record(self, latency: float) -> None:
        """Fold one access latency into the moving average."""
        self.value += self.alpha * (latency - self.value)
        self.samples += 1
        self.total_latency += latency

    @property
    def lifetime_average(self) -> float:
        """Whole-run average latency (reporting, not monitoring)."""
        return self.total_latency / self.samples if self.samples else 0.0


class MemorySystem:
    """Latency and accounting layer over L1s, L2, NoC and DRAM."""

    def __init__(self, config: SimConfig, num_pes: Optional[int] = None) -> None:
        self.config = config
        pes = num_pes if num_pes is not None else config.num_pes
        line = config.cache_line_bytes
        self.l1s = [
            Cache(config.l1_kb * 1024, config.l1_assoc, line, name=f"L1[{i}]")
            for i in range(pes)
        ]
        self.l2 = Cache(config.l2_kb * 1024, config.l2_assoc, line, name="L2")
        self.noc = NoC(config.noc_hop_cycles)
        self.dram = DRAMModel(
            config.dram_channels,
            config.dram_latency_cycles,
            config.dram_service_cycles,
            line,
        )
        self.l1_windows = [PELatencyWindow(initial=float(config.l1_hit_cycles)) for _ in range(pes)]
        self._l2_bank_free = [0.0] * max(1, config.l2_banks)
        self.graph_line_fetches = 0
        self.intermediate_line_fetches = 0

    # ------------------------------------------------------------------
    def line_addrs(self, base: int, num_bytes: int) -> List[int]:
        """Line addresses covering ``[base, base + num_bytes)``."""
        if num_bytes <= 0:
            return []
        line = self.config.cache_line_bytes
        first = base // line
        last = (base + num_bytes - 1) // line
        return list(range(first, last + 1))

    # ------------------------------------------------------------------
    def _l2_access(self, line_addr: int, arrive: float) -> float:
        """Latency path from an L2 lookup; fills L2 on miss.

        The L2 is banked by line address; each bank serializes accesses
        at one line per ``l2_service_cycles`` so aggregate bandwidth
        scales with ``l2_banks``.
        """
        bank = int(line_addr) % len(self._l2_bank_free)
        start = max(self._l2_bank_free[bank], arrive)
        self._l2_bank_free[bank] = start + self.config.l2_service_cycles
        done = start + self.config.l2_hit_cycles
        if not self.l2.lookup(line_addr):
            done = self.dram.request(line_addr, done)
            self.l2.insert(line_addr)
        return done

    def fetch_intermediate(
        self,
        pe_id: int,
        line_addrs: Sequence[int],
        now: float,
        *,
        record_window: bool = True,
    ) -> float:
        """Read intermediate-result lines through L1 → L2 → DRAM.

        Lines issue ``fetch_ports`` per cycle; the batch completes when
        its slowest line returns.  Every line's end-to-end latency is
        recorded in the PE's L1 latency window — an L1 hit costs
        ``l1_hit_cycles``, a miss adds the NoC round trip plus the L2/DRAM
        path, which is what pushes the average past the 50-cycle
        conservative-mode threshold under thrashing.  ``record_window``
        is cleared for single-line task-tree vertex fetches so the
        monitor sees the dispatch unit's *set* fetch latency, not a
        stream of hot one-line reads.
        """
        l1 = self.l1s[pe_id]
        window = self.l1_windows[pe_id] if record_window else None
        done = now
        for i, addr in enumerate(line_addrs):
            issue = now + i // self.config.fetch_ports
            if l1.lookup(addr):
                latency = float(self.config.l1_hit_cycles)
            else:
                arrive_l2 = issue + self.config.l1_hit_cycles + self.noc.memory_hop()
                back = self._l2_access(addr, arrive_l2) + self.noc.memory_hop()
                evicted = l1.insert(addr)
                if evicted is not None:
                    self.l2.insert(evicted)
                latency = back - issue
            if window is not None:
                window.record(latency)
            self.intermediate_line_fetches += 1
            done = max(done, issue + latency)
        return done

    def fetch_graph(self, pe_id: int, line_addrs: Sequence[int], now: float) -> float:
        """Read CSR graph lines (L2 → DRAM path, bypassing the L1)."""
        done = now
        for i, addr in enumerate(line_addrs):
            issue = now + i // self.config.fetch_ports
            arrive_l2 = issue + self.noc.memory_hop()
            back = self._l2_access(addr, arrive_l2) + self.noc.memory_hop()
            self.graph_line_fetches += 1
            done = max(done, back)
        return done

    def install_intermediate(self, pe_id: int, line_addrs: Sequence[int]) -> None:
        """Install freshly produced candidate-set lines into the PE's L1.

        The producing task writes its output through the SPM into the L1
        (intermediate results live in L1 and spill to L2 on replacement,
        §3.1); the write latency is folded into the task's writeback
        stage, so only the cache state changes here.
        """
        l1 = self.l1s[pe_id]
        for addr in line_addrs:
            evicted = l1.insert(addr)
            if evicted is not None:
                self.l2.insert(evicted)

    def warm_l1(self, pe_id: int, line_addrs: Sequence[int]) -> None:
        """Pre-install lines into a PE's L1 (partition-message payload)."""
        self.install_intermediate(pe_id, line_addrs)

    # ------------------------------------------------------------------
    def l1_hit_rate(self, pe_id: int) -> float:
        """L1 hit rate of one PE."""
        return self.l1s[pe_id].hit_rate

    def overall_l1_hit_rate(self) -> float:
        """Hit rate aggregated across all PEs' L1s."""
        hits = sum(c.hits for c in self.l1s)
        accesses = sum(c.accesses for c in self.l1s)
        return hits / accesses if accesses else 0.0

    def recent_l1_latency(self, pe_id: int) -> float:
        """Moving-average L1 access latency (conservative-mode input)."""
        return self.l1_windows[pe_id].value

    def memory_pressure(self, now: float) -> float:
        """How far ahead of ``now`` the DRAM channels are booked (cycles).

        The search-tree merging enable check uses this as the "memory
        system bandwidth has not been used up" condition (§4.2).
        """
        return max(0.0, self.dram.earliest_free() - now)
