"""Memory hierarchy: set-associative caches, scratchpads and latency model.

The paper's memory system (Figure 4(a)): each PE owns a private scratchpad
(SPM) and a private L1 that caches *only intermediate results*; a shared
L2 backs the L1s and holds the CSR graph data (streamed, never in L1);
DRAM sits behind the L2.  This module provides:

* :class:`Cache` — a functional set-associative LRU cache at line
  granularity (used for both L1 and L2), stored as flattened per-set
  numpy tag / LRU-stamp arrays with a batched :meth:`Cache.access_lines`
  API,
* :class:`ReferenceCache` — the original insertion-ordered-dict model,
  kept as the oracle for the trace-equivalence tests,
* :class:`Scratchpad` — an occupancy counter gating in-flight task data,
* :class:`MemorySystem` — the latency/accounting layer combining the
  caches, the NoC hop and the DRAM channel queues, with per-PE average
  L1-latency tracking feeding the conservative-mode monitor (§3.2.3:
  "the L1 cache thrashing is judged by the average cache access
  latency").

LRU-stamp equivalence
---------------------
The flattened cache replaces per-set insertion-ordered dicts with a
monotonic access counter: every hit or insert stamps the touched way with
the next tick, and the eviction victim is the way with the smallest
stamp.  Stamps are unique, so min-stamp selection reproduces the ordered
dict's "first key = LRU" victim exactly; lookup misses leave recency
untouched in both models.  ``tests/test_sim_memory.py`` drives both
implementations over recorded random traces and asserts identical
hit/miss/eviction sequences.

Hot-path notes
--------------
``fetch_intermediate`` / ``fetch_graph`` run once per set-operation input
of every simulated task, with tiny batches (the average neighbor set
spans one or two cache lines).  The loops therefore shadow the cache's
tick/stat counters and bank-queue list in locals and inline the hit path
(one dict probe + one stamp store), falling back to the full-fat
``insert`` machinery only on the rare miss.  All arithmetic keeps the
exact per-line expressions of the original model — ``latency = back -
issue``, ``done = max(done, issue + latency)``, sequential bank/channel
booking — so every accounted metric is bit-identical.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError, SimulationError
from .config import SimConfig
from .dram import DRAMModel
from .noc import NoC


class Cache:
    """Functional set-associative LRU cache at cache-line granularity.

    Contents live in flat numpy arrays: way ``w`` of set ``s`` is slot
    ``s * assoc + w`` in ``_tags`` (resident line address, ``-1`` empty)
    and ``_stamps`` (last-touch tick).  ``_where`` maps resident line
    address → slot for O(1) probes.
    """

    __slots__ = (
        "name",
        "assoc",
        "num_sets",
        "line_bytes",
        "_tags",
        "_stamps",
        "_fill",
        "_where",
        "_tick",
        "hits",
        "misses",
        "evictions",
    )

    def __init__(self, size_bytes: int, assoc: int, line_bytes: int, name: str = "cache") -> None:
        if size_bytes <= 0 or assoc < 1 or line_bytes <= 0:
            raise ConfigError("invalid cache geometry")
        lines = size_bytes // line_bytes
        if lines < assoc:
            raise ConfigError(f"{name}: fewer lines ({lines}) than ways ({assoc})")
        self.name = name
        self.assoc = assoc
        self.num_sets = max(1, lines // assoc)
        self.line_bytes = line_bytes
        self._tags = np.full(self.num_sets * assoc, -1, dtype=np.int64)
        self._stamps = np.zeros(self.num_sets * assoc, dtype=np.int64)
        self._fill: List[int] = [0] * self.num_sets
        self._where: Dict[int, int] = {}
        self._tick = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(self, line_addr: int) -> bool:
        """Access a line: returns hit/miss and refreshes LRU order."""
        slot = self._where.get(line_addr)
        if slot is not None:
            self._stamps[slot] = self._tick
            self._tick += 1
            self.hits += 1
            return True
        self.misses += 1
        return False

    def contains(self, line_addr: int) -> bool:
        """Presence check without touching LRU state or stats."""
        return line_addr in self._where

    def insert(self, line_addr: int) -> Optional[int]:
        """Fill a line, returning the evicted line address (or ``None``)."""
        where = self._where
        slot = where.get(line_addr)
        if slot is not None:
            self._stamps[slot] = self._tick
            self._tick += 1
            return None
        set_idx = int(line_addr) % self.num_sets
        base = set_idx * self.assoc
        evicted = None
        fill = self._fill[set_idx]
        if fill < self.assoc:
            slot = base + fill
            self._fill[set_idx] = fill + 1
        else:
            # Victim = smallest stamp in the set (stamps are unique).
            rel = int(self._stamps[base : base + self.assoc].argmin())
            slot = base + rel
            evicted = int(self._tags[slot])
            del where[evicted]
            self.evictions += 1
        self._tags[slot] = line_addr
        self._stamps[slot] = self._tick
        self._tick += 1
        where[line_addr] = slot
        return evicted

    # ------------------------------------------------------------------
    # batched variants
    # ------------------------------------------------------------------
    def access_lines(self, line_addrs: Sequence[int]) -> np.ndarray:
        """Batched :meth:`lookup` over **distinct** line addresses.

        Returns the boolean hit mask.  Hit ways are stamped in batch
        order with consecutive ticks, so the resulting LRU state equals a
        sequential lookup sweep; stats update identically.  Duplicate
        addresses within one batch are not supported (a duplicate's
        second access could flip from miss to hit mid-batch) — callers
        with possibly-duplicated batches use sequential :meth:`lookup`.
        """
        n = len(line_addrs)
        if n == 0:
            return np.zeros(0, dtype=bool)
        addrs = np.asarray(line_addrs, dtype=np.int64)
        sets = addrs % self.num_sets
        ways = self._tags.reshape(self.num_sets, self.assoc)[sets]
        hit_ways = ways == addrs[:, None]
        mask = hit_ways.any(axis=1)
        slots = (sets * self.assoc + hit_ways.argmax(axis=1))[mask]
        nh = int(len(slots))
        if nh:
            self._stamps[slots] = np.arange(self._tick, self._tick + nh, dtype=np.int64)
            self._tick += nh
        self.hits += nh
        self.misses += n - nh
        return mask

    def insert_lines(self, line_addrs: Sequence[int]) -> List[int]:
        """Batched :meth:`insert`; returns the evicted line addresses."""
        insert = self.insert
        out: List[int] = []
        for addr in line_addrs:
            evicted = insert(addr)
            if evicted is not None:
                out.append(evicted)
        return out

    def invalidate_all(self) -> None:
        """Drop all contents (used between independent simulations)."""
        self._tags.fill(-1)
        self._stamps.fill(0)
        self._fill = [0] * self.num_sets
        self._where.clear()
        self._tick = 0

    @property
    def accesses(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hit fraction over all lookups (0.0 when never accessed)."""
        total = self.accesses
        return self.hits / total if total else 0.0


class ReferenceCache:
    """Insertion-ordered-dict LRU cache: the original (slow) model.

    Retained verbatim as the oracle for the flattened :class:`Cache`'s
    trace-equivalence tests; not used by the simulator hot path.
    """

    def __init__(self, size_bytes: int, assoc: int, line_bytes: int, name: str = "cache") -> None:
        if size_bytes <= 0 or assoc < 1 or line_bytes <= 0:
            raise ConfigError("invalid cache geometry")
        lines = size_bytes // line_bytes
        if lines < assoc:
            raise ConfigError(f"{name}: fewer lines ({lines}) than ways ({assoc})")
        self.name = name
        self.assoc = assoc
        self.num_sets = max(1, lines // assoc)
        self.line_bytes = line_bytes
        # One insertion-ordered dict per set: first key = LRU.
        self._sets: List[Dict[int, None]] = [dict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _set_of(self, line_addr: int) -> Dict[int, None]:
        return self._sets[int(line_addr) % self.num_sets]

    def lookup(self, line_addr: int) -> bool:
        """Access a line: returns hit/miss and refreshes LRU order."""
        target = self._set_of(line_addr)
        if line_addr in target:
            del target[line_addr]
            target[line_addr] = None
            self.hits += 1
            return True
        self.misses += 1
        return False

    def contains(self, line_addr: int) -> bool:
        """Presence check without touching LRU state or stats."""
        return line_addr in self._set_of(line_addr)

    def insert(self, line_addr: int) -> Optional[int]:
        """Fill a line, returning the evicted line address (or ``None``)."""
        target = self._set_of(line_addr)
        if line_addr in target:
            del target[line_addr]
            target[line_addr] = None
            return None
        evicted = None
        if len(target) >= self.assoc:
            evicted = next(iter(target))
            del target[evicted]
            self.evictions += 1
        target[line_addr] = None
        return evicted

    def invalidate_all(self) -> None:
        """Drop all contents (used between independent simulations)."""
        for s in self._sets:
            s.clear()

    @property
    def accesses(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hit fraction over all lookups (0.0 when never accessed)."""
        total = self.accesses
        return self.hits / total if total else 0.0


class Scratchpad:
    """Per-PE SPM occupancy: lines reserved by in-flight tasks."""

    __slots__ = ("capacity", "used", "peak")

    def __init__(self, capacity_lines: int) -> None:
        if capacity_lines < 1:
            raise ConfigError("scratchpad needs at least one line")
        self.capacity = capacity_lines
        self.used = 0
        self.peak = 0

    @property
    def free(self) -> int:
        """Unreserved lines."""
        return self.capacity - self.used

    def reserve(self, lines: int) -> None:
        """Claim lines for a task round; over-reservation is a PE bug."""
        if lines < 0 or lines > self.free:
            raise SimulationError(
                f"SPM reserve of {lines} lines with {self.free} free"
            )
        self.used += lines
        self.peak = max(self.peak, self.used)

    def release(self, lines: int) -> None:
        """Return reserved lines."""
        if lines < 0 or lines > self.used:
            raise SimulationError(f"SPM release of {lines} with {self.used} used")
        self.used -= lines


class PELatencyWindow:
    """Exponential moving average of L1 access latency for one PE.

    The conservative-mode monitor needs a *recent* average: an EMA with a
    per-access decay tracks thrashing onset quickly and recovers when the
    access pattern calms down, without storing per-epoch histograms.
    """

    __slots__ = ("alpha", "value", "samples", "total_latency")

    def __init__(self, alpha: float = 0.02, initial: float = 2.0) -> None:
        self.alpha = alpha
        self.value = initial
        self.samples = 0
        self.total_latency = 0.0

    def record(self, latency: float) -> None:
        """Fold one access latency into the moving average."""
        self.value += self.alpha * (latency - self.value)
        self.samples += 1
        self.total_latency += latency

    @property
    def lifetime_average(self) -> float:
        """Whole-run average latency (reporting, not monitoring)."""
        return self.total_latency / self.samples if self.samples else 0.0


class MemorySystem:
    """Latency and accounting layer over L1s, L2, NoC and DRAM."""

    def __init__(self, config: SimConfig, num_pes: Optional[int] = None) -> None:
        self.config = config
        pes = num_pes if num_pes is not None else config.num_pes
        line = config.cache_line_bytes
        self.l1s = [
            Cache(config.l1_kb * 1024, config.l1_assoc, line, name=f"L1[{i}]")
            for i in range(pes)
        ]
        self.l2 = Cache(config.l2_kb * 1024, config.l2_assoc, line, name="L2")
        self.noc = NoC(config.noc_hop_cycles)
        self.dram = DRAMModel(
            config.dram_channels,
            config.dram_latency_cycles,
            config.dram_service_cycles,
            line,
        )
        self.l1_windows = [PELatencyWindow(initial=float(config.l1_hit_cycles)) for _ in range(pes)]
        self._l2_bank_free = [0.0] * max(1, config.l2_banks)
        self._l1_hit_cycles_f = float(config.l1_hit_cycles)
        self.graph_line_fetches = 0
        self.intermediate_line_fetches = 0

    # ------------------------------------------------------------------
    def line_addrs(self, base: int, num_bytes: int) -> List[int]:
        """Line addresses covering ``[base, base + num_bytes)``."""
        if num_bytes <= 0:
            return []
        line = self.config.cache_line_bytes
        first = base // line
        last = (base + num_bytes - 1) // line
        return list(range(first, last + 1))

    # ------------------------------------------------------------------
    def _l2_access(self, line_addr: int, arrive: float) -> float:
        """Latency path from an L2 lookup; fills L2 on miss.

        The L2 is banked by line address; each bank serializes accesses
        at one line per ``l2_service_cycles`` so aggregate bandwidth
        scales with ``l2_banks``.
        """
        bank = int(line_addr) % len(self._l2_bank_free)
        start = max(self._l2_bank_free[bank], arrive)
        self._l2_bank_free[bank] = start + self.config.l2_service_cycles
        done = start + self.config.l2_hit_cycles
        if not self.l2.lookup(line_addr):
            done = self.dram.request(line_addr, done)
            self.l2.insert(line_addr)
        return done

    def fetch_intermediate(
        self,
        pe_id: int,
        line_addrs: Sequence[int],
        now: float,
        *,
        record_window: bool = True,
    ) -> float:
        """Read intermediate-result lines through L1 → L2 → DRAM.

        Lines issue ``fetch_ports`` per cycle; the batch completes when
        its slowest line returns.  Every line's end-to-end latency is
        recorded in the PE's L1 latency window — an L1 hit costs
        ``l1_hit_cycles``, a miss adds the NoC round trip plus the L2/DRAM
        path, which is what pushes the average past the 50-cycle
        conservative-mode threshold under thrashing.  ``record_window``
        is cleared for single-line task-tree vertex fetches so the
        monitor sees the dispatch unit's *set* fetch latency, not a
        stream of hot one-line reads.
        """
        l1 = self.l1s[pe_id]
        where_get = l1._where.get
        stamps = l1._stamps
        tick = l1._tick
        hits = 0
        config = self.config
        ports = config.fetch_ports
        l1_hit = float(config.l1_hit_cycles)
        hop = self.noc.hop_cycles
        window = self.l1_windows[pe_id] if record_window else None
        record = window.record if window is not None else None
        done = now
        n = 0
        for i, addr in enumerate(line_addrs):
            issue = now + i // ports
            slot = where_get(addr)
            if slot is not None:
                stamps[slot] = tick
                tick += 1
                hits += 1
                latency = l1_hit
            else:
                # Miss path (rare): hand back to the full-fat machinery,
                # keeping the shadowed tick coherent across the insert.
                l1.misses += 1
                l1._tick = tick
                arrive_l2 = issue + config.l1_hit_cycles + hop
                back = self._l2_access(addr, arrive_l2) + hop
                evicted = l1.insert(addr)
                if evicted is not None:
                    self.l2.insert(evicted)
                tick = l1._tick
                latency = back - issue
            if record is not None:
                record(latency)
            n += 1
            finish = issue + latency
            if finish > done:
                done = finish
        l1._tick = tick
        l1.hits += hits
        self.intermediate_line_fetches += n
        return done

    def fetch_intermediate_line(self, pe_id: int, line_addr: int, now: float) -> float:
        """One-line :meth:`fetch_intermediate` with ``record_window=False``.

        The task-tree vertex fetch touches exactly one line of the
        parent's candidate set on every task start, so this path skips
        the batch loop.  The arithmetic mirrors the batch path for a
        single line at issue position 0 (``issue = now + 0``).
        """
        l1 = self.l1s[pe_id]
        self.intermediate_line_fetches += 1
        slot = l1._where.get(line_addr)
        issue = now + 0
        if slot is not None:
            l1._stamps[slot] = l1._tick
            l1._tick += 1
            l1.hits += 1
            latency = self._l1_hit_cycles_f
        else:
            l1.misses += 1
            hop = self.noc.hop_cycles
            arrive_l2 = issue + self.config.l1_hit_cycles + hop
            back = self._l2_access(line_addr, arrive_l2) + hop
            evicted = l1.insert(line_addr)
            if evicted is not None:
                self.l2.insert(evicted)
            latency = back - issue
        finish = issue + latency
        return finish if finish > now else now

    def fetch_graph(self, pe_id: int, line_addrs: Sequence[int], now: float) -> float:
        """Read CSR graph lines (L2 → DRAM path, bypassing the L1).

        Graph batches may repeat a line (adjacent neighbor sets sharing a
        boundary cache line), so classification stays sequential — a
        repeat must see the LRU/bank state its predecessor left behind.
        """
        l2 = self.l2
        where_get = l2._where.get
        stamps = l2._stamps
        tick = l2._tick
        hits = 0
        bank_free = self._l2_bank_free
        nbanks = len(bank_free)
        config = self.config
        ports = config.fetch_ports
        l2_hit = config.l2_hit_cycles
        l2_service = config.l2_service_cycles
        hop = self.noc.hop_cycles
        done = now
        n = 0
        for i, addr in enumerate(line_addrs):
            issue = now + i // ports
            arrive = issue + hop
            bank = int(addr) % nbanks
            queued = bank_free[bank]
            start = queued if queued >= arrive else arrive
            bank_free[bank] = start + l2_service
            slot = where_get(addr)
            if slot is not None:
                stamps[slot] = tick
                tick += 1
                hits += 1
                back = start + l2_hit + hop
            else:
                l2.misses += 1
                l2._tick = tick
                back = self.dram.request(addr, start + l2_hit)
                l2.insert(addr)
                tick = l2._tick
                back = back + hop
            n += 1
            if back > done:
                done = back
        l2._tick = tick
        l2.hits += hits
        self.graph_line_fetches += n
        return done

    def install_intermediate(self, pe_id: int, line_addrs: Sequence[int]) -> None:
        """Install freshly produced candidate-set lines into the PE's L1.

        The producing task writes its output through the SPM into the L1
        (intermediate results live in L1 and spill to L2 on replacement,
        §3.1); the write latency is folded into the task's writeback
        stage, so only the cache state changes here.
        """
        l1_insert = self.l1s[pe_id].insert
        l2_insert = self.l2.insert
        for addr in line_addrs:
            evicted = l1_insert(addr)
            if evicted is not None:
                l2_insert(evicted)

    def warm_l1(self, pe_id: int, line_addrs: Sequence[int]) -> None:
        """Pre-install lines into a PE's L1 (partition-message payload)."""
        self.install_intermediate(pe_id, line_addrs)

    # ------------------------------------------------------------------
    def l1_hit_rate(self, pe_id: int) -> float:
        """L1 hit rate of one PE."""
        return self.l1s[pe_id].hit_rate

    def overall_l1_hit_rate(self) -> float:
        """Hit rate aggregated across all PEs' L1s."""
        hits = sum(c.hits for c in self.l1s)
        accesses = sum(c.accesses for c in self.l1s)
        return hits / accesses if accesses else 0.0

    def recent_l1_latency(self, pe_id: int) -> float:
        """Moving-average L1 access latency (conservative-mode input)."""
        return self.l1_windows[pe_id].value

    def memory_pressure(self, now: float) -> float:
        """How far ahead of ``now`` the DRAM channels are booked (cycles).

        The search-tree merging enable check uses this as the "memory
        system bandwidth has not been used up" condition (§4.2).
        """
        return max(0.0, self.dram.earliest_free() - now)
