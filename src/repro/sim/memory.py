"""Memory hierarchy: set-associative caches, scratchpads and latency model.

The paper's memory system (Figure 4(a)): each PE owns a private scratchpad
(SPM) and a private L1 that caches *only intermediate results*; a shared
L2 backs the L1s and holds the CSR graph data (streamed, never in L1);
DRAM sits behind the L2.  This module provides:

* :class:`Cache` — a functional set-associative LRU cache at line
  granularity (used for both L1 and L2), stored as flattened per-set
  numpy tag / LRU-stamp arrays with a batched :meth:`Cache.access_lines`
  API,
* :class:`ReferenceCache` — the original insertion-ordered-dict model,
  kept as the oracle for the trace-equivalence tests,
* :class:`Scratchpad` — an occupancy counter gating in-flight task data,
* :class:`MemorySystem` — the latency/accounting layer combining the
  caches, the NoC hop and the DRAM channel queues, with per-PE average
  L1-latency tracking feeding the conservative-mode monitor (§3.2.3:
  "the L1 cache thrashing is judged by the average cache access
  latency").

LRU-stamp equivalence
---------------------
The flattened cache replaces per-set insertion-ordered dicts with a
monotonic access counter: every hit or insert stamps the touched way with
the next tick, and the eviction victim is the way with the smallest
stamp.  Stamps are unique, so min-stamp selection reproduces the ordered
dict's "first key = LRU" victim exactly; lookup misses leave recency
untouched in both models.  ``tests/test_sim_memory.py`` drives both
implementations over recorded random traces and asserts identical
hit/miss/eviction sequences.

Hot-path notes
--------------
The memory hierarchy is *span-native*: neighbor, intermediate and output
sets are contiguous byte ranges, so their line sets are ``(first_line,
last_line)`` spans known from two divisions — never materialized lists.
:meth:`MemorySystem.fetch_intermediate_span` and
:meth:`MemorySystem.fetch_graph_spans` run once per set-operation input
of every simulated task, with tiny spans (the average neighbor set
covers one or two cache lines).  Both take an all-hit fast path — a
side-effect-free residency probe, then batch LRU stamping and a
float-only latency walk — and fall back to the exact per-line walk of
the sequence entry points (:meth:`MemorySystem.fetch_intermediate` /
:meth:`MemorySystem.fetch_graph`, retained for strided multi-round
chunks and the validation shims) whenever any line misses.  All
arithmetic keeps the exact per-line expressions of the original model —
``latency = back - issue``, ``done = max(done, issue + latency)``,
sequential bank/channel booking, per-access EMA folds — so every
accounted metric is bit-identical; ``tests/test_sim_memory_spans.py``
drives span and sequence entries over recorded random traces and asserts
identical timing, cache state and counters.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError, SimulationError
from . import backend as _backend
from .config import SimConfig
from .dram import DRAMModel
from .noc import NoC


def span_round_chunk(first_line: int, last_line: int, r: int, rounds: int) -> range:
    """Round ``r``'s lines of one span under strided round assignment.

    The multi-round SPM path assigns the line at position ``j`` of a
    task's line list to round ``j % rounds`` (historically via
    ``lines[r::rounds]`` slicing).  For a contiguous span that slice is
    itself an arithmetic progression, so no list is ever built.
    """
    return range(first_line + r, last_line + 1, rounds)


def spans_round_chunk(
    spans: Sequence[Tuple[int, int]], r: int, rounds: int
) -> List[int]:
    """Round ``r``'s lines of concatenated spans (global strided slice).

    Equals ``concat[r::rounds]`` where ``concat`` is the concatenation of
    ``range(first, last + 1)`` over ``spans`` — the position index runs
    across span boundaries, so each span contributes the lines whose
    *global* position is congruent to ``r`` modulo ``rounds``.
    """
    out: List[int] = []
    extend = out.extend
    offset = 0
    for first_line, last_line in spans:
        length = last_line - first_line + 1
        start = (r - offset) % rounds
        if start < length:
            extend(range(first_line + start, last_line + 1, rounds))
        offset += length
    return out


class Cache:
    """Functional set-associative LRU cache at cache-line granularity.

    Contents live in flat numpy arrays: way ``w`` of set ``s`` is slot
    ``s * assoc + w`` in ``_tags`` (resident line address, ``-1`` empty)
    and ``_stamps`` (last-touch tick).  ``_where`` maps resident line
    address → slot for O(1) probes.
    """

    __slots__ = (
        "name",
        "assoc",
        "num_sets",
        "line_bytes",
        "_tags",
        "_stamps",
        "_fill",
        "_where",
        "_meta",
        "evictions",
    )

    def __init__(self, size_bytes: int, assoc: int, line_bytes: int, name: str = "cache") -> None:
        if size_bytes <= 0 or assoc < 1 or line_bytes <= 0:
            raise ConfigError("invalid cache geometry")
        lines = size_bytes // line_bytes
        if lines < assoc:
            raise ConfigError(f"{name}: fewer lines ({lines}) than ways ({assoc})")
        self.name = name
        self.assoc = assoc
        self.num_sets = max(1, lines // assoc)
        self.line_bytes = line_bytes
        self._tags = np.full(self.num_sets * assoc, -1, dtype=np.int64)
        self._stamps = np.zeros(self.num_sets * assoc, dtype=np.int64)
        self._fill: List[int] = [0] * self.num_sets
        self._where: Dict[int, int] = {}
        #: [tick, hits, misses] — one int64 array so the compiled
        #: macro-step core can restamp hits and advance the LRU clock
        #: through a single pinned pointer.
        self._meta = np.zeros(3, dtype=np.int64)
        self.evictions = 0

    # ------------------------------------------------------------------
    # The LRU clock and hit/miss counters live in ``_meta``; these
    # properties keep the historical attribute API (Python ints in,
    # Python ints out) for every interpreted caller.
    @property
    def _tick(self) -> int:
        return int(self._meta[0])

    @_tick.setter
    def _tick(self, value: int) -> None:
        self._meta[0] = value

    @property
    def hits(self) -> int:
        return int(self._meta[1])

    @hits.setter
    def hits(self, value: int) -> None:
        self._meta[1] = value

    @property
    def misses(self) -> int:
        return int(self._meta[2])

    @misses.setter
    def misses(self, value: int) -> None:
        self._meta[2] = value

    def lookup(self, line_addr: int) -> bool:
        """Access a line: returns hit/miss and refreshes LRU order."""
        slot = self._where.get(line_addr)
        if slot is not None:
            self._stamps[slot] = self._tick
            self._tick += 1
            self.hits += 1
            return True
        self.misses += 1
        return False

    def contains(self, line_addr: int) -> bool:
        """Presence check without touching LRU state or stats."""
        return line_addr in self._where

    def insert(self, line_addr: int) -> Optional[int]:
        """Fill a line, returning the evicted line address (or ``None``)."""
        where = self._where
        slot = where.get(line_addr)
        if slot is not None:
            self._stamps[slot] = self._tick
            self._tick += 1
            return None
        set_idx = int(line_addr) % self.num_sets
        base = set_idx * self.assoc
        evicted = None
        fill = self._fill[set_idx]
        if fill < self.assoc:
            slot = base + fill
            self._fill[set_idx] = fill + 1
        else:
            # Victim = smallest stamp in the set (stamps are unique).
            rel = int(self._stamps[base : base + self.assoc].argmin())
            slot = base + rel
            evicted = int(self._tags[slot])
            del where[evicted]
            self.evictions += 1
        self._tags[slot] = line_addr
        self._stamps[slot] = self._tick
        self._tick += 1
        where[line_addr] = slot
        return evicted

    # ------------------------------------------------------------------
    # batched variants
    # ------------------------------------------------------------------
    def access_lines(self, line_addrs: Sequence[int]) -> np.ndarray:
        """Batched :meth:`lookup` over **distinct** line addresses.

        Returns the boolean hit mask.  Hit ways are stamped in batch
        order with consecutive ticks, so the resulting LRU state equals a
        sequential lookup sweep; stats update identically.  Duplicate
        addresses within one batch are not supported (a duplicate's
        second access could flip from miss to hit mid-batch) — callers
        with possibly-duplicated batches use sequential :meth:`lookup`.
        """
        n = len(line_addrs)
        if n == 0:
            return np.zeros(0, dtype=bool)
        addrs = np.asarray(line_addrs, dtype=np.int64)
        sets = addrs % self.num_sets
        ways = self._tags.reshape(self.num_sets, self.assoc)[sets]
        hit_ways = ways == addrs[:, None]
        mask = hit_ways.any(axis=1)
        slots = (sets * self.assoc + hit_ways.argmax(axis=1))[mask]
        nh = int(len(slots))
        if nh:
            self._stamps[slots] = np.arange(self._tick, self._tick + nh, dtype=np.int64)
            self._tick += nh
        self.hits += nh
        self.misses += n - nh
        return mask

    def insert_lines(self, line_addrs: Sequence[int]) -> List[int]:
        """Batched :meth:`insert`; returns the evicted line addresses."""
        insert = self.insert
        out: List[int] = []
        for addr in line_addrs:
            evicted = insert(addr)
            if evicted is not None:
                out.append(evicted)
        return out

    # ------------------------------------------------------------------
    # span kernels
    # ------------------------------------------------------------------
    def _span_probe(self, first_line: int, last_line: int):
        """Residency of the span ``[first_line, last_line]`` (no state change).

        Returns ``(sets, hit_ways, mask)`` numpy arrays: the set index per
        line, the per-way tag-match matrix and the per-line hit mask.
        Span lines are consecutive integers, hence always distinct.
        """
        addrs = np.arange(first_line, last_line + 1, dtype=np.int64)
        sets = addrs % self.num_sets
        hit_ways = self._tags.reshape(self.num_sets, self.assoc)[sets] == addrs[:, None]
        return sets, hit_ways, hit_ways.any(axis=1)

    def access_span(self, first_line: int, last_line: int) -> np.ndarray:
        """:meth:`access_lines` over the span ``[first_line, last_line]``.

        Returns the boolean hit mask.  Hit ways are stamped in address
        order with consecutive ticks, exactly as a sequential
        :meth:`lookup` sweep would leave them; stats update identically.
        """
        n = last_line - first_line + 1
        if n <= 0:
            return np.zeros(0, dtype=bool)
        sets, hit_ways, mask = self._span_probe(first_line, last_line)
        slots = (sets * self.assoc + hit_ways.argmax(axis=1))[mask]
        nh = int(len(slots))
        if nh:
            self._stamps[slots] = np.arange(self._tick, self._tick + nh, dtype=np.int64)
            self._tick += nh
        self.hits += nh
        self.misses += n - nh
        return mask

    def insert_span(self, first_line: int, last_line: int) -> List[int]:
        """Batched :meth:`insert` of a span; returns evicted line addresses.

        Two fast paths cover the states the simulator actually produces:
        *all lines already resident* (a pure LRU refresh — the usual
        writeback to a reused set address; handled by the active
        backend's ``span_resident_stamp`` kernel, order-independent at
        any width because restamping never evicts) and *all lines new
        with a free way in every target set* (a first-touch fill).
        Anything mixed, or a first-touch span wide enough to revisit a
        set (``n > num_sets``), falls back to the sequential
        :meth:`insert` walk so eviction interleaving stays exact.
        """
        n = last_line - first_line + 1
        if n <= 0:
            return []
        if n >= 2 and _backend._active.span_resident_stamp(
            self, first_line, last_line
        ):
            return []
        if 8 <= n <= self.num_sets:
            # Consecutive addresses with n <= num_sets map to distinct
            # sets, so per-set outcomes are order-independent.
            sets, hit_ways, mask = self._span_probe(first_line, last_line)
            if not mask.any():
                fill = self._fill
                sets_list = sets.tolist()
                fills = [fill[s] for s in sets_list]
                if max(fills) < self.assoc:
                    slots = sets * self.assoc + np.asarray(fills, dtype=np.int64)
                    addrs = np.arange(first_line, last_line + 1, dtype=np.int64)
                    self._tags[slots] = addrs
                    self._stamps[slots] = np.arange(
                        self._tick, self._tick + n, dtype=np.int64
                    )
                    self._tick += n
                    where = self._where
                    for addr, slot, set_idx in zip(
                        range(first_line, last_line + 1), slots.tolist(), sets_list
                    ):
                        where[addr] = slot
                        fill[set_idx] += 1
                    return []
        insert = self.insert
        out: List[int] = []
        for addr in range(first_line, last_line + 1):
            evicted = insert(addr)
            if evicted is not None:
                out.append(evicted)
        return out

    def invalidate_all(self) -> None:
        """Drop all contents (used between independent simulations)."""
        self._tags.fill(-1)
        self._stamps.fill(0)
        self._fill = [0] * self.num_sets
        self._where.clear()
        self._meta[0] = 0

    @property
    def accesses(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hit fraction over all lookups (0.0 when never accessed)."""
        total = self.accesses
        return self.hits / total if total else 0.0


class ReferenceCache:
    """Insertion-ordered-dict LRU cache: the original (slow) model.

    Retained verbatim as the oracle for the flattened :class:`Cache`'s
    trace-equivalence tests; not used by the simulator hot path.
    """

    def __init__(self, size_bytes: int, assoc: int, line_bytes: int, name: str = "cache") -> None:
        if size_bytes <= 0 or assoc < 1 or line_bytes <= 0:
            raise ConfigError("invalid cache geometry")
        lines = size_bytes // line_bytes
        if lines < assoc:
            raise ConfigError(f"{name}: fewer lines ({lines}) than ways ({assoc})")
        self.name = name
        self.assoc = assoc
        self.num_sets = max(1, lines // assoc)
        self.line_bytes = line_bytes
        # One insertion-ordered dict per set: first key = LRU.
        self._sets: List[Dict[int, None]] = [dict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _set_of(self, line_addr: int) -> Dict[int, None]:
        return self._sets[int(line_addr) % self.num_sets]

    def lookup(self, line_addr: int) -> bool:
        """Access a line: returns hit/miss and refreshes LRU order."""
        target = self._set_of(line_addr)
        if line_addr in target:
            del target[line_addr]
            target[line_addr] = None
            self.hits += 1
            return True
        self.misses += 1
        return False

    def contains(self, line_addr: int) -> bool:
        """Presence check without touching LRU state or stats."""
        return line_addr in self._set_of(line_addr)

    def insert(self, line_addr: int) -> Optional[int]:
        """Fill a line, returning the evicted line address (or ``None``)."""
        target = self._set_of(line_addr)
        if line_addr in target:
            del target[line_addr]
            target[line_addr] = None
            return None
        evicted = None
        if len(target) >= self.assoc:
            evicted = next(iter(target))
            del target[evicted]
            self.evictions += 1
        target[line_addr] = None
        return evicted

    def invalidate_all(self) -> None:
        """Drop all contents (used between independent simulations)."""
        for s in self._sets:
            s.clear()

    @property
    def accesses(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hit fraction over all lookups (0.0 when never accessed)."""
        total = self.accesses
        return self.hits / total if total else 0.0


class Scratchpad:
    """Per-PE SPM occupancy: lines reserved by in-flight tasks."""

    __slots__ = ("capacity", "used", "peak")

    def __init__(self, capacity_lines: int) -> None:
        if capacity_lines < 1:
            raise ConfigError("scratchpad needs at least one line")
        self.capacity = capacity_lines
        self.used = 0
        self.peak = 0

    @property
    def free(self) -> int:
        """Unreserved lines."""
        return self.capacity - self.used

    def reserve(self, lines: int) -> None:
        """Claim lines for a task round; over-reservation is a PE bug."""
        if lines < 0 or lines > self.free:
            raise SimulationError(
                f"SPM reserve of {lines} lines with {self.free} free"
            )
        self.used += lines
        self.peak = max(self.peak, self.used)

    def release(self, lines: int) -> None:
        """Return reserved lines."""
        if lines < 0 or lines > self.used:
            raise SimulationError(f"SPM release of {lines} with {self.used} used")
        self.used -= lines


class PELatencyWindow:
    """Exponential moving average of L1 access latency for one PE.

    The conservative-mode monitor needs a *recent* average: an EMA with a
    per-access decay tracks thrashing onset quickly and recovers when the
    access pattern calms down, without storing per-epoch histograms.
    """

    __slots__ = ("alpha", "_state")

    def __init__(self, alpha: float = 0.02, initial: float = 2.0) -> None:
        self.alpha = alpha
        #: [value, total_latency, samples] — one float64 array so the
        #: compiled macro-step core folds latencies in place.
        self._state = np.zeros(3, dtype=np.float64)
        self._state[0] = initial

    @property
    def value(self) -> float:
        return float(self._state[0])

    @value.setter
    def value(self, v: float) -> None:
        self._state[0] = v

    @property
    def total_latency(self) -> float:
        return float(self._state[1])

    @total_latency.setter
    def total_latency(self, v: float) -> None:
        self._state[1] = v

    @property
    def samples(self) -> int:
        return int(self._state[2])

    @samples.setter
    def samples(self, v: int) -> None:
        self._state[2] = v

    def record(self, latency: float) -> None:
        """Fold one access latency into the moving average."""
        state = self._state
        value = float(state[0])
        state[0] = value + self.alpha * (latency - value)
        state[2] += 1.0
        state[1] += latency

    @property
    def lifetime_average(self) -> float:
        """Whole-run average latency (reporting, not monitoring)."""
        return self.total_latency / self.samples if self.samples else 0.0


class MemorySystem:
    """Latency and accounting layer over L1s, L2, NoC and DRAM."""

    def __init__(self, config: SimConfig, num_pes: Optional[int] = None) -> None:
        self.config = config
        # Kernel backend: config override > REPRO_BACKEND > auto.  The
        # activation is process-global (setops dispatch follows) and the
        # bound set is consulted per span, so profiler instrumentation
        # applies to live instances.
        self._kernels = _backend.activate(getattr(config, "backend", None))
        self._ema_scratch = np.zeros(2, dtype=np.float64)
        pes = num_pes if num_pes is not None else config.num_pes
        line = config.cache_line_bytes
        self.l1s = [
            Cache(config.l1_kb * 1024, config.l1_assoc, line, name=f"L1[{i}]")
            for i in range(pes)
        ]
        self.l2 = Cache(config.l2_kb * 1024, config.l2_assoc, line, name="L2")
        self.noc = NoC(config.noc_hop_cycles)
        self.dram = DRAMModel(
            config.dram_channels,
            config.dram_latency_cycles,
            config.dram_service_cycles,
            line,
        )
        self.l1_windows = [PELatencyWindow(initial=float(config.l1_hit_cycles)) for _ in range(pes)]
        self._l2_bank_free = np.zeros(max(1, config.l2_banks), dtype=np.float64)
        # Hot-path constants (attribute chains hoisted out of the
        # per-fetch preludes).
        self._l1_hit_cycles_f = float(config.l1_hit_cycles)
        self._fetch_ports = config.fetch_ports
        self._l2_hit_cycles = config.l2_hit_cycles
        self._l2_service_cycles = config.l2_service_cycles
        self._hop_cycles = self.noc.hop_cycles
        # Stream-mode precondition for the span bank walk: consecutive
        # visits to one bank are >= l2_banks // fetch_ports cycles apart
        # (banks cycle with consecutive line addresses; lines issue
        # fetch_ports per cycle), so with the service time strictly below
        # that spacing a bank that once starts at arrival never queues
        # again within the span.  Strict `<` leaves rounding headroom.
        self._l2_stream_ok = float(config.l2_service_cycles) < (
            len(self._l2_bank_free) // max(1, config.fetch_ports)
        )
        #: [graph_line_fetches, intermediate_line_fetches] — one int64
        #: array so the compiled macro-step core counts lines in place.
        self._stats = np.zeros(2, dtype=np.int64)

    @property
    def graph_line_fetches(self) -> int:
        return int(self._stats[0])

    @graph_line_fetches.setter
    def graph_line_fetches(self, value: int) -> None:
        self._stats[0] = value

    @property
    def intermediate_line_fetches(self) -> int:
        return int(self._stats[1])

    @intermediate_line_fetches.setter
    def intermediate_line_fetches(self, value: int) -> None:
        self._stats[1] = value

    # ------------------------------------------------------------------
    def line_span(self, base: int, num_bytes: int) -> Optional[Tuple[int, int]]:
        """``(first_line, last_line)`` covering ``[base, base + num_bytes)``.

        ``None`` for empty ranges — the span equivalent of
        :meth:`line_addrs` returning ``[]``.
        """
        if num_bytes <= 0:
            return None
        line = self.config.cache_line_bytes
        return (base // line, (base + num_bytes - 1) // line)

    def line_addrs(self, base: int, num_bytes: int) -> List[int]:
        """Line addresses covering ``[base, base + num_bytes)``."""
        span = self.line_span(base, num_bytes)
        if span is None:
            return []
        return list(range(span[0], span[1] + 1))

    # ------------------------------------------------------------------
    def _l2_access(self, line_addr: int, arrive: float) -> float:
        """Latency path from an L2 lookup; fills L2 on miss.

        The L2 is banked by line address; each bank serializes accesses
        at one line per ``l2_service_cycles`` so aggregate bandwidth
        scales with ``l2_banks``.
        """
        bank = int(line_addr) % len(self._l2_bank_free)
        queued = float(self._l2_bank_free[bank])
        start = queued if queued >= arrive else arrive
        self._l2_bank_free[bank] = start + self.config.l2_service_cycles
        done = start + self.config.l2_hit_cycles
        if not self.l2.lookup(line_addr):
            done = self.dram.request(line_addr, done)
            self.l2.insert(line_addr)
        return done

    def fetch_intermediate(
        self,
        pe_id: int,
        line_addrs: Sequence[int],
        now: float,
        *,
        record_window: bool = True,
    ) -> float:
        """Read intermediate-result lines through L1 → L2 → DRAM.

        Lines issue ``fetch_ports`` per cycle; the batch completes when
        its slowest line returns.  Every line's end-to-end latency is
        recorded in the PE's L1 latency window — an L1 hit costs
        ``l1_hit_cycles``, a miss adds the NoC round trip plus the L2/DRAM
        path, which is what pushes the average past the 50-cycle
        conservative-mode threshold under thrashing.  ``record_window``
        is cleared for single-line task-tree vertex fetches so the
        monitor sees the dispatch unit's *set* fetch latency, not a
        stream of hot one-line reads.

        Sequence entry point: used by the strided multi-round chunks and
        as the oracle/fallback for :meth:`fetch_intermediate_span`.
        """
        return self._fetch_intermediate_walk(pe_id, line_addrs, now, record_window)

    def fetch_intermediate_span(
        self,
        pe_id: int,
        first_line: int,
        last_line: int,
        now: float,
        *,
        record_window: bool = True,
    ) -> float:
        """Span-native :meth:`fetch_intermediate` over ``[first_line, last_line]``.

        The hot path of every task start.  The active backend's
        ``span_resident_stamp`` kernel picks the all-hit fast path —
        residency probe plus batch LRU stamping, then a float-only fold
        of the constant hit latency into the PE's window (the backend's
        ``ema_fold`` kernel), with the batch completion time computed
        from the last line's issue slot (latencies are constant, so the
        last finish is the max) — and any miss falls back to the exact
        per-line walk.  Both paths reproduce the sequence entry point
        bit-for-bit under every backend.
        """
        l1 = self.l1s[pe_id]
        if last_line == first_line:
            # Single-line span — the dominant case: straight-line code.
            slot = l1._where.get(first_line)
            if slot is None:
                return self._fetch_intermediate_walk(
                    pe_id, (first_line,), now, record_window
                )
            tick = l1._tick
            l1._stamps[slot] = tick
            l1._tick = tick + 1
            l1.hits += 1
            self.intermediate_line_fetches += 1
            l1_hit = self._l1_hit_cycles_f
            if record_window:
                window = self.l1_windows[pe_id]
                window.value += window.alpha * (l1_hit - window.value)
                window.total_latency += l1_hit
                window.samples += 1
            finish = (now + 0) + l1_hit
            return finish if finish > now else now
        if not self._kernels.span_resident_stamp(l1, first_line, last_line):
            # Miss somewhere in the span (rare): the probe changed
            # nothing, so the sequential walk replays from scratch.
            return self._fetch_intermediate_walk(
                pe_id, range(first_line, last_line + 1), now, record_window
            )
        n = last_line - first_line + 1
        l1.hits += n
        self.intermediate_line_fetches += n
        l1_hit = self._l1_hit_cycles_f
        if record_window:
            self._kernels.ema_fold(
                self.l1_windows[pe_id], l1_hit, n, self._ema_scratch
            )
        finish = (now + (n - 1) // self._fetch_ports) + l1_hit
        return finish if finish > now else now

    def _fetch_intermediate_walk(
        self,
        pe_id: int,
        line_addrs: Sequence[int],
        now: float,
        record_window: bool,
    ) -> float:
        l1 = self.l1s[pe_id]
        where_get = l1._where.get
        stamps = l1._stamps
        tick = l1._tick
        hits = 0
        config = self.config
        ports = self._fetch_ports
        l1_hit = self._l1_hit_cycles_f
        hop = self._hop_cycles
        window = self.l1_windows[pe_id] if record_window else None
        record = window.record if window is not None else None
        done = now
        n = 0
        for i, addr in enumerate(line_addrs):
            issue = now + i // ports
            slot = where_get(addr)
            if slot is not None:
                stamps[slot] = tick
                tick += 1
                hits += 1
                latency = l1_hit
            else:
                # Miss path (rare): hand back to the full-fat machinery,
                # keeping the shadowed tick coherent across the insert.
                l1.misses += 1
                l1._tick = tick
                arrive_l2 = issue + config.l1_hit_cycles + hop
                back = self._l2_access(addr, arrive_l2) + hop
                evicted = l1.insert(addr)
                if evicted is not None:
                    self.l2.insert(evicted)
                tick = l1._tick
                latency = back - issue
            if record is not None:
                record(latency)
            n += 1
            finish = issue + latency
            if finish > done:
                done = finish
        l1._tick = tick
        l1.hits += hits
        self.intermediate_line_fetches += n
        return done

    def fetch_intermediate_line(self, pe_id: int, line_addr: int, now: float) -> float:
        """One-line :meth:`fetch_intermediate` with ``record_window=False``.

        The task-tree vertex fetch touches exactly one line of the
        parent's candidate set on every task start, so this path skips
        the batch loop.  The arithmetic mirrors the batch path for a
        single line at issue position 0 (``issue = now + 0``).
        """
        l1 = self.l1s[pe_id]
        self.intermediate_line_fetches += 1
        slot = l1._where.get(line_addr)
        issue = now + 0
        if slot is not None:
            l1._stamps[slot] = l1._tick
            l1._tick += 1
            l1.hits += 1
            latency = self._l1_hit_cycles_f
        else:
            l1.misses += 1
            hop = self.noc.hop_cycles
            arrive_l2 = issue + self.config.l1_hit_cycles + hop
            back = self._l2_access(line_addr, arrive_l2) + hop
            evicted = l1.insert(line_addr)
            if evicted is not None:
                self.l2.insert(evicted)
            latency = back - issue
        finish = issue + latency
        return finish if finish > now else now

    def fetch_graph(self, pe_id: int, line_addrs: Sequence[int], now: float) -> float:
        """Read CSR graph lines (L2 → DRAM path, bypassing the L1).

        Graph batches may repeat a line (adjacent neighbor sets sharing a
        boundary cache line), so classification stays sequential — a
        repeat must see the LRU/bank state its predecessor left behind.

        Sequence entry point: used by the strided multi-round chunks and
        as the oracle/fallback for :meth:`fetch_graph_spans`.
        """
        return self._fetch_graph_walk(pe_id, line_addrs, now)

    def fetch_graph_spans(
        self, pe_id: int, spans: Sequence[Tuple[int, int]], now: float
    ) -> float:
        """Span-native :meth:`fetch_graph` over ``(first_line, last_line)`` spans.

        One span per neighbor-set input, walked in order with a single
        issue index running across span boundaries — exactly the line
        order the concatenated sequence entry point would see.  Lines
        *within* a span are distinct, so when a whole span is resident
        its classification is order-independent and the span takes the
        fast path: batch LRU stamping plus a float-only walk of the bank
        queues (banks cycle with consecutive line addresses).  Spans may
        still repeat lines *between* each other (adjacent neighbor sets
        sharing a boundary line); each span probes the state its
        predecessors left behind, and any span with a miss replays
        per-line through the exact sequential walk.
        """
        l2 = self.l2
        where_get = l2._where.get
        stamps = l2._stamps
        tick = l2._tick
        hits = 0
        bank_free = self._l2_bank_free
        nbanks = len(bank_free)
        ports = self._fetch_ports
        l2_hit = self._l2_hit_cycles
        l2_service = self._l2_service_cycles
        hop = self._hop_cycles
        stream_ok = self._l2_stream_ok
        resident_stamp = self._kernels.span_resident_stamp
        done = now
        i = 0
        for first_line, last_line in spans:
            if last_line == first_line:
                # Single-line span — the dominant case (the average
                # neighbor set covers one or two cache lines): pure
                # straight-line code, no loops or allocations.
                slot = where_get(first_line)
                if slot is not None:
                    stamps[slot] = tick
                    tick += 1
                    hits += 1
                    issue = now + i // ports
                    arrive = issue + hop
                    bank = first_line % nbanks
                    queued = float(bank_free[bank])
                    start = queued if queued >= arrive else arrive
                    bank_free[bank] = start + l2_service
                    back = start + l2_hit + hop
                    if back > done:
                        done = back
                    i += 1
                    continue
                n = 1
                resident = False
            else:
                # Multi-line span: the backend's residency/stamp kernel
                # (stamps land in address order with consecutive ticks,
                # same as the scalar sweep).  The hoisted tick shadow is
                # synced around the call — the kernel reads and advances
                # ``l2._tick`` itself.
                n = last_line - first_line + 1
                l2._tick = tick
                resident = resident_stamp(l2, first_line, last_line)
                tick = l2._tick
            if resident:
                # All-hit span: book the banks with float-only arithmetic
                # (same expressions as the per-line walk; only the cache
                # probes are gone).
                hits += n
                bank = first_line % nbanks
                head = nbanks if stream_ok and n > nbanks else n
                streaming = True
                for _ in range(head):
                    issue = now + i // ports
                    arrive = issue + hop
                    queued = float(bank_free[bank])
                    if queued >= arrive:
                        start = queued
                        if queued > arrive:
                            streaming = False
                    else:
                        start = arrive
                    bank_free[bank] = start + l2_service
                    back = start + l2_hit + hop
                    if back > done:
                        done = back
                    i += 1
                    bank += 1
                    if bank == nbanks:
                        bank = 0
                rest = n - head
                if rest > 0:
                    if streaming:
                        # Stream mode: the head cleared every bank's
                        # backlog, so each remaining line starts exactly
                        # at its arrival.  `back` values are monotone in
                        # the issue index, so the last line's back is the
                        # span maximum, and each bank's final booking is
                        # its last visit's — all with the identical float
                        # expressions the per-line loop evaluates.
                        last_k = i + rest - 1
                        back = ((now + last_k // ports) + hop) + l2_hit + hop
                        if back > done:
                            done = back
                        for _ in range(rest if rest < nbanks else nbanks):
                            arrive = (now + last_k // ports) + hop
                            b = (first_line + (last_k - i) + head) % nbanks
                            bank_free[b] = arrive + l2_service
                            last_k -= 1
                        i += rest
                    else:
                        for _ in range(rest):
                            issue = now + i // ports
                            arrive = issue + hop
                            queued = float(bank_free[bank])
                            start = queued if queued >= arrive else arrive
                            bank_free[bank] = start + l2_service
                            back = start + l2_hit + hop
                            if back > done:
                                done = back
                            i += 1
                            bank += 1
                            if bank == nbanks:
                                bank = 0
                continue
            # Mixed span (rare): the exact per-line walk, classification
            # interleaved with fills so later lines see earlier evictions.
            dram_request = self.dram.request
            l2_insert = l2.insert
            for addr in range(first_line, last_line + 1):
                issue = now + i // ports
                arrive = issue + hop
                bank = addr % nbanks
                queued = float(bank_free[bank])
                start = queued if queued >= arrive else arrive
                bank_free[bank] = start + l2_service
                slot = where_get(addr)
                if slot is not None:
                    stamps[slot] = tick
                    tick += 1
                    hits += 1
                    back = start + l2_hit + hop
                else:
                    l2.misses += 1
                    l2._tick = tick
                    back = dram_request(addr, start + l2_hit)
                    l2_insert(addr)
                    tick = l2._tick
                    back = back + hop
                if back > done:
                    done = back
                i += 1
        l2._tick = tick
        l2.hits += hits
        self.graph_line_fetches += i
        return done

    def _fetch_graph_walk(self, pe_id: int, line_addrs: Sequence[int], now: float) -> float:
        l2 = self.l2
        where_get = l2._where.get
        stamps = l2._stamps
        tick = l2._tick
        hits = 0
        bank_free = self._l2_bank_free
        nbanks = len(bank_free)
        ports = self._fetch_ports
        l2_hit = self._l2_hit_cycles
        l2_service = self._l2_service_cycles
        hop = self._hop_cycles
        done = now
        n = 0
        for i, addr in enumerate(line_addrs):
            issue = now + i // ports
            arrive = issue + hop
            bank = int(addr) % nbanks
            queued = float(bank_free[bank])
            start = queued if queued >= arrive else arrive
            bank_free[bank] = start + l2_service
            slot = where_get(addr)
            if slot is not None:
                stamps[slot] = tick
                tick += 1
                hits += 1
                back = start + l2_hit + hop
            else:
                l2.misses += 1
                l2._tick = tick
                back = self.dram.request(addr, start + l2_hit)
                l2.insert(addr)
                tick = l2._tick
                back = back + hop
            n += 1
            if back > done:
                done = back
        l2._tick = tick
        l2.hits += hits
        self.graph_line_fetches += n
        return done

    def install_intermediate(self, pe_id: int, line_addrs: Sequence[int]) -> None:
        """Install freshly produced candidate-set lines into the PE's L1.

        The producing task writes its output through the SPM into the L1
        (intermediate results live in L1 and spill to L2 on replacement,
        §3.1); the write latency is folded into the task's writeback
        stage, so only the cache state changes here.
        """
        l1_insert = self.l1s[pe_id].insert
        l2_insert = self.l2.insert
        for addr in line_addrs:
            evicted = l1_insert(addr)
            if evicted is not None:
                l2_insert(evicted)

    def install_intermediate_span(
        self, pe_id: int, first_line: int, last_line: int
    ) -> None:
        """Span-native :meth:`install_intermediate` (the writeback path).

        Rides :meth:`Cache.insert_span`'s vectorized fast paths; evicted
        lines spill to the L2 afterwards in eviction order.  Deferring
        the spills is exact: L1 insertion decisions never read L2 state,
        and these spills are the only L2 operations in the call, so their
        relative order — the only thing L2's LRU sees — is unchanged.
        """
        evicted = self.l1s[pe_id].insert_span(first_line, last_line)
        if evicted:
            l2_insert = self.l2.insert
            for addr in evicted:
                l2_insert(addr)

    def warm_l1(self, pe_id: int, line_addrs: Sequence[int]) -> None:
        """Pre-install lines into a PE's L1 (partition-message payload)."""
        self.install_intermediate(pe_id, line_addrs)

    def warm_l1_span(self, pe_id: int, first_line: int, last_line: int) -> None:
        """Span-native :meth:`warm_l1` (partition-message payload)."""
        self.install_intermediate_span(pe_id, first_line, last_line)

    # ------------------------------------------------------------------
    def l1_hit_rate(self, pe_id: int) -> float:
        """L1 hit rate of one PE."""
        return self.l1s[pe_id].hit_rate

    def overall_l1_hit_rate(self) -> float:
        """Hit rate aggregated across all PEs' L1s."""
        hits = sum(c.hits for c in self.l1s)
        accesses = sum(c.accesses for c in self.l1s)
        return hits / accesses if accesses else 0.0

    def recent_l1_latency(self, pe_id: int) -> float:
        """Moving-average L1 access latency (conservative-mode input)."""
        return self.l1_windows[pe_id].value

    def memory_pressure(self, now: float) -> float:
        """How far ahead of ``now`` the DRAM channels are booked (cycles).

        The search-tree merging enable check uses this as the "memory
        system bandwidth has not been used up" condition (§4.2).
        """
        return max(0.0, self.dram.earliest_free() - now)
