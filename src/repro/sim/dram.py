"""DRAM model: per-channel bandwidth queues with fixed access latency.

The paper simulates memory with Ramulator (DDR4-3200, 4 channels).  For
the scheduling questions Shogun asks, what matters is that DRAM adds a
~hundred-cycle latency and that aggregate bandwidth saturates when many
PEs stream neighbor sets (the ``or`` dataset "has fully utilized memory
bandwidth with neighbor set accessing", §5.3.2).  A FCFS queue per
channel with a fixed per-line service time reproduces exactly that
saturation behaviour; row-buffer effects are folded into the average
latency constant.
"""

from __future__ import annotations

from typing import List

from ..errors import ConfigError


class DRAMModel:
    """Channel-interleaved DRAM with per-line service occupancy."""

    __slots__ = (
        "channels",
        "latency_cycles",
        "service_cycles",
        "line_bytes",
        "_channel_free",
        "requests",
        "busy_cycles",
    )

    def __init__(
        self,
        channels: int,
        latency_cycles: float,
        service_cycles: float,
        line_bytes: int = 64,
    ) -> None:
        if channels < 1:
            raise ConfigError("DRAM needs at least one channel")
        if latency_cycles < 0 or service_cycles <= 0:
            raise ConfigError("DRAM timings must be positive")
        self.channels = channels
        self.latency_cycles = float(latency_cycles)
        self.service_cycles = float(service_cycles)
        self.line_bytes = line_bytes
        self._channel_free: List[float] = [0.0] * channels
        self.requests = 0
        self.busy_cycles = 0.0

    def channel_of(self, line_addr: int) -> int:
        """Channel mapping: line-address interleaving."""
        return int(line_addr) % self.channels

    def request(self, line_addr: int, ready_time: float) -> float:
        """Issue one line read at ``ready_time``; returns data-ready time.

        The line occupies its channel for ``service_cycles`` (bandwidth
        limit) and the data returns ``latency_cycles`` after service
        starts.
        """
        ch = line_addr % self.channels
        channel_free = self._channel_free
        queued = channel_free[ch]
        start = queued if queued >= ready_time else ready_time
        channel_free[ch] = start + self.service_cycles
        self.requests += 1
        self.busy_cycles += self.service_cycles
        return start + self.latency_cycles

    def utilization(self, elapsed_cycles: float) -> float:
        """Aggregate channel-occupancy fraction over ``elapsed_cycles``."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / (elapsed_cycles * self.channels))

    def earliest_free(self) -> float:
        """Earliest time any channel is free (memory-pressure signal)."""
        return min(self._channel_free)
