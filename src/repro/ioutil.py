"""Atomic file writes shared by every on-disk cache and report writer.

A reader that races a writer must see either the previous complete file
or the new complete file — never an interleaving of the two.  POSIX
``rename(2)`` (and its cross-platform spelling :func:`os.replace`) is
atomic within one filesystem, so every writer here follows the same
discipline: write the full payload to a uniquely named temp file in the
*destination directory* (same filesystem, so the replace cannot degrade
to a copy), then replace.  A writer that dies mid-write leaves only a
``*.tmp`` orphan, never a torn destination.

Used by the orchestrator result cache, the binary graph store and its
count sidecars, run manifests, golden snapshots and fuzz repro bundles —
all of which may be written concurrently by pool workers, parallel
benchmark sessions, or the ``repro serve`` daemon racing a batch run.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from typing import IO, Iterator, Union

PathLike = Union[str, os.PathLike]


@contextlib.contextmanager
def atomic_open(path: PathLike, mode: str = "w") -> Iterator[IO]:
    """Open a temp file that atomically replaces ``path`` on clean exit.

    The temp file lives next to the destination (``os.replace`` must not
    cross filesystems) and is unlinked if the body raises, so failed
    writes leave no partial destination and no stray temp behind.
    ``mode`` must be a write mode (``"w"`` or ``"wb"``).
    """
    path = os.fspath(path)
    parent = os.path.dirname(path) or "."
    os.makedirs(parent, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=parent, suffix=".tmp")
    try:
        encoding = None if "b" in mode else "utf-8"
        with os.fdopen(fd, mode, encoding=encoding) as handle:
            yield handle
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise


def atomic_write_json(
    path: PathLike,
    payload: object,
    *,
    indent: "int | None" = None,
    sort_keys: bool = False,
    newline: bool = False,
) -> None:
    """Serialize ``payload`` and atomically install it at ``path``."""
    with atomic_open(path, "w") as handle:
        json.dump(payload, handle, indent=indent, sort_keys=sort_keys)
        if newline:
            handle.write("\n")


def atomic_write_text(path: PathLike, text: str) -> None:
    """Atomically install ``text`` at ``path``."""
    with atomic_open(path, "w") as handle:
        handle.write(text)
