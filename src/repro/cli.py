"""Command-line interface: count, simulate and regenerate experiments.

Usage (also via ``python -m repro``)::

    repro datasets                                  # list Table-4 stand-ins
    repro count --dataset wi --pattern 4cl          # exact software count
    repro count --edge-list g.txt --pattern tc      # your own graph
    repro simulate --dataset wi --pattern 4cl --policy shogun fingers
    repro experiment figure9 table2 ...             # regenerate artifacts
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .experiments import eval_config
from .graph import compute_stats, dataset_codes, get_spec, load_dataset, load_edge_list
from .mining import mine
from .patterns import BENCHMARK_CODES, benchmark_schedule
from .sim import POLICIES, simulate

#: Experiment names accepted by ``repro experiment``.
EXPERIMENTS = (
    "table1", "table2", "table3", "table4",
    "figure3a", "figure3b", "figure9", "figure10", "figure11",
    "figure12", "figure13a", "figure13b", "figure14",
    "ablation_conservative_mode", "ablation_tokens", "ablation_pipeline_throughput",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Shogun (ISCA 2023) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    datasets = sub.add_parser("datasets", help="list the Table-4 dataset stand-ins")
    datasets.add_argument("--scale", type=float, default=1.0)

    count = sub.add_parser("count", help="exact match counting (software miner)")
    _add_graph_args(count)
    count.add_argument("--pattern", required=True, choices=BENCHMARK_CODES)

    sim = sub.add_parser("simulate", help="simulate the accelerator")
    _add_graph_args(sim)
    sim.add_argument("--pattern", required=True, choices=BENCHMARK_CODES)
    sim.add_argument(
        "--policy", nargs="+", default=["shogun"], choices=sorted(POLICIES)
    )
    sim.add_argument("--pes", type=int, default=None, help="override PE count")
    sim.add_argument("--width", type=int, default=None, help="override execution width")
    sim.add_argument("--splitting", action="store_true", help="enable task-tree splitting")
    sim.add_argument("--merging", action="store_true", help="enable search-tree merging")

    experiment = sub.add_parser("experiment", help="regenerate paper artifacts")
    experiment.add_argument("names", nargs="+", choices=EXPERIMENTS)
    experiment.add_argument("--scale", type=float, default=1.0)
    return parser


def _add_graph_args(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--dataset", choices=dataset_codes())
    source.add_argument("--edge-list", help="path to a SNAP-style edge list")
    parser.add_argument("--scale", type=float, default=1.0)


def _load_graph(args):
    if args.dataset:
        return load_dataset(args.dataset, scale=args.scale)
    return load_edge_list(args.edge_list)


def cmd_datasets(args) -> int:
    for code in dataset_codes():
        spec = get_spec(code)
        stats = compute_stats(load_dataset(code, scale=args.scale))
        print(f"{code}: {spec.paper_name:12s} {stats.describe()}")
        print(f"    {spec.notes}")
    return 0


def cmd_count(args) -> int:
    graph = _load_graph(args)
    schedule = benchmark_schedule(args.pattern)
    start = time.time()
    result = mine(graph, schedule)
    elapsed = time.time() - start
    print(f"graph: {compute_stats(graph).describe()}")
    print(f"pattern {args.pattern}: {result.count} matches "
          f"({result.stats.total_tasks} tasks, {elapsed:.2f}s)")
    return 0


def cmd_simulate(args) -> int:
    graph = _load_graph(args)
    schedule = benchmark_schedule(args.pattern)
    overrides = {}
    if args.pes:
        overrides["num_pes"] = args.pes
    if args.width:
        overrides.update(
            execution_width=args.width,
            bunch_entries=args.width,
            tokens_per_depth=args.width,
        )
    if args.splitting:
        overrides["enable_splitting"] = True
    if args.merging:
        overrides["enable_merging"] = True
    config = eval_config(**overrides)
    baseline = None
    for policy in args.policy:
        metrics = simulate(graph, schedule, policy=policy, config=config)
        line = metrics.summary()
        if baseline is None:
            baseline = metrics
        else:
            line += f"  speedup vs {baseline.policy}: {metrics.speedup_over(baseline):.2f}x"
        print(line)
    return 0


def cmd_experiment(args) -> int:
    import inspect

    from . import experiments

    for name in args.names:
        fn = getattr(experiments, name)
        kwargs = {}
        if "scale" in inspect.signature(fn).parameters:
            kwargs["scale"] = args.scale
        result = fn(**kwargs)
        print(result.render())
        print()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "datasets": cmd_datasets,
        "count": cmd_count,
        "simulate": cmd_simulate,
        "experiment": cmd_experiment,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
