"""Command-line interface: count, simulate and regenerate experiments.

Usage (also via ``python -m repro``)::

    repro datasets                                  # list Table-4 stand-ins
    repro count --dataset wi --pattern 4cl          # exact software count
    repro count --edge-list g.txt --pattern tc      # your own graph
    repro simulate --dataset wi --pattern 4cl --policy shogun fingers
    repro profile --dataset lj --pattern 4cl --top 15 --json prof.json
    repro experiment figure9 table2 --jobs 4        # regenerate artifacts
    repro cache info                                # persistent result cache
    repro cache clear
    repro cache graphs info                         # binary graph store
    repro cache graphs clear
    repro validate all --scale 0.3                  # oracle + invariants + goldens
    repro validate golden --update                  # re-bless golden snapshots
    repro validate fuzz --runs 20 --seed 7          # randomized differential tests
    repro serve --socket .repro-serve.sock --jobs 4 # persistent daemon
    repro submit --dataset wi --pattern tc --policy shogun --watch
    repro jobs                                      # daemon job board
    repro shutdown                                  # drain and stop the daemon
    repro experiment figure3a --workers unix:/tmp/sweep.sock --spawn-workers 2
    repro worker unix:/tmp/sweep.sock               # join a distributed sweep

``repro experiment`` routes through :mod:`repro.orchestrator`: cells
are deduplicated, satisfied from ``.repro-cache/`` when possible, and
executed on a process pool with ``--jobs N``.  Every ``--scale``
defaults to the ``REPRO_SCALE`` environment variable (then 1.0).

``repro serve`` keeps that machinery warm between invocations: one
daemon stages graphs and workers once, answers ``repro submit`` over a
unix or TCP socket, coalesces identical in-flight cells and serves
repeats from the cache (see docs/service.md).  The socket defaults to
``REPRO_SERVE_SOCKET``, then ``.repro-serve.sock``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .experiments import default_scale, eval_config
from .graph import compute_stats, dataset_codes, get_spec, load_dataset, load_edge_list
from .mining import mine
from .patterns import BENCHMARK_CODES, benchmark_schedule
from .sim import POLICIES, simulate

#: Experiment names accepted by ``repro experiment``.
EXPERIMENTS = (
    "table1", "table2", "table3", "table4",
    "figure3a", "figure3b", "figure9", "figure10", "figure11",
    "figure12", "figure13a", "figure13b", "figure14",
    "ablation_conservative_mode", "ablation_tokens", "ablation_pipeline_throughput",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Shogun (ISCA 2023) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    datasets = sub.add_parser("datasets", help="list the Table-4 dataset stand-ins")
    _add_scale_arg(datasets)

    count = sub.add_parser("count", help="exact match counting (software miner)")
    _add_graph_args(count)
    count.add_argument("--pattern", required=True, choices=BENCHMARK_CODES)
    _add_backend_arg(count)

    sim = sub.add_parser("simulate", help="simulate the accelerator")
    _add_graph_args(sim)
    _add_backend_arg(sim)
    sim.add_argument("--pattern", required=True, choices=BENCHMARK_CODES)
    sim.add_argument(
        "--policy", nargs="+", default=["shogun"], choices=sorted(POLICIES)
    )
    sim.add_argument("--pes", type=int, default=None, help="override PE count")
    sim.add_argument("--width", type=int, default=None, help="override execution width")
    sim.add_argument("--splitting", action="store_true", help="enable task-tree splitting")
    sim.add_argument("--merging", action="store_true", help="enable search-tree merging")

    profile = sub.add_parser(
        "profile",
        help="cProfile one simulated cell and report hotspots (docs/performance.md)",
    )
    _add_graph_args(profile)
    _add_backend_arg(profile)
    profile.add_argument("--pattern", required=True, choices=BENCHMARK_CODES)
    profile.add_argument("--policy", default="shogun", choices=sorted(POLICIES))
    profile.add_argument(
        "--top", type=int, default=20, help="number of hotspot rows to report"
    )
    profile.add_argument(
        "--sort", default="cumulative", choices=("cumulative", "tottime"),
        help="hotspot ranking key",
    )
    profile.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the hotspot table as JSON",
    )

    experiment = sub.add_parser(
        "experiment",
        help="regenerate paper artifacts (parallel, cached — see docs/orchestrator.md)",
    )
    experiment.add_argument("names", nargs="+", choices=EXPERIMENTS)
    _add_scale_arg(experiment)
    _add_backend_arg(experiment)
    experiment.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for evaluation cells (1 = in-process)",
    )
    experiment.add_argument(
        "--no-cache", action="store_true",
        help="skip the persistent result cache for this invocation",
    )
    experiment.add_argument(
        "--cache-dir", default=None,
        help="cache directory (default: REPRO_CACHE_DIR or .repro-cache)",
    )
    experiment.add_argument(
        "--timeout", type=float, default=None,
        help="per-cell wall-clock limit in seconds (pool mode only)",
    )
    experiment.add_argument(
        "--retries", type=int, default=1,
        help="extra attempts granted to a failed cell (default 1)",
    )
    experiment.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress lines"
    )
    experiment.add_argument(
        "--workers", default=None, metavar="ADDR",
        help="distributed mode: listen on ADDR (unix:/path, tcp:host:port "
             "or a socket path) and execute cells on registered workers "
             "(see docs/distributed.md)",
    )
    experiment.add_argument(
        "--spawn-workers", type=int, default=0, metavar="N",
        help="with --workers: also spawn N local worker subprocesses",
    )
    experiment.add_argument(
        "--worker-slots", type=int, default=1,
        help="with --spawn-workers: concurrent cells per spawned worker",
    )
    experiment.add_argument(
        "--heartbeat-interval", type=float, default=1.0,
        help="with --workers: seconds between worker heartbeats",
    )
    experiment.add_argument(
        "--heartbeat-timeout", type=float, default=5.0,
        help="with --workers: heartbeat silence before a worker is "
             "declared dead and its cells retried elsewhere",
    )
    experiment.add_argument(
        "--register-timeout", type=float, default=120.0,
        help="with --workers: seconds to tolerate having no live worker "
             "before failing the remaining cells",
    )
    experiment.add_argument(
        "--spawn-faults", default=None, metavar="SPEC",
        help="with --spawn-workers: REPRO_FAULTS spec injected into the "
             "first spawned worker (chaos testing, e.g. kill:cell:1)",
    )

    validate = sub.add_parser(
        "validate",
        help="differential validation: oracles, invariants, goldens, fuzz "
             "(docs/validation.md)",
    )
    vsub = validate.add_subparsers(dest="validate_command", required=True)

    def _add_cache_args(p):
        p.add_argument(
            "--no-cache", action="store_true",
            help="skip the persistent result cache for this invocation",
        )
        p.add_argument(
            "--cache-dir", default=None,
            help="cache directory (default: REPRO_CACHE_DIR or .repro-cache)",
        )
        _add_backend_arg(p)

    v_all = vsub.add_parser(
        "all", help="oracle + invariant + golden checks (the CI smoke gate)"
    )
    _add_scale_arg(v_all)
    _add_cache_args(v_all)
    v_all.add_argument(
        "--datasets", nargs="+", default=["wi", "as"], choices=dataset_codes(),
        help="datasets the oracle sweeps (goldens always use the pinned matrix)",
    )
    v_all.add_argument(
        "--patterns", nargs="+", default=["tc", "4cl"], choices=BENCHMARK_CODES,
    )

    v_oracle = vsub.add_parser(
        "oracle", help="cross-policy + reference-miner (+ naive) agreement"
    )
    _add_scale_arg(v_oracle)
    _add_cache_args(v_oracle)
    v_oracle.add_argument(
        "--datasets", nargs="+", default=["wi", "as"], choices=dataset_codes()
    )
    v_oracle.add_argument(
        "--patterns", nargs="+", default=["tc", "4cl"], choices=BENCHMARK_CODES
    )

    v_inv = vsub.add_parser(
        "invariants", help="run every policy under the live InvariantChecker"
    )
    _add_scale_arg(v_inv)
    v_inv.add_argument(
        "--datasets", nargs="+", default=["wi"], choices=dataset_codes()
    )
    v_inv.add_argument(
        "--patterns", nargs="+", default=["tc", "4cl"], choices=BENCHMARK_CODES
    )
    _add_backend_arg(v_inv)

    v_golden = vsub.add_parser(
        "golden", help="diff RunMetrics against committed snapshots"
    )
    _add_scale_arg(v_golden)
    _add_cache_args(v_golden)
    v_golden.add_argument(
        "--update", action="store_true",
        help="rewrite the snapshots instead of diffing (then commit them)",
    )
    v_golden.add_argument(
        "--dir", default=None,
        help="snapshot directory (default: REPRO_GOLDEN_DIR or tests/golden)",
    )

    v_fuzz = vsub.add_parser(
        "fuzz", help="randomized graphs/configs through oracle + invariants"
    )
    v_fuzz.add_argument("--runs", type=int, default=20)
    v_fuzz.add_argument("--seed", type=int, default=0)
    v_fuzz.add_argument(
        "--out", default=None,
        help="repro-bundle directory for failures (default: .repro-fuzz-failures)",
    )
    v_fuzz.add_argument(
        "--replay", default=None, metavar="BUNDLE",
        help="re-run the case stored in a repro bundle instead of fuzzing",
    )
    _add_backend_arg(v_fuzz)

    serve = sub.add_parser(
        "serve",
        help="run the persistent simulation daemon (see docs/service.md)",
    )
    serve.add_argument(
        "--socket", default=None, metavar="PATH",
        help="unix socket path (default: REPRO_SERVE_SOCKET, then "
             ".repro-serve.sock)",
    )
    serve.add_argument(
        "--tcp", default=None, metavar="HOST:PORT",
        help="also listen on a TCP address (port 0 picks a free port)",
    )
    serve.add_argument(
        "--jobs", type=int, default=1,
        help="worker parallelism (1 = a single warm in-process worker)",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=64,
        help="max jobs queued-or-running before submits are rejected",
    )
    serve.add_argument(
        "--timeout", type=float, default=None,
        help="per-cell wall-clock limit in seconds",
    )
    serve.add_argument(
        "--no-cache", action="store_true",
        help="serve without the persistent result cache",
    )
    serve.add_argument(
        "--cache-dir", default=None,
        help="cache directory (default: REPRO_CACHE_DIR or .repro-cache)",
    )
    serve.add_argument(
        "--log", default=None, metavar="PATH",
        help="also append server events to this file (always on stderr)",
    )

    worker = sub.add_parser(
        "worker",
        help="run a distributed sweep worker against a scheduler "
             "(see docs/distributed.md)",
    )
    worker.add_argument(
        "address",
        help="scheduler address: unix:/path, tcp:host:port, or a socket path",
    )
    worker.add_argument(
        "--name", default=None, help="worker name (default: worker-<pid>)"
    )
    worker.add_argument(
        "--slots", type=int, default=1,
        help="concurrent cells this worker executes (default 1)",
    )
    worker.add_argument(
        "--connect-timeout", type=float, default=30.0,
        help="seconds to keep retrying the scheduler connection",
    )
    worker.add_argument(
        "--quiet", action="store_true", help="suppress worker log lines"
    )
    _add_backend_arg(worker)

    submit = sub.add_parser(
        "submit", help="submit one cell to a running daemon"
    )
    submit.add_argument("--dataset", required=True, choices=dataset_codes())
    submit.add_argument("--pattern", required=True, choices=BENCHMARK_CODES)
    submit.add_argument(
        "--policy", default="shogun", choices=sorted(POLICIES)
    )
    _add_scale_arg(submit)
    submit.add_argument(
        "--no-verify", action="store_true",
        help="skip the reference-count check inside the cell",
    )
    submit.add_argument(
        "--config", action="append", default=[], metavar="FIELD=VALUE",
        help="SimConfig override (repeatable), e.g. --config num_pes=8",
    )
    submit.add_argument(
        "--watch", action="store_true",
        help="stream queued/staging/running events while waiting",
    )
    submit.add_argument(
        "--json", action="store_true",
        help="print the terminal event as JSON instead of a summary",
    )
    _add_service_address_arg(submit)

    jobs_cmd = sub.add_parser("jobs", help="show a running daemon's job board")
    _add_service_address_arg(jobs_cmd)

    shutdown = sub.add_parser("shutdown", help="stop a running daemon")
    shutdown.add_argument(
        "--no-drain", action="store_true",
        help="cancel the running cell instead of letting it finish",
    )
    _add_service_address_arg(shutdown)

    cache = sub.add_parser("cache", help="inspect or clear the persistent caches")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    for action, text in (("info", "show entry count, size and code salt"),
                         ("clear", "remove every cached result")):
        action_parser = cache_sub.add_parser(action, help=text)
        action_parser.add_argument(
            "--cache-dir", default=None,
            help="cache directory (default: REPRO_CACHE_DIR or .repro-cache)",
        )
    graphs = cache_sub.add_parser(
        "graphs", help="inspect or clear the binary graph store"
    )
    graphs_sub = graphs.add_subparsers(dest="graphs_command", required=True)
    for action, text in (
        ("info", "show stored graphs, count sidecars, size and graph salt"),
        ("clear", "remove every stored graph and count sidecar"),
    ):
        action_parser = graphs_sub.add_parser(action, help=text)
        action_parser.add_argument(
            "--graph-dir", default=None,
            help="graph store directory (default: <cache-root>/graphs)",
        )
    return parser


def _add_service_address_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--socket", default=None, metavar="ADDR",
        help="daemon address: a unix socket path or tcp:HOST:PORT "
             "(default: REPRO_SERVE_SOCKET, then .repro-serve.sock)",
    )
    parser.add_argument(
        "--connect-timeout", type=float, default=10.0,
        help="seconds to keep retrying the connection (default 10)",
    )


def _service_address(args) -> str:
    import os

    return args.socket or os.environ.get("REPRO_SERVE_SOCKET") or ".repro-serve.sock"


def _add_scale_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale", type=float, default=None,
        help="dataset scale factor (default: REPRO_SCALE env var, then 1.0)",
    )


def _add_backend_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend", default=None, choices=("auto", "pure", "numba", "cext"),
        help="kernel backend for the simulator hot path "
             "(default: REPRO_BACKEND env var, then auto; see docs/performance.md)",
    )


def _apply_backend(args):
    """Activate the requested kernel backend; returns the active set.

    Also exports ``REPRO_BACKEND`` so worker processes (orchestrator
    pools, the serve daemon) inherit the selection.
    """
    import os

    from .sim import backend as kernel_backend

    name = getattr(args, "backend", None)
    if name:
        os.environ["REPRO_BACKEND"] = name
    return kernel_backend.activate(name)


def _add_graph_args(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--dataset", choices=dataset_codes())
    source.add_argument("--edge-list", help="path to a SNAP-style edge list")
    _add_scale_arg(parser)


def _resolve_scale(args) -> float:
    return args.scale if args.scale is not None else default_scale()


def _load_graph(args):
    if args.dataset:
        return load_dataset(args.dataset, scale=_resolve_scale(args))
    return load_edge_list(args.edge_list)


def cmd_datasets(args) -> int:
    for code in dataset_codes():
        spec = get_spec(code)
        stats = compute_stats(load_dataset(code, scale=_resolve_scale(args)))
        print(f"{code}: {spec.paper_name:12s} {stats.describe()}")
        print(f"    {spec.notes}")
    return 0


def cmd_count(args) -> int:
    _apply_backend(args)
    graph = _load_graph(args)
    schedule = benchmark_schedule(args.pattern)
    start = time.time()
    result = mine(graph, schedule)
    elapsed = time.time() - start
    print(f"graph: {compute_stats(graph).describe()}")
    print(f"pattern {args.pattern}: {result.count} matches "
          f"({result.stats.total_tasks} tasks, {elapsed:.2f}s)")
    return 0


def cmd_simulate(args) -> int:
    _apply_backend(args)
    graph = _load_graph(args)
    schedule = benchmark_schedule(args.pattern)
    overrides = {}
    if args.pes:
        overrides["num_pes"] = args.pes
    if args.width:
        overrides.update(
            execution_width=args.width,
            bunch_entries=args.width,
            tokens_per_depth=args.width,
        )
    if args.splitting:
        overrides["enable_splitting"] = True
    if args.merging:
        overrides["enable_merging"] = True
    config = eval_config(**overrides)
    baseline = None
    for policy in args.policy:
        metrics = simulate(graph, schedule, policy=policy, config=config)
        line = metrics.summary()
        if baseline is None:
            baseline = metrics
        else:
            line += f"  speedup vs {baseline.policy}: {metrics.speedup_over(baseline):.2f}x"
        print(line)
    return 0


def _scheduler_attribution(accel):
    """Aggregate task-tree op counters across PEs (``None`` = no trees).

    Trees accumulate per-op kernel/object call counts and escape reasons
    unconditionally; per-op wall time only while profiling is enabled
    (see :func:`repro.core.task_tree.enable_profiling`).
    """
    trees = [
        tree for pe in accel.pes
        if (tree := getattr(pe.policy, "tree", None)) is not None
        and hasattr(tree, "op_calls")
    ]
    if not trees:
        return None
    ops = {
        op: {
            "kernel": sum(t.op_calls[f"{op}_kernel"] for t in trees),
            "object": sum(t.op_calls[f"{op}_object"] for t in trees),
            "seconds": sum(t.op_seconds[op] for t in trees),
        }
        for op in ("select", "fill", "complete")
    }
    escapes = {
        reason: sum(t.op_escapes[reason] for t in trees)
        for reason in trees[0].op_escapes
    }
    return {
        "kernel_calls": sum(o["kernel"] for o in ops.values()),
        "object_calls": sum(o["object"] for o in ops.values()),
        "ops": ops,
        "escapes": escapes,
    }


def cmd_profile(args) -> int:
    import cProfile
    import json
    import pstats

    from .sim import backend as kernel_backend

    from .sim.accelerator import Accelerator

    from .core import task_tree

    kernels = _apply_backend(args)
    graph = _load_graph(args)
    schedule = benchmark_schedule(args.pattern)
    config = eval_config()
    profiler = cProfile.Profile()
    start = time.time()
    task_tree.enable_profiling(True)
    try:
        with kernel_backend.instrument() as kernel_stats:
            profiler.enable()
            # Constructed directly (not through simulate()) so the
            # macro-step core's fast-path coverage counters and the task
            # trees' scheduler-attribution counters survive the run.
            accel = Accelerator(graph, schedule, config, args.policy)
            metrics = accel.run()
            profiler.disable()
    finally:
        task_tree.enable_profiling(False)
    elapsed = time.time() - start
    print(metrics.summary())
    print(f"instrumented wall: {elapsed:.3f}s "
          "(cProfile overhead included; compare profiled runs only with "
          "profiled runs — see docs/performance.md)")
    print(f"kernel backend: {kernels.name} "
          f"({'compiled' if kernels.compiled else 'interpreted'})")
    for kernel in kernel_backend.KernelSet.KERNELS:
        calls, seconds = kernel_stats[kernel]
        print(f"  {kernel:20s} {calls:>12,d} calls  {seconds:9.3f}s")
    coverage = accel.macro.coverage() if accel.macro is not None else None
    if coverage is not None:
        print(
            f"macro-step fast path: {coverage['drained']:,d}/"
            f"{coverage['tasks']:,d} tasks drained in the compiled core "
            f"({coverage['drained_fraction']:.1%})"
        )
        for key, count in coverage["counters"].items():
            if count:
                print(f"  {key:20s} {count:>12,d}")
    else:
        print("macro-step fast path: off (per-event booking)")
    scheduler = _scheduler_attribution(accel)
    if scheduler is not None:
        kernel_calls = scheduler["kernel_calls"]
        object_calls = scheduler["object_calls"]
        total_calls = kernel_calls + object_calls
        share = (kernel_calls / total_calls) if total_calls else 0.0
        print(
            f"scheduler (task tree): {kernel_calls:,d}/{total_calls:,d} "
            f"decisions in compiled kernels ({share:.1%})"
        )
        for op in ("select", "fill", "complete"):
            ck = scheduler["ops"][op]
            print(
                f"  {op:20s} {ck['kernel']:>10,d} kernel "
                f"{ck['object']:>10,d} object  {ck['seconds']:8.3f}s"
            )
        for reason, count in scheduler["escapes"].items():
            if count:
                print(f"  escape {reason:13s} {count:>10,d}")
    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort).print_stats(args.top)
    if args.json:
        key = 3 if args.sort == "cumulative" else 2
        rows = sorted(
            stats.stats.items(), key=lambda item: item[1][key], reverse=True
        )[: args.top]
        payload = {
            "graph": args.dataset or args.edge_list,
            "pattern": args.pattern,
            "policy": args.policy,
            "scale": _resolve_scale(args) if args.dataset else None,
            "sort": args.sort,
            "backend": kernels.name,
            "kernels": {
                kernel: {"calls": calls, "seconds": seconds}
                for kernel, (calls, seconds) in kernel_stats.items()
            },
            "macro_step": coverage,
            "scheduler": scheduler,
            "instrumented_wall_s": elapsed,
            "cycles": metrics.cycles,
            "matches": metrics.matches,
            "tasks_executed": metrics.tasks_executed,
            "hotspots": [
                {
                    "function": func,
                    "file": filename,
                    "line": line,
                    "ncalls": ncalls,
                    "tottime_s": tottime,
                    "cumtime_s": cumtime,
                }
                for (filename, line, func),
                    (_, ncalls, tottime, cumtime, _) in rows
            ],
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


def cmd_experiment(args) -> int:
    from .orchestrator import Orchestrator, ResultCache, cache_enabled

    _apply_backend(args)
    cache = None
    if not args.no_cache and cache_enabled():
        cache = ResultCache(args.cache_dir) if args.cache_dir else ResultCache()
    progress = None if args.quiet else (lambda line: print(line, file=sys.stderr))
    if args.workers:
        from .distributed import DistributedOrchestrator

        orchestrator = DistributedOrchestrator(
            args.workers,
            spawn_workers=args.spawn_workers,
            worker_slots=args.worker_slots,
            heartbeat_interval=args.heartbeat_interval,
            heartbeat_timeout=args.heartbeat_timeout,
            register_timeout=args.register_timeout,
            spawn_faults=args.spawn_faults,
            cache=cache,
            timeout=args.timeout,
            retries=args.retries,
            progress=progress,
        )
    else:
        orchestrator = Orchestrator(
            jobs=args.jobs,
            cache=cache,
            timeout=args.timeout,
            retries=args.retries,
            progress=progress,
        )
    run = orchestrator.run_experiments(args.names, scale=_resolve_scale(args))
    for name in args.names:
        if name in run.rendered:
            print(run.rendered[name])
            print()
    print(run.manifest.render())
    return 0 if run.ok else 1


def _attach_validate_cache(args):
    """Route run_cell through the persistent cache; returns a detach callable."""
    from .orchestrator import ResultCache, attach_persistent_cache, cache_enabled

    if getattr(args, "no_cache", False) or not cache_enabled():
        return lambda: None
    cache = ResultCache(args.cache_dir) if getattr(args, "cache_dir", None) else None
    return attach_persistent_cache(cache)


def cmd_validate(args) -> int:
    from pathlib import Path

    from .validate import fuzz as fuzz_mod
    from .validate import (
        ORACLE_POLICIES,
        check_golden,
        oracle_cell,
        run_fuzz,
    )
    from .validate.invariants import checked_simulate

    _apply_backend(args)
    command = args.validate_command
    ok = True

    if command == "fuzz":
        if args.replay:
            report = fuzz_mod.replay_bundle(args.replay)
            print(report.render())
            return 0 if report.ok else 1
        report = run_fuzz(
            args.runs, args.seed,
            out_dir=args.out,
            progress=lambda line: print(line, file=sys.stderr),
        )
        print(report.render())
        return 0 if report.ok else 1

    if command == "golden":
        detach = _attach_validate_cache(args)
        try:
            golden_dir = Path(args.dir) if args.dir else None
            scale = args.scale if args.scale is not None else 0.3
            report = check_golden(
                scale=scale, golden_dir=golden_dir, update=args.update
            )
        finally:
            detach()
        print(report.render())
        return 0 if report.ok else 1

    scale = _resolve_scale(args)
    if command in ("all", "oracle"):
        detach = _attach_validate_cache(args)
        try:
            if command == "all":
                golden = check_golden(scale=scale)
                print(golden.render())
                print()
                ok = ok and golden.ok
            for dataset in args.datasets:
                for pattern in args.patterns:
                    report = oracle_cell(dataset, pattern, scale=scale)
                    print(report.render())
                    ok = ok and report.ok
        finally:
            detach()

    if command in ("all", "invariants"):
        from .experiments.runner import eval_config, get_graph, get_schedule

        datasets = args.datasets if command == "invariants" else ["wi"]
        print()
        for dataset in datasets:
            graph = get_graph(dataset, scale)
            for pattern in args.patterns:
                schedule = get_schedule(pattern)
                for policy in ORACLE_POLICIES:
                    _, checker = checked_simulate(
                        graph, schedule, policy=policy, config=eval_config()
                    )
                    print(f"{dataset}@{scale:g} × {pattern}: {checker.report()}")
                    ok = ok and checker.ok

    print()
    print(f"validate {command}: {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


def cmd_serve(args) -> int:
    import asyncio

    from .orchestrator import ResultCache, cache_enabled
    from .service import serve

    cache = None
    if not args.no_cache and cache_enabled():
        cache = ResultCache(args.cache_dir) if args.cache_dir else ResultCache()

    log_file = open(args.log, "a", encoding="utf-8") if args.log else None

    def log(line: str) -> None:
        stamped = f"[{time.strftime('%H:%M:%S')}] {line}"
        print(stamped, file=sys.stderr)
        if log_file is not None:
            log_file.write(stamped + "\n")
            log_file.flush()

    # parse_address treats a bare path as a unix socket, so the same
    # REPRO_SERVE_SOCKET value works for serve and for the clients.
    addresses = [_service_address(args)]
    if args.tcp:
        addresses.append(f"tcp:{args.tcp}")

    def ready(listeners) -> None:
        for listener in listeners:
            log(f"listening on {listener.describe()}")

    try:
        stats = asyncio.run(serve(
            addresses,
            jobs=args.jobs,
            cache=cache,
            queue_limit=args.queue_limit,
            timeout=args.timeout,
            log=log,
            ready=ready,
        ))
    finally:
        if log_file is not None:
            log_file.close()
    print(f"served {stats.get('submitted', 0)} submission(s): "
          f"{stats.get('cache_hits', 0)} from cache, "
          f"{stats.get('coalesced', 0)} coalesced, "
          f"{stats.get('executed', 0)} executed, "
          f"{stats.get('failed', 0)} failed")
    return 0


def _parse_config_overrides(pairs) -> dict:
    """``FIELD=VALUE`` strings to a wire config dict (JSON-ish values)."""
    import json

    overrides = {}
    for pair in pairs:
        field_name, sep, raw = pair.partition("=")
        if not sep or not field_name:
            raise SystemExit(f"--config needs FIELD=VALUE, got {pair!r}")
        try:
            overrides[field_name] = json.loads(raw)
        except ValueError:
            overrides[field_name] = raw  # bare strings (policy names etc.)
    return overrides


def cmd_submit(args) -> int:
    import json

    from .service import call
    from .sim.metrics import RunMetrics

    cell = {
        "dataset": args.dataset,
        "pattern": args.pattern,
        "policy": args.policy,
        "verify": not args.no_verify,
    }
    if args.scale is not None:
        cell["scale"] = args.scale
    overrides = _parse_config_overrides(args.config)
    if overrides:
        cell["config"] = overrides

    def on_event(event: dict) -> None:
        if not args.json:
            print(f"[{event.get('event')}] job={event.get('job')} "
                  f"t={event.get('ts', 0.0):.2f}s", file=sys.stderr)

    async def exchange(client):
        return await client.submit(cell, watch=args.watch,
                                   on_event=on_event if args.watch else None)

    final = call(_service_address(args), exchange,
                 timeout=args.connect_timeout)
    if args.json:
        print(json.dumps(final, indent=2, sort_keys=True))
        return 0 if final.get("event") == "done" else 1
    if final.get("event") == "done":
        metrics = RunMetrics.from_dict(final["metrics"])
        print(metrics.summary())
        print(f"source={final.get('source')} seconds={final.get('seconds', 0.0):.2f} "
              f"job={final.get('job')}")
        return 0
    error = final.get("error", {})
    print(f"submit failed: {error.get('type', 'Error')}: "
          f"{error.get('message', '')}", file=sys.stderr)
    return 1


def cmd_worker(args) -> int:
    from .distributed import run_worker

    _apply_backend(args)
    log = None
    if args.quiet:
        log = lambda line: None  # noqa: E731 - explicit no-op sink
    return run_worker(
        args.address,
        name=args.name,
        slots=args.slots,
        connect_timeout=args.connect_timeout,
        log=log,
    )


def cmd_jobs(args) -> int:
    from .service import call

    async def exchange(client):
        return await client.jobs()

    reply = call(_service_address(args), exchange, timeout=args.connect_timeout)
    jobs = reply.get("jobs", [])
    if not jobs:
        print("no jobs")
    for job in jobs:
        line = (f"{job.get('job')}: {job.get('label')} "
                f"[{job.get('state')}] subscribers={job.get('subscribers', 0)}")
        if job.get("source"):
            line += f" source={job['source']}"
        if job.get("seconds"):
            line += f" {job['seconds']:.2f}s"
        print(line)
    staging = reply.get("staging", [])
    if staging:
        print("staged graphs: " + ", ".join(
            f"{record.get('dataset')}@{record.get('scale'):g} "
            f"({record.get('source')})"
            for record in staging
        ))
    return 0


def cmd_shutdown(args) -> int:
    from .service import call

    async def exchange(client):
        return await client.shutdown(drain=not args.no_drain)

    reply = call(_service_address(args), exchange, timeout=args.connect_timeout)
    mode = "drain" if reply.get("drain", True) else "immediate"
    print(f"shutdown requested ({mode})")
    return 0


def cmd_cache(args) -> int:
    from .graph.arena import GraphStore
    from .orchestrator import ResultCache

    if args.cache_command == "graphs":
        store = GraphStore(args.graph_dir) if args.graph_dir else GraphStore()
        if args.graphs_command == "info":
            print(store.info().render())
        else:
            removed = store.clear()
            print(f"removed {removed} stored graph file(s) from {store.root}")
        return 0
    cache = ResultCache(args.cache_dir) if args.cache_dir else ResultCache()
    if args.cache_command == "info":
        print(cache.info().render())
        print()
        print(GraphStore().info().render())
    else:
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.root}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "datasets": cmd_datasets,
        "count": cmd_count,
        "simulate": cmd_simulate,
        "profile": cmd_profile,
        "experiment": cmd_experiment,
        "validate": cmd_validate,
        "serve": cmd_serve,
        "worker": cmd_worker,
        "submit": cmd_submit,
        "jobs": cmd_jobs,
        "shutdown": cmd_shutdown,
        "cache": cmd_cache,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
