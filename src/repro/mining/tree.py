"""Logical search-tree expansion shared by the miner and the simulator.

Pattern-aware mining explores one search tree per data vertex (Figure 1
of the paper).  A tree node at depth ``d`` matches one data vertex to
pattern-order position ``d``; *executing* the corresponding task computes
the **candidate set** for depth ``d + 1`` with set operations over
neighbor sets and previously materialized intermediate results
(Algorithm 1: ``S1 = N(u1) ∩ S0``).

:class:`SearchContext` encapsulates that semantics once, so the software
reference miner and every simulated scheduling policy execute *exactly*
the same logical workload — the completeness/uniqueness invariant of
§2.1 then holds for all of them by construction and is checked in tests.

Intermediate-result reuse
-------------------------
The candidate set for depth ``d+1`` is
``(∩_{e∈conn} N(emb[e]))  [\\  ∪_{e∈disc} N(emb[e])]``.
Instead of recomputing from raw neighbor sets, the expansion starts from
the deepest ancestor candidate set whose formula is a sub-formula of the
target (clique chains reduce to ``S_d = N(v) ∩ S_{d-1}``), which is what
gives graph mining its intermediate-data locality: sibling tasks share
the same ancestor set as an input (§2.2, "tasks with the same parent task
use the same intermediate results from previous depths").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ScheduleError
from ..graph.csr import CSRGraph
from ..patterns.schedule import MatchingSchedule
from . import setops


@dataclass(frozen=True)
class SetOpInput:
    """One input of a set operation.

    ``kind`` is ``"intermediate"`` (an ancestor candidate set, identified
    by the depth it feeds: ``ref = e`` means the candidate set computed by
    the depth ``e - 1`` ancestor task) or ``"neighbors"`` (the adjacency of
    data vertex ``ref``, streamed from the CSR region).
    """

    kind: str
    ref: int
    size: int


@dataclass(frozen=True)
class SetOp:
    """One two-input sorted-merge set operation with its accounting."""

    op: str  # "intersect" | "subtract" | "fetch"
    left: Optional[SetOpInput]
    right: Optional[SetOpInput]
    output_size: int

    @property
    def comparisons(self) -> int:
        """Merge-cost element comparisons of this operation."""
        left = self.left.size if self.left is not None else 0
        right = self.right.size if self.right is not None else 0
        return setops.merge_cost(left, right)


@dataclass(frozen=True)
class Expansion:
    """Result of executing one task: the next-depth candidate set."""

    candidates: np.ndarray
    ops: Tuple[SetOp, ...]
    reused_depth: Optional[int]

    @property
    def total_comparisons(self) -> int:
        """Total merge comparisons across all ops of this expansion."""
        return sum(op.comparisons for op in self.ops)

    @property
    def intermediate_inputs(self) -> List[SetOpInput]:
        """The intermediate-kind inputs (for locality accounting)."""
        out = []
        for op in self.ops:
            for inp in (op.left, op.right):
                if inp is not None and inp.kind == "intermediate":
                    out.append(inp)
        return out

    @property
    def neighbor_inputs(self) -> List[SetOpInput]:
        """The neighbor-set inputs (CSR / graph-region traffic)."""
        out = []
        for op in self.ops:
            for inp in (op.left, op.right):
                if inp is not None and inp.kind == "neighbors":
                    out.append(inp)
        return out


class SearchContext:
    """Schedule-driven search-tree semantics over one graph.

    The context is stateless with respect to exploration order: any
    scheduling policy may call :meth:`expand` / :meth:`children` in any
    order, which is precisely the paper's Insight 1 (tasks without a
    parent-child relationship are independent).
    """

    def __init__(self, graph: CSRGraph, schedule: MatchingSchedule) -> None:
        self.graph = graph
        self.schedule = schedule
        # Precompute, per target depth, the deepest reusable ancestor depth
        # and the residual intersect / subtract depth lists.
        self._plan: List[Tuple[Optional[int], Tuple[int, ...], Tuple[int, ...]]] = []
        for d in range(schedule.depth):
            self._plan.append(self._make_plan(d))

    # ------------------------------------------------------------------
    def _make_plan(
        self, d: int
    ) -> Tuple[Optional[int], Tuple[int, ...], Tuple[int, ...]]:
        """Reuse plan for computing the candidate set *for* depth ``d``.

        Returns ``(reused_depth, residual_intersections, residual_subtractions)``
        where ``reused_depth = e`` means "start from the candidate set for
        depth ``e``" (the ancestor task at depth ``e - 1`` materialized it).
        """
        if d == 0:
            return (None, (), ())
        schedule = self.schedule
        conn = set(schedule.connected[d])
        disc = set(schedule.disconnected[d]) if schedule.induced else set()
        best: Optional[int] = None
        for e in range(1, d):
            e_conn = set(schedule.connected[e])
            e_disc = set(schedule.disconnected[e]) if schedule.induced else set()
            if e_conn <= conn and e_disc <= disc:
                if best is None or len(e_conn) + len(e_disc) > len(
                    set(schedule.connected[best])
                ) + (len(set(schedule.disconnected[best])) if schedule.induced else 0):
                    best = e
        if best is None:
            residual_conn = tuple(sorted(conn))
            residual_disc = tuple(sorted(disc))
        else:
            residual_conn = tuple(sorted(conn - set(schedule.connected[best])))
            residual_disc = tuple(
                sorted(disc - (set(schedule.disconnected[best]) if schedule.induced else set()))
            )
        return (best, residual_conn, residual_disc)

    # ------------------------------------------------------------------
    def reuse_plan(self, d: int) -> Tuple[Optional[int], Tuple[int, ...], Tuple[int, ...]]:
        """Reuse plan for the candidate set feeding depth ``d``.

        Returns ``(reused_depth, residual_intersections, residual_subtractions)``;
        exposed so policies can reason about set lifetimes.
        """
        return self._plan[d]

    def roots(self) -> range:
        """Every data vertex roots one search tree (line 1 of Algorithm 1)."""
        return range(self.graph.num_vertices)

    def expand(
        self,
        embedding: Sequence[int],
        ancestor_sets: Optional[Sequence[np.ndarray]] = None,
    ) -> Expansion:
        """Execute the task matching ``embedding[-1]`` at depth ``len - 1``.

        Computes the candidate set for depth ``len(embedding)`` together
        with the set-operation trace.  ``ancestor_sets[e]`` may supply the
        already-materialized candidate set *for* depth ``e`` (index 0
        unused); when omitted, reusable ancestors are recomputed —
        functionally identical, just slower.

        Expanding a full-length embedding is a logic error: leaf tasks
        have no next depth.
        """
        d = len(embedding)
        if d < 1 or d > self.schedule.depth:
            raise ScheduleError(f"embedding length {d} out of range")
        if d == self.schedule.depth:
            raise ScheduleError("leaf tasks have no candidate set to compute")

        reused_depth, residual_conn, residual_disc = self._plan[d]
        ops: List[SetOp] = []

        if reused_depth is not None:
            if ancestor_sets is not None and ancestor_sets[reused_depth] is not None:
                current = ancestor_sets[reused_depth]
            else:
                current = self._recompute_set(embedding, reused_depth)
            current_input = SetOpInput("intermediate", reused_depth, len(current))
            if not residual_conn and not residual_disc:
                # The target formula equals an ancestor's: the task only
                # re-reads that set (one streaming pass, no merge work).
                ops.append(SetOp("fetch", current_input, None, len(current)))
        else:
            # Start from the first residual neighbor set.
            first = residual_conn[0]
            nbrs = self.graph.neighbors(int(embedding[first]))
            current = nbrs
            current_input = SetOpInput("neighbors", int(embedding[first]), len(nbrs))
            residual_conn = residual_conn[1:]
            if not residual_conn and not residual_disc:
                # Pure fetch (e.g. the root task: S0 = N(u0)).
                ops.append(SetOp("fetch", current_input, None, len(current)))

        for e in residual_conn:
            nbrs = self.graph.neighbors(int(embedding[e]))
            rhs = SetOpInput("neighbors", int(embedding[e]), len(nbrs))
            out = setops.intersect(current, nbrs)
            ops.append(SetOp("intersect", current_input, rhs, len(out)))
            current = out
            # Partial results live in the PE scratchpad, not the L1
            # intermediate-result region, hence the distinct kind.
            current_input = SetOpInput("spm", d, len(out))
        for e in residual_disc:
            nbrs = self.graph.neighbors(int(embedding[e]))
            rhs = SetOpInput("neighbors", int(embedding[e]), len(nbrs))
            out = setops.subtract(current, nbrs)
            ops.append(SetOp("subtract", current_input, rhs, len(out)))
            current = out
            current_input = SetOpInput("spm", d, len(out))

        return Expansion(candidates=current, ops=tuple(ops), reused_depth=reused_depth)

    def _recompute_set(self, embedding: Sequence[int], e: int) -> np.ndarray:
        """Recompute the candidate set for depth ``e`` from neighbor sets."""
        conn = self.schedule.connected[e]
        current = self.graph.neighbors(int(embedding[conn[0]]))
        for f in conn[1:]:
            current = setops.intersect(current, self.graph.neighbors(int(embedding[f])))
        if self.schedule.induced:
            for f in self.schedule.disconnected[e]:
                current = setops.subtract(current, self.graph.neighbors(int(embedding[f])))
        return current

    def children(
        self, embedding: Sequence[int], candidates: np.ndarray
    ) -> List[int]:
        """Valid child vertices at depth ``len(embedding)``.

        Applies the symmetry-breaking upper bound (ascending scan cut-off)
        and drops vertices already used by the embedding.  The returned
        list is ascending — the order in which the task tree fetches
        candidate vertices.
        """
        d = len(embedding)
        bound = self.schedule.bound_for(embedding, d)
        kept = setops.truncate_below(candidates, bound)
        used = set(int(v) for v in embedding)
        return [int(v) for v in kept if int(v) not in used]

    def is_leaf_depth(self, depth: int) -> bool:
        """Whether ``depth`` is the final search depth (no spawning)."""
        return depth == self.schedule.max_depth
