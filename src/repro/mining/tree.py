"""Logical search-tree expansion shared by the miner and the simulator.

Pattern-aware mining explores one search tree per data vertex (Figure 1
of the paper).  A tree node at depth ``d`` matches one data vertex to
pattern-order position ``d``; *executing* the corresponding task computes
the **candidate set** for depth ``d + 1`` with set operations over
neighbor sets and previously materialized intermediate results
(Algorithm 1: ``S1 = N(u1) ∩ S0``).

:class:`SearchContext` encapsulates that semantics once, so the software
reference miner and every simulated scheduling policy execute *exactly*
the same logical workload — the completeness/uniqueness invariant of
§2.1 then holds for all of them by construction and is checked in tests.

Intermediate-result reuse
-------------------------
The candidate set for depth ``d+1`` is
``(∩_{e∈conn} N(emb[e]))  [\\  ∪_{e∈disc} N(emb[e])]``.
Instead of recomputing from raw neighbor sets, the expansion starts from
the deepest ancestor candidate set whose formula is a sub-formula of the
target (clique chains reduce to ``S_d = N(v) ∩ S_{d-1}``), which is what
gives graph mining its intermediate-data locality: sibling tasks share
the same ancestor set as an input (§2.2, "tasks with the same parent task
use the same intermediate results from previous depths").

Hot-path notes
--------------
This module sits on the per-task critical path of both the miner and the
cycle simulator, so the trace records (:class:`SetOpInput`,
:class:`SetOp`, :class:`Expansion`) are ``NamedTuple``s (C-speed
construction, same field API as the earlier frozen dataclasses), the
neighbor fetches go through the graph's :class:`~..graph.csr.NeighborArena`
(pre-built read-only slices), and ancestor recomputation is memoized per
``(depth, relevant-prefix)`` key.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from ..errors import ScheduleError
from ..graph.csr import CSRGraph
from ..patterns.schedule import MatchingSchedule
from . import setops


class SetOpInput(NamedTuple):
    """One input of a set operation.

    ``kind`` is ``"intermediate"`` (an ancestor candidate set, identified
    by the depth it feeds: ``ref = e`` means the candidate set computed by
    the depth ``e - 1`` ancestor task), ``"neighbors"`` (the adjacency of
    data vertex ``ref``, streamed from the CSR region) or ``"spm"`` (a
    partial result held in the PE scratchpad).
    """

    kind: str
    ref: int
    size: int


class SetOp(NamedTuple):
    """One two-input sorted-merge set operation with its accounting."""

    op: str  # "intersect" | "subtract" | "fetch"
    left: Optional[SetOpInput]
    right: Optional[SetOpInput]
    output_size: int

    @property
    def comparisons(self) -> int:
        """Merge-cost element comparisons of this operation."""
        left = self.left.size if self.left is not None else 0
        right = self.right.size if self.right is not None else 0
        return setops.merge_cost(left, right)


class Expansion(NamedTuple):
    """Result of executing one task: the next-depth candidate set.

    ``comparisons`` and ``neighbors`` carry accounting that
    :meth:`SearchContext.expand` precomputes while building ``ops`` (the
    simulator reads them once per task); when an ``Expansion`` is built
    by hand with only the first three fields, the properties fall back to
    deriving the same values from ``ops``.
    """

    candidates: np.ndarray
    ops: Tuple[SetOp, ...]
    reused_depth: Optional[int]
    comparisons: Optional[int] = None
    neighbors: Optional[Tuple[SetOpInput, ...]] = None

    @property
    def total_comparisons(self) -> int:
        """Total merge comparisons across all ops of this expansion."""
        if self.comparisons is not None:
            return self.comparisons
        return sum(op.comparisons for op in self.ops)

    @property
    def intermediate_inputs(self) -> List[SetOpInput]:
        """The intermediate-kind inputs (for locality accounting)."""
        out = []
        for op in self.ops:
            for inp in (op.left, op.right):
                if inp is not None and inp.kind == "intermediate":
                    out.append(inp)
        return out

    @property
    def neighbor_inputs(self) -> List[SetOpInput]:
        """The neighbor-set inputs (CSR / graph-region traffic)."""
        if self.neighbors is not None:
            return list(self.neighbors)
        out = []
        for op in self.ops:
            for inp in (op.left, op.right):
                if inp is not None and inp.kind == "neighbors":
                    out.append(inp)
        return out


class SearchContext:
    """Schedule-driven search-tree semantics over one graph.

    The context is stateless with respect to exploration order: any
    scheduling policy may call :meth:`expand` / :meth:`children` in any
    order, which is precisely the paper's Insight 1 (tasks without a
    parent-child relationship are independent).
    """

    #: Bound on the ancestor-recomputation memo (entries, then cleared).
    RECOMPUTE_MEMO_LIMIT = 8192

    def __init__(self, graph: CSRGraph, schedule: MatchingSchedule) -> None:
        self.graph = graph
        self.schedule = schedule
        self._nbr = graph.arena().slices
        # Precompute, per target depth, the deepest reusable ancestor depth
        # and the residual intersect / subtract depth lists.
        self._plan: List[Tuple[Optional[int], Tuple[int, ...], Tuple[int, ...]]] = []
        for d in range(schedule.depth):
            self._plan.append(self._make_plan(d))
        # Per depth: embedding positions that can appear in the candidate
        # set.  A position in connected[d] is auto-excluded (no vertex is
        # its own neighbor), so only the rest need the used-vertex filter.
        self._used_positions: List[Tuple[int, ...]] = [
            tuple(p for p in range(d) if p not in set(schedule.connected[d]))
            for d in range(schedule.depth)
        ]
        self._bound_depths = schedule.upper_bound_depths
        self._recompute_memo: Dict[Tuple[int, Tuple[int, ...]], np.ndarray] = {}
        # Workload counters consumed by the validation harness
        # (``repro.validate``): every candidate presented to
        # :meth:`children` is either kept (spawned as a child task) or
        # pruned by the symmetry bound / used-vertex filter, so
        # ``candidates_seen == children_kept + children_pruned`` is a
        # conservation law any caller may assert.
        self.expansions = 0
        self.candidates_seen = 0
        self.children_kept = 0
        self.children_pruned = 0

    # ------------------------------------------------------------------
    def _make_plan(
        self, d: int
    ) -> Tuple[Optional[int], Tuple[int, ...], Tuple[int, ...]]:
        """Reuse plan for computing the candidate set *for* depth ``d``.

        Returns ``(reused_depth, residual_intersections, residual_subtractions)``
        where ``reused_depth = e`` means "start from the candidate set for
        depth ``e``" (the ancestor task at depth ``e - 1`` materialized it).
        """
        if d == 0:
            return (None, (), ())
        schedule = self.schedule
        conn = set(schedule.connected[d])
        disc = set(schedule.disconnected[d]) if schedule.induced else set()
        best: Optional[int] = None
        for e in range(1, d):
            e_conn = set(schedule.connected[e])
            e_disc = set(schedule.disconnected[e]) if schedule.induced else set()
            if e_conn <= conn and e_disc <= disc:
                if best is None or len(e_conn) + len(e_disc) > len(
                    set(schedule.connected[best])
                ) + (len(set(schedule.disconnected[best])) if schedule.induced else 0):
                    best = e
        if best is None:
            residual_conn = tuple(sorted(conn))
            residual_disc = tuple(sorted(disc))
        else:
            residual_conn = tuple(sorted(conn - set(schedule.connected[best])))
            residual_disc = tuple(
                sorted(disc - (set(schedule.disconnected[best]) if schedule.induced else set()))
            )
        return (best, residual_conn, residual_disc)

    # ------------------------------------------------------------------
    def reuse_plan(self, d: int) -> Tuple[Optional[int], Tuple[int, ...], Tuple[int, ...]]:
        """Reuse plan for the candidate set feeding depth ``d``.

        Returns ``(reused_depth, residual_intersections, residual_subtractions)``;
        exposed so policies can reason about set lifetimes.
        """
        return self._plan[d]

    def roots(self) -> range:
        """Every data vertex roots one search tree (line 1 of Algorithm 1)."""
        return range(self.graph.num_vertices)

    def expand(
        self,
        embedding: Sequence[int],
        ancestor_sets: Optional[Sequence[np.ndarray]] = None,
    ) -> Expansion:
        """Execute the task matching ``embedding[-1]`` at depth ``len - 1``.

        Computes the candidate set for depth ``len(embedding)`` together
        with the set-operation trace.  ``ancestor_sets[e]`` may supply the
        already-materialized candidate set *for* depth ``e`` (index 0
        unused); when omitted, reusable ancestors are recomputed —
        functionally identical, just slower.

        Expanding a full-length embedding is a logic error: leaf tasks
        have no next depth.
        """
        d = len(embedding)
        if d < 1 or d > self.schedule.depth:
            raise ScheduleError(f"embedding length {d} out of range")
        if d == self.schedule.depth:
            raise ScheduleError("leaf tasks have no candidate set to compute")
        self.expansions += 1

        reused_depth, residual_conn, residual_disc = self._plan[d]
        nbr = self._nbr
        ops: List[SetOp] = []
        neighbor_inputs: List[SetOpInput] = []
        comparisons = 0

        if reused_depth is not None:
            if ancestor_sets is not None and ancestor_sets[reused_depth] is not None:
                current = ancestor_sets[reused_depth]
            else:
                current = self._recompute_set(embedding, reused_depth)
            size = len(current)
            current_input = SetOpInput("intermediate", reused_depth, size)
            if not residual_conn and not residual_disc:
                # The target formula equals an ancestor's: the task only
                # re-reads that set (one streaming pass, no merge work).
                ops.append(SetOp("fetch", current_input, None, size))
                comparisons = size
        else:
            # Start from the first residual neighbor set.
            first = residual_conn[0]
            v = embedding[first]
            nbrs = nbr[v]
            current = nbrs
            size = len(nbrs)
            current_input = SetOpInput("neighbors", int(v), size)
            neighbor_inputs.append(current_input)
            residual_conn = residual_conn[1:]
            if not residual_conn and not residual_disc:
                # Pure fetch (e.g. the root task: S0 = N(u0)).
                ops.append(SetOp("fetch", current_input, None, size))
                comparisons = size

        size = len(current)
        for e in residual_conn:
            v = embedding[e]
            nbrs = nbr[v]
            rhs = SetOpInput("neighbors", int(v), len(nbrs))
            neighbor_inputs.append(rhs)
            out = setops.intersect(current, nbrs)
            comparisons += size + len(nbrs)
            size = len(out)
            ops.append(SetOp("intersect", current_input, rhs, size))
            current = out
            # Partial results live in the PE scratchpad, not the L1
            # intermediate-result region, hence the distinct kind.
            current_input = SetOpInput("spm", d, size)
        for e in residual_disc:
            v = embedding[e]
            nbrs = nbr[v]
            rhs = SetOpInput("neighbors", int(v), len(nbrs))
            neighbor_inputs.append(rhs)
            out = setops.subtract(current, nbrs)
            comparisons += size + len(nbrs)
            size = len(out)
            ops.append(SetOp("subtract", current_input, rhs, size))
            current = out
            current_input = SetOpInput("spm", d, size)

        return Expansion(
            current, tuple(ops), reused_depth, comparisons, tuple(neighbor_inputs)
        )

    def _recompute_set(self, embedding: Sequence[int], e: int) -> np.ndarray:
        """Recompute the candidate set for depth ``e`` from neighbor sets.

        Memoized per ``(e, relevant embedding prefix)``: sibling and
        repeat expansions (partition intake, merging, ancestor-free
        calls) share one materialization instead of re-running the merge
        chain.  The memo holds read-only arrays, so sharing is safe.
        """
        conn = self.schedule.connected[e]
        induced = self.schedule.induced
        disc = self.schedule.disconnected[e] if induced else ()
        key = (e, tuple(int(embedding[f]) for f in conn + tuple(disc)))
        memo = self._recompute_memo
        cached = memo.get(key)
        if cached is not None:
            return cached
        nbr = self._nbr
        current = setops.intersect_multi([nbr[embedding[f]] for f in conn])
        for f in disc:
            current = setops.subtract(current, nbr[embedding[f]])
        if current.flags.writeable:
            current = current.view()
            current.flags.writeable = False
        if len(memo) >= self.RECOMPUTE_MEMO_LIMIT:
            memo.clear()
        memo[key] = current
        return current

    def children(
        self, embedding: Sequence[int], candidates: np.ndarray
    ) -> np.ndarray:
        """Valid child vertices at depth ``len(embedding)``.

        Applies the symmetry-breaking upper bound (ascending scan cut-off)
        and drops vertices already used by the embedding.  The returned
        ``int64`` array is ascending — the order in which the task tree
        fetches candidate vertices — and is one contiguous span per
        parent, which is what the task tree's batch child admission
        (``tree_fill``) consumes directly.  Callers must treat it as
        read-only: it may alias the candidate set.
        """
        d = len(embedding)
        total = len(candidates)
        depths = self._bound_depths[d]
        if depths and total:
            bound = min(int(embedding[i]) for i in depths)
            kept = candidates[: int(np.searchsorted(candidates, bound, side="left"))]
        else:
            kept = candidates
        check = self._used_positions[d]
        if check and len(kept):
            hits: List[int] = []
            for p in check:
                v = int(embedding[p])
                i = int(np.searchsorted(kept, v))
                if i < len(kept) and kept[i] == v:
                    hits.append(i)
            if hits:
                # Embedding vertices are distinct, so hit indices are too.
                kept = np.delete(kept, hits)
        self.candidates_seen += total
        self.children_kept += len(kept)
        self.children_pruned += total - len(kept)
        return kept

    def is_leaf_depth(self, depth: int) -> bool:
        """Whether ``depth`` is the final search depth (no spawning)."""
        return depth == self.schedule.max_depth
