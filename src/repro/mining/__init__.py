"""Software mining substrate: set ops, search-tree semantics, miners."""

from .engine import (
    ELEMENTS_PER_LINE,
    MiningResult,
    MiningStats,
    count_matches,
    lines_for,
    mine,
)
from .naive import count_injective_maps, count_unique_subgraphs
from .setops import (
    as_sorted_array,
    intersect,
    intersect_bounded,
    intersect_multi,
    intersect_multi_reference,
    intersect_reference,
    merge_cost,
    segment_count,
    subtract,
    subtract_bounded,
    subtract_reference,
    truncate_below,
)
from .tree import Expansion, SearchContext, SetOp, SetOpInput

__all__ = [
    "ELEMENTS_PER_LINE",
    "Expansion",
    "MiningResult",
    "MiningStats",
    "SearchContext",
    "SetOp",
    "SetOpInput",
    "as_sorted_array",
    "count_injective_maps",
    "count_matches",
    "count_unique_subgraphs",
    "intersect",
    "intersect_bounded",
    "intersect_multi",
    "intersect_multi_reference",
    "intersect_reference",
    "lines_for",
    "merge_cost",
    "mine",
    "segment_count",
    "subtract",
    "subtract_bounded",
    "subtract_reference",
    "truncate_below",
]
