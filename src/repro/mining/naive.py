"""Pattern-oblivious brute-force miner: the correctness oracle.

Early graph mining systems enumerate all candidate subgraphs and test
isomorphism explicitly (§2.1).  This module implements that approach —
unusably slow for real workloads, which is the whole point of
pattern-aware systems, but exact and independent of the schedule
machinery, so the test suite uses it to validate schedules end to end:

    schedule-driven count  ==  injective-map count / |Aut(P)|
"""

from __future__ import annotations

from typing import List

from ..errors import PatternError
from ..graph.csr import CSRGraph
from ..patterns.automorphism import automorphism_count
from ..patterns.pattern import Pattern


def count_injective_maps(
    graph: CSRGraph, pattern: Pattern, *, induced: bool = False
) -> int:
    """Number of injective maps pattern→graph preserving (non-)edges.

    Edge-induced mode requires every pattern edge to map to a graph edge;
    vertex-induced mode additionally requires every pattern *non-edge* to
    map to a graph non-edge.  Each unique subgraph occurrence is counted
    ``|Aut(P)|`` times.
    """
    k = pattern.num_vertices
    assignment: List[int] = [-1] * k
    used = set()
    total = 0

    def extend(i: int) -> int:
        if i == k:
            return 1
        found = 0
        for v in range(graph.num_vertices):
            if v in used:
                continue
            ok = True
            for j in range(i):
                has = graph.has_edge(assignment[j], v)
                wants = pattern.has_edge(j, i)
                if wants and not has:
                    ok = False
                    break
                if induced and not wants and has:
                    ok = False
                    break
            if ok:
                assignment[i] = v
                used.add(v)
                found += extend(i + 1)
                used.discard(v)
                assignment[i] = -1
        return found

    total = extend(0)
    return total


def count_unique_subgraphs(
    graph: CSRGraph, pattern: Pattern, *, induced: bool = False
) -> int:
    """Number of unique subgraph occurrences (orbit count).

    Every occurrence corresponds to exactly ``|Aut(P)|`` injective maps,
    so the division below is always exact; a remainder indicates a bug
    and raises.
    """
    maps = count_injective_maps(graph, pattern, induced=induced)
    autos = automorphism_count(pattern)
    if maps % autos != 0:
        raise PatternError(
            f"injective map count {maps} not divisible by |Aut|={autos}"
        )
    return maps // autos
