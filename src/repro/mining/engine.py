"""Reference software miner: exact counts + workload statistics.

This is the pattern-aware DFS miner the accelerator implements in
hardware (Algorithm 1 generalized to any schedule).  It serves three
roles in the reproduction:

* **ground truth** — every simulated scheduling policy must report the
  exact same match count (completeness & uniqueness, §2.1);
* **workload characterization** — per-depth task counts, set-operation
  work and intermediate-data sizes drive Table 2 and the analytic parts
  of the evaluation narrative;
* **fast counting API** — downstream users who just want counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..graph.csr import CSRGraph
from ..patterns.schedule import MatchingSchedule
from .tree import Expansion, SearchContext

#: Elements per 64-byte cache line (16 four-byte vertex ids), Table 2.
ELEMENTS_PER_LINE = 16


def lines_for(elements: int, elements_per_line: int = ELEMENTS_PER_LINE) -> int:
    """Cache lines needed to hold ``elements`` vertex ids (ceil division)."""
    if elements <= 0:
        return 0
    return -(-int(elements) // int(elements_per_line))


@dataclass
class MiningStats:
    """Aggregate workload statistics of one mining run."""

    match_count: int = 0
    tasks_per_depth: List[int] = field(default_factory=list)
    children_spawned: int = 0
    children_pruned: int = 0
    total_comparisons: int = 0
    materialized_elements: int = 0
    intermediate_input_lines: int = 0
    intermediate_input_elements: int = 0
    expanding_tasks: int = 0

    @property
    def total_tasks(self) -> int:
        """All executing (non-pruned) tasks across all depths."""
        return sum(self.tasks_per_depth)

    @property
    def candidates_generated(self) -> int:
        """Candidates produced by expansions: spawned + pruned children.

        This is the "spawned = executed + pruned" conservation law the
        validation harness asserts: every generated candidate either
        became an executed child task or was pruned by symmetry/used-
        vertex filtering, and every executed task is a root or a spawned
        child (``total_tasks == roots + children_spawned``).
        """
        return self.children_spawned + self.children_pruned

    @property
    def avg_intermediate_lines_per_task(self) -> float:
        """Average intermediate-data cache lines per expanding task.

        This is the Table 2 metric: how many cache lines of previously
        materialized candidate sets one task reads as set-operation input.
        Leaf tasks perform no set operation and are excluded (they would
        only dilute the average with zeros).
        """
        if self.expanding_tasks == 0:
            return 0.0
        return self.intermediate_input_lines / self.expanding_tasks


@dataclass
class MiningResult:
    """Match count, statistics and (optionally) the embeddings."""

    count: int
    stats: MiningStats
    embeddings: Optional[List[Tuple[int, ...]]] = None


def mine(
    graph: CSRGraph,
    schedule: MatchingSchedule,
    *,
    collect_embeddings: bool = False,
    max_matches: Optional[int] = None,
) -> MiningResult:
    """Run the reference miner and return exact counts plus statistics.

    ``max_matches`` stops early once that many matches are found (useful
    for smoke tests on large inputs); counts are then lower bounds.
    """
    ctx = SearchContext(graph, schedule)
    stats = MiningStats(tasks_per_depth=[0] * schedule.depth)
    embeddings: Optional[List[Tuple[int, ...]]] = [] if collect_embeddings else None
    max_depth = schedule.max_depth

    # sets[e] holds the candidate set *for* depth e along the current path.
    sets: List[Optional[np.ndarray]] = [None] * (schedule.depth + 1)

    def visit(embedding: List[int]) -> bool:
        """Execute the task for ``embedding``; returns False to stop early."""
        depth = len(embedding) - 1
        stats.tasks_per_depth[depth] += 1
        if depth == max_depth:
            stats.match_count += 1
            if embeddings is not None:
                embeddings.append(tuple(embedding))
            return max_matches is None or stats.match_count < max_matches

        expansion = ctx.expand(embedding, sets)
        _account(stats, expansion)
        next_depth = depth + 1
        sets[next_depth] = expansion.candidates
        children = ctx.children(embedding, expansion.candidates)
        stats.children_spawned += len(children)
        stats.children_pruned += len(expansion.candidates) - len(children)
        for child in children:
            embedding.append(int(child))
            keep_going = visit(embedding)
            embedding.pop()
            if not keep_going:
                return False
        sets[next_depth] = None
        return True

    for root in ctx.roots():
        if not visit([root]):
            break

    return MiningResult(count=stats.match_count, stats=stats, embeddings=embeddings)


def _account(stats: MiningStats, expansion: Expansion) -> None:
    stats.expanding_tasks += 1
    stats.total_comparisons += expansion.total_comparisons
    stats.materialized_elements += len(expansion.candidates)
    for inp in expansion.intermediate_inputs:
        stats.intermediate_input_lines += lines_for(inp.size)
        stats.intermediate_input_elements += inp.size


def count_matches(graph: CSRGraph, schedule: MatchingSchedule) -> int:
    """Exact number of unique matches of ``schedule`` in ``graph``."""
    return mine(graph, schedule).count
