"""Sorted-set operations: the computational kernel of graph mining.

Pattern-aware graph mining spends nearly all of its compute in
intersections and subtractions of sorted vertex sets (§1 of the paper),
which is why accelerators build dedicated set-operation functional units.
This module provides:

* numpy implementations used by the miner and simulator,
* pure-Python references used by the property-based tests,
* cost accounting matching the merge-based FU model: a two-input sorted
  merge costs ``len(a) + len(b)`` element comparisons, which the FU pool
  divides into fixed-size segments (FINGERS-style fine-grained
  parallelism, §5.1.1 "vertex sets are divided into fine-grained segments
  by dividers; only paired segments become inputs of set operations").
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

EMPTY = np.empty(0, dtype=np.int64)


def as_sorted_array(values: Sequence[int]) -> np.ndarray:
    """Sorted, deduplicated ``int64`` array from arbitrary int values."""
    arr = np.asarray(list(values), dtype=np.int64)
    if len(arr) == 0:
        return EMPTY
    return np.unique(arr)


def intersect(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Intersection of two sorted unique arrays (sorted unique result)."""
    if len(a) == 0 or len(b) == 0:
        return EMPTY
    return np.intersect1d(a, b, assume_unique=True)


def subtract(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elements of ``a`` not present in ``b`` (both sorted unique)."""
    if len(a) == 0:
        return EMPTY
    if len(b) == 0:
        return a
    return np.setdiff1d(a, b, assume_unique=True)


def merge_cost(size_a: int, size_b: int) -> int:
    """Element comparisons of a two-pointer sorted merge."""
    return int(size_a) + int(size_b)


def truncate_below(a: np.ndarray, bound: int | None) -> np.ndarray:
    """Prefix of sorted ``a`` strictly below ``bound`` (all of ``a`` if None).

    This is the symmetry-breaking scan cut-off: candidates are stored
    ascending, so every element at or past the bound is pruned together
    (the ``break`` in Algorithm 1 of the paper).
    """
    if bound is None or len(a) == 0:
        return a
    pos = int(np.searchsorted(a, bound, side="left"))
    return a[:pos]


# ----------------------------------------------------------------------
# Pure-Python references (oracles for the property-based tests)
# ----------------------------------------------------------------------

def intersect_reference(a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Two-pointer merge intersection; oracle for :func:`intersect`."""
    out: List[int] = []
    i = j = 0
    while i < len(a) and j < len(b):
        if a[i] == b[j]:
            out.append(int(a[i]))
            i += 1
            j += 1
        elif a[i] < b[j]:
            i += 1
        else:
            j += 1
    return out


def subtract_reference(a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Two-pointer merge subtraction; oracle for :func:`subtract`."""
    out: List[int] = []
    i = j = 0
    while i < len(a):
        while j < len(b) and b[j] < a[i]:
            j += 1
        if j >= len(b) or b[j] != a[i]:
            out.append(int(a[i]))
        i += 1
    return out


def segment_count(total_elements: int, segment_size: int) -> int:
    """Number of FU segment jobs for ``total_elements`` of merge input."""
    if total_elements <= 0:
        return 0
    if segment_size <= 0:
        raise ValueError("segment_size must be positive")
    return -(-int(total_elements) // int(segment_size))
