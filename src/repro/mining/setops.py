"""Sorted-set operations: the computational kernel of graph mining.

Pattern-aware graph mining spends nearly all of its compute in
intersections and subtractions of sorted vertex sets (§1 of the paper),
which is why accelerators build dedicated set-operation functional units.
This module provides:

* numpy implementations used by the miner and simulator,
* pure-Python references used by the property-based tests,
* cost accounting matching the merge-based FU model: a two-input sorted
  merge costs ``len(a) + len(b)`` element comparisons, which the FU pool
  divides into fixed-size segments (FINGERS-style fine-grained
  parallelism, §5.1.1 "vertex sets are divided into fine-grained segments
  by dividers; only paired segments become inputs of set operations").

The binary kernels are ``searchsorted``-based rather than
``np.intersect1d``/``np.setdiff1d``: both operands are sorted unique by
contract, so membership of the smaller operand in the larger is a single
binary-search sweep — no concatenate-and-sort round trip.  The batched
variants (:func:`intersect_multi`, :func:`intersect_bounded`,
:func:`subtract_bounded`) chain that sweep without materializing
intermediate copies beyond the shrinking survivor array.

Backend dispatch
----------------
:func:`intersect` and :func:`subtract` are thin dispatchers: trivial
cases (an empty operand) resolve here so every backend shares their
exact semantics, and the general case routes through the module globals
``_intersect_impl`` / ``_subtract_impl``.  The defaults are the numpy
implementations below; ``repro.sim.backend`` rebinds them when a
compiled backend (numba / C extension) is selected.  All
implementations produce identical arrays — sorted unique ``int64`` —
so every accounted metric downstream is backend-independent.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

EMPTY = np.empty(0, dtype=np.int64)
EMPTY.setflags(write=False)


def _read_only(arr: np.ndarray) -> np.ndarray:
    """A read-only view of ``arr`` (zero-copy)."""
    view = arr.view()
    view.flags.writeable = False
    return view


def as_sorted_array(values: Sequence[int]) -> np.ndarray:
    """Sorted, deduplicated ``int64`` array from arbitrary int values.

    Returns a **read-only** array.  ``ndarray`` inputs fast-path: an
    already sorted-unique ``int64`` array is returned as a zero-copy
    read-only view instead of round-tripping through ``list``.
    """
    if isinstance(values, np.ndarray):
        arr = np.ascontiguousarray(values, dtype=np.int64).reshape(-1)
        if arr.size == 0:
            return EMPTY
        if arr.size == 1 or bool(np.all(np.diff(arr) > 0)):
            return _read_only(arr)
        return _read_only(np.unique(arr))
    items = list(values)
    if not items:
        return EMPTY
    return _read_only(np.unique(np.asarray(items, dtype=np.int64)))


def _intersect_numpy(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Binary-search intersection; both operands non-empty sorted unique."""
    if len(a) > len(b):
        a, b = b, a
    pos = b.searchsorted(a)
    # Clamp the one-past-the-end positions (elements above b's maximum)
    # onto the last slot: those elements are strictly greater than b[-1],
    # so the equality probe below rejects them — same result as zeroing,
    # in a single vector pass instead of mask-build + mask-assign.
    np.minimum(pos, len(b) - 1, out=pos)
    return a[b[pos] == a]


def _subtract_numpy(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Binary-search subtraction; both operands non-empty sorted unique."""
    pos = b.searchsorted(a)
    np.minimum(pos, len(b) - 1, out=pos)
    return a[b[pos] != a]


def _intersect_multi_numpy(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Chained binary-search intersection (general case of
    :func:`intersect_multi`): at least two operands, presorted
    smallest-first, first operand non-empty."""
    current = arrays[0]
    for arr in arrays[1:]:
        current = _intersect_numpy(current, arr)
        if len(current) == 0:
            return EMPTY
    return current


#: Active general-case implementations.  ``repro.sim.backend`` rebinds
#: these when a compiled backend is selected; the numpy kernels are the
#: pure reference backend.
_intersect_impl = _intersect_numpy
_subtract_impl = _subtract_numpy
_intersect_multi_impl = _intersect_multi_numpy


def intersect(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Intersection of two sorted unique arrays (sorted unique result)."""
    if len(a) == 0 or len(b) == 0:
        return EMPTY
    return _intersect_impl(a, b)


def subtract(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elements of ``a`` not present in ``b`` (both sorted unique)."""
    if len(a) == 0:
        return EMPTY
    if len(b) == 0:
        return a
    return _subtract_impl(a, b)


def intersect_multi(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Intersection of many sorted unique arrays without extra copies.

    Processes operands smallest-first so every binary-search sweep runs
    over the shortest possible survivor array; intersection is
    associative and commutative, so the result is identical to any
    pairwise chaining.  The general case is a single backend kernel
    (``_intersect_multi_impl``), so compiled backends pay one call's
    marshalling for the whole chain instead of one per pair.
    """
    if not arrays:
        raise ValueError("intersect_multi needs at least one array")
    ordered = sorted(arrays, key=len)
    if len(ordered) == 1:
        return ordered[0]
    if len(ordered[0]) == 0:
        return EMPTY
    return _intersect_multi_impl(ordered)


def intersect_bounded(a: np.ndarray, b: np.ndarray, bound: int | None) -> np.ndarray:
    """``truncate_below(intersect(a, b), bound)`` without the full merge.

    The bound is applied to ``a`` *first* (a zero-copy slice), so elements
    at or past the symmetry-breaking cut-off never enter the search sweep.
    """
    return intersect(truncate_below(a, bound), b)


def subtract_bounded(a: np.ndarray, b: np.ndarray, bound: int | None) -> np.ndarray:
    """``truncate_below(subtract(a, b), bound)`` without the full merge."""
    return subtract(truncate_below(a, bound), b)


def merge_cost(size_a: int, size_b: int) -> int:
    """Element comparisons of a two-pointer sorted merge."""
    return int(size_a) + int(size_b)


def truncate_below(a: np.ndarray, bound: int | None) -> np.ndarray:
    """Prefix of sorted ``a`` strictly below ``bound`` (all of ``a`` if None).

    This is the symmetry-breaking scan cut-off: candidates are stored
    ascending, so every element at or past the bound is pruned together
    (the ``break`` in Algorithm 1 of the paper).
    """
    if bound is None or len(a) == 0:
        return a
    pos = int(np.searchsorted(a, bound, side="left"))
    return a[:pos]


# ----------------------------------------------------------------------
# Pure-Python references (oracles for the property-based tests)
# ----------------------------------------------------------------------

def intersect_reference(a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Two-pointer merge intersection; oracle for :func:`intersect`."""
    out: List[int] = []
    i = j = 0
    while i < len(a) and j < len(b):
        if a[i] == b[j]:
            out.append(int(a[i]))
            i += 1
            j += 1
        elif a[i] < b[j]:
            i += 1
        else:
            j += 1
    return out


def subtract_reference(a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Two-pointer merge subtraction; oracle for :func:`subtract`."""
    out: List[int] = []
    i = j = 0
    while i < len(a):
        while j < len(b) and b[j] < a[i]:
            j += 1
        if j >= len(b) or b[j] != a[i]:
            out.append(int(a[i]))
        i += 1
    return out


def intersect_multi_reference(arrays: Sequence[Sequence[int]]) -> List[int]:
    """Left-to-right pairwise chaining; oracle for :func:`intersect_multi`."""
    if not arrays:
        raise ValueError("intersect_multi needs at least one array")
    current = [int(v) for v in arrays[0]]
    for arr in arrays[1:]:
        current = intersect_reference(current, arr)
    return current


def segment_count(total_elements: int, segment_size: int) -> int:
    """Number of FU segment jobs for ``total_elements`` of merge input."""
    if total_elements <= 0:
        return 0
    if segment_size <= 0:
        raise ValueError("segment_size must be positive")
    return -(-int(total_elements) // int(segment_size))
