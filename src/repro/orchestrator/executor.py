"""Awaitable per-cell execution on a long-lived warm pool.

The batch :class:`~repro.orchestrator.scheduler.Orchestrator` exposes
one blocking entry point (``run_cells``) that stages graphs, runs a
whole deduplicated grid, and tears everything down.  A serving process
needs the opposite shape: stand the expensive state up **once** — the
worker pool and the shared-memory graph arena — and then answer
individual cells as they arrive, concurrently, without ever paying
startup again.  :class:`PersistentCellExecutor` is that shape:

* ``stage(dataset, scale)`` materializes a graph once — into the
  process-local dataset memo and, in pool mode, a
  :class:`~repro.graph.arena.GraphArena` segment workers attach to
  zero-copy;
* ``run_cell(spec, key)`` is an **awaitable**: it dispatches one cell
  to the warm pool (or an in-process worker thread when ``jobs=1``)
  and resolves to the same ``(metrics, error, seconds, worker)``
  outcome tuple the batch scheduler produces, with the same structured
  error isolation — a failing cell returns an error report, it never
  poisons the pool;
* a worker that dies hard (``BrokenProcessPool``) or exceeds its
  timeout is replaced: the pool is rebuilt behind the same executor so
  the next cell still finds it warm;
* ``close()`` drains or cancels outstanding work and always unlinks
  the arena's ``/dev/shm`` segments (idempotent, also a context
  manager).

``repro serve`` (:mod:`repro.service`) drives this executor; the batch
orchestrator keeps its wave-based path, and both run the identical
:func:`~repro.orchestrator.scheduler._execute_cell` worker body, which
is what keeps daemon-served metrics byte-identical to batch-run ones.
"""

from __future__ import annotations

import asyncio
import functools
import multiprocessing
import os
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, Optional, Tuple

from ..graph.arena import ArenaHandle, GraphArena, arena_enabled, worker_init
from ..sim.metrics import RunMetrics
from .cache import ResultCache
from .cells import CellSpec, cell_key
from .scheduler import _execute_cell, _spec_payload

#: Outcome of one cell: (metrics, error, seconds, worker record).
CellOutcomeTuple = Tuple[Optional[RunMetrics], Optional[dict], float, Optional[dict]]


def _execute_staged_cell(payload: Tuple, handle: Optional[ArenaHandle]):
    """Pool worker body: resolve the staged graph, then run the cell.

    Graph resolution is best-effort — on any failure the cell falls back
    to its own load path and still reports a proper structured error.
    """
    code, scale = payload[1], payload[5]
    source, graph_seconds = "unresolved", 0.0
    try:
        from ..graph.arena import resolve_graph

        _, source, graph_seconds = resolve_graph(code, scale, handle)
    except BaseException:
        pass
    key, metrics_dict, error, seconds = _execute_cell(payload)
    from ..sim import backend as kernel_backend

    resolution = kernel_backend.resolution()
    worker = {
        "pid": os.getpid(),
        "dataset_source": source,
        "graph_seconds": round(graph_seconds, 6),
        # Resolution observed after the cell ran (the cell's config /
        # REPRO_BACKEND drove activation); surfaces silent fallbacks.
        "backend": resolution["resolved"],
        **(
            {"backend_fallback": resolution["fallback"]}
            if resolution["fallback"]
            else {}
        ),
    }
    return key, metrics_dict, error, seconds, worker


class PersistentCellExecutor:
    """Warm pool + staged arenas behind awaitable per-cell dispatch.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` runs cells on a single in-process
        worker thread (deterministic, fast to start — the test and
        in-proc-transport default); higher values use a fork-context
        ``ProcessPoolExecutor`` kept alive across cells.
    cache:
        Optional :class:`ResultCache` consulted by :meth:`lookup` and
        written through by callers; the executor itself never consults
        it (the service owns read-through policy).
    timeout:
        Per-cell wall-clock limit in seconds.  A timed-out cell returns
        a ``TimeoutError`` report and, in pool mode, the pool is
        rebuilt so the abandoned worker cannot absorb a later cell.
    """

    def __init__(
        self,
        jobs: int = 1,
        *,
        cache: Optional[ResultCache] = None,
        timeout: Optional[float] = None,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.timeout = timeout
        self._lock = threading.Lock()
        self._pool: "ProcessPoolExecutor | ThreadPoolExecutor | None" = None
        self._arena: Optional[GraphArena] = None
        self._handles: Dict[Tuple[str, float], ArenaHandle] = {}
        self._staged: Dict[Tuple[str, float], dict] = {}
        self._closed = False
        self._close_done = threading.Event()
        self._close_owner: Optional[int] = None
        #: Real simulations dispatched (coalescing tests read this).
        self.executions = 0

    # ------------------------------------------------------------------
    # staging
    # ------------------------------------------------------------------
    def stage(self, dataset: str, scale: float) -> dict:
        """Materialize one graph once; returns its staging record.

        Safe to call repeatedly and from executor threads: the first
        call builds (or binary-loads) the graph into the process-local
        memo and — in pool mode with usable shared memory — copies it
        into an arena segment; later calls return the memoized record.
        """
        key = (dataset, float(scale))
        with self._lock:
            record = self._staged.get(key)
            if record is not None:
                return record
            if self._closed:
                raise RuntimeError("executor is closed")
            from ..graph.datasets import load_dataset_with_source

            start = time.perf_counter()
            record = {"dataset": dataset, "scale": float(scale)}
            try:
                graph, source = load_dataset_with_source(dataset, scale=scale)
                record["source"] = source
                record["vertices"] = graph.num_vertices
                record["edges"] = graph.num_edges
                if self._use_arena():
                    if self._arena is None:
                        self._arena = GraphArena()
                    handle = self._arena.stage(dataset, float(scale), graph)
                    self._handles[key] = handle
                    record["arena"] = handle.shm_name
            except Exception as exc:
                record["source"] = "error"
                record["error"] = f"{type(exc).__name__}: {exc}"
            record["seconds"] = round(time.perf_counter() - start, 6)
            self._staged[key] = record
            return record

    def _use_arena(self) -> bool:
        return self.jobs > 1 and arena_enabled() and GraphArena.available()

    def staging(self) -> list:
        """Every staging record so far (the service's ``jobs`` view)."""
        with self._lock:
            return [dict(r) for r in self._staged.values()]

    def is_staged(self, dataset: str, scale: float) -> bool:
        """Whether :meth:`stage` has already resolved this graph."""
        return (dataset, float(scale)) in self._staged

    # ------------------------------------------------------------------
    # pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self):
        with self._lock:
            if self._closed:
                raise RuntimeError("executor is closed")
            if self._pool is None:
                self._pool = self._make_pool()
            return self._pool

    def _make_pool(self):
        if self.jobs == 1:
            return ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-cell"
            )
        context = None
        if "fork" in multiprocessing.get_all_start_methods():
            # fork inherits sys.path, loaded modules and the parent's
            # dataset memo — workers start warm.
            context = multiprocessing.get_context("fork")
        staged = tuple(self._handles.values())
        return ProcessPoolExecutor(
            max_workers=self.jobs,
            mp_context=context,
            initializer=worker_init if staged else None,
            initargs=(staged,) if staged else (),
        )

    def _rebuild_pool(self) -> None:
        """Replace a broken/abandoned pool so the next cell stays warm."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def lookup(self, key: str):
        """Read-through consult of the persistent cache (or None)."""
        if self.cache is None:
            return None
        return self.cache.get(key)

    def submit(self, spec: CellSpec, key: Optional[str] = None) -> Future:
        """Dispatch one cell to the warm pool; returns its Future."""
        key = key if key is not None else cell_key(spec)
        payload = _spec_payload(key, spec)
        handle = self._handles.get((spec.dataset, float(spec.scale)))
        pool = self._ensure_pool()
        self.executions += 1
        return pool.submit(_execute_staged_cell, payload, handle)

    async def run_cell(
        self, spec: CellSpec, key: Optional[str] = None
    ) -> CellOutcomeTuple:
        """Awaitable per-cell execution with structured error isolation.

        Never raises for a failing *cell* (the worker body converts any
        exception into an error report); executor-level faults — a dead
        worker process, a per-cell timeout — also come back as error
        reports, after the pool has been rebuilt.
        """
        start = time.perf_counter()
        try:
            future = self.submit(spec, key)
        except RuntimeError as exc:
            error = {"type": type(exc).__name__, "message": str(exc),
                     "traceback": ""}
            return None, error, 0.0, None
        wrapped = asyncio.wrap_future(future)
        try:
            if self.timeout is not None:
                outcome = await asyncio.wait_for(wrapped, self.timeout)
            else:
                outcome = await wrapped
        except asyncio.TimeoutError:
            future.cancel()
            self._rebuild_pool()
            error = {
                "type": "TimeoutError",
                "message": f"cell exceeded {self.timeout:.0f}s",
                "traceback": "",
            }
            return None, error, time.perf_counter() - start, None
        except Exception as exc:  # e.g. BrokenProcessPool
            self._rebuild_pool()
            error = {"type": type(exc).__name__, "message": str(exc),
                     "traceback": ""}
            return None, error, time.perf_counter() - start, None
        _key, metrics_dict, error, seconds, worker = outcome
        metrics = RunMetrics.from_dict(metrics_dict) if metrics_dict else None
        return metrics, error, seconds, worker

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, *, cancel: bool = True) -> None:
        """Shut the pool down and unlink every arena segment.

        Idempotent *and* convergent: exactly one invocation performs
        the teardown, and every other invocation — a drain path and a
        ``finally`` block closing concurrently, a second close from
        another thread — blocks until that teardown has finished, so no
        caller can observe a "closed" executor whose shm segments are
        still linked.  A re-entrant call from the closing thread itself
        (a ``finally`` on the same stack as the failing close) returns
        immediately instead of deadlocking on its own completion.
        """
        with self._lock:
            if self._closed:
                if self._close_owner == threading.get_ident():
                    return  # re-entrant from the closing thread's own stack
                wait_for_owner = True
            else:
                self._closed = True
                self._close_owner = threading.get_ident()
                wait_for_owner = False
                pool, self._pool = self._pool, None
                arena, self._arena = self._arena, None
                self._handles = {}
                self._staged = {}
        if wait_for_owner:
            self._close_done.wait()
            return
        try:
            if pool is not None:
                pool.shutdown(wait=not cancel, cancel_futures=cancel)
        finally:
            # Segments must never outlive the executor, whatever the
            # pool teardown did — and waiters are only released once
            # the unlink has actually happened.
            try:
                if arena is not None:
                    arena.close()
            finally:
                self._close_done.set()

    def __enter__(self) -> "PersistentCellExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
