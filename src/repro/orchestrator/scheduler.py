"""Cell scheduler: expand experiments into cells, execute on a pool.

Execution is a two-level DAG: every requested experiment depends on the
evaluation cells it reads, and cells are deduplicated *across* the
whole invocation (Figure 9 and Figure 10 share their Shogun runs, so
the pair costs one grid, not two).  The orchestrator runs it in three
phases:

1. **plan** — each plannable experiment runs once with a recording hook
   installed in :func:`repro.experiments.runner.run_cell`; every cell it
   would simulate is captured as a :class:`CellSpec` and the simulation
   itself is skipped (placeholder metrics are returned, never memoized).
   Experiments whose cost is not behind ``run_cell`` (table2's reference
   mining, table3/table4's statistics) are "direct": they skip this
   phase and simply execute inline during render.
2. **execute** — deduplicated cells are satisfied from the persistent
   cache when possible; the rest run on a ``ProcessPoolExecutor``
   (``jobs`` workers, fork context when available) or in-process when
   ``jobs=1`` or no pool can be created.  Each cell gets a wall-clock
   timeout and a bounded number of retries; a cell that exhausts them
   lands in the manifest's failure report instead of aborting the sweep.
3. **render** — each experiment runs for real with a replay hook that
   serves every ``run_cell`` from the in-memory results, so the rendered
   rows are byte-identical to the serial path (the simulator is
   deterministic; see docs/simulator.md).  An experiment that needs a
   failed cell raises :class:`CellExecutionError`, is recorded as
   failed, and the remaining experiments still render.
"""

from __future__ import annotations

import inspect
import multiprocessing
import os
import signal
import threading
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..graph.arena import ArenaHandle, GraphArena, arena_enabled, worker_init
from ..sim.metrics import RunMetrics
from .cache import ResultCache
from .cells import CellSpec, cell_key, graph_key, group_key
from .manifest import CellOutcome, ExperimentOutcome, RunManifest

#: Experiments whose cell set can be recorded without real simulation
#: (every expensive call goes through ``run_cell``).
PLANNABLE_EXPERIMENTS = frozenset({
    "figure3a", "figure3b", "figure9", "figure10", "figure11",
    "figure12", "figure13a", "figure13b", "figure14",
    "table1",
    "ablation_conservative_mode", "ablation_tokens", "ablation_pipeline_throughput",
})


class _InterruptGuard:
    """Convert SIGTERM/SIGINT during a sweep into ``KeyboardInterrupt``.

    ``kill -TERM`` would normally terminate the process between
    bytecodes, skipping every ``finally`` on the stack — including the
    one that unlinks the graph arena's shared-memory segments.  While
    the guard is active both signals raise in the main thread instead,
    so an interrupted sweep unwinds through the same cleanup path as a
    ^C: in-flight cells are abandoned, queued ones cancelled, and
    ``/dev/shm`` left clean.  Off the main thread (the ``repro serve``
    daemon runs sweeps from worker tasks) it is a no-op — the daemon's
    event loop owns signal disposition there.
    """

    def __init__(self) -> None:
        self._previous: Dict[int, object] = {}
        self.signum: Optional[int] = None

    def __enter__(self) -> "_InterruptGuard":
        if threading.current_thread() is not threading.main_thread():
            return self
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                self._previous[signum] = signal.signal(signum, self._raise)
            except (ValueError, OSError):  # exotic runtimes
                pass
        return self

    def _raise(self, signum, frame) -> None:
        self.signum = signum
        raise KeyboardInterrupt(signal.Signals(signum).name)

    def __exit__(self, *exc) -> bool:
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):
                pass
        return False


class CellExecutionError(RuntimeError):
    """A rendered experiment needed a cell that failed to execute."""

    def __init__(self, label: str, error: Dict[str, str]) -> None:
        self.label = label
        self.error = error
        super().__init__(
            f"cell {label} failed: {error.get('type', 'Error')}: "
            f"{error.get('message', '')}"
        )


@dataclass
class ExperimentRun:
    """Result of one orchestrated invocation."""

    names: List[str]
    rendered: Dict[str, str] = field(default_factory=dict)
    results: Dict[str, object] = field(default_factory=dict)
    manifest: RunManifest = field(default_factory=RunManifest)

    @property
    def ok(self) -> bool:
        return all(e.status == "ok" for e in self.manifest.experiments)


# ----------------------------------------------------------------------
# experiment invocation helpers
# ----------------------------------------------------------------------

def _call_experiment(name: str, scale: Optional[float], overrides: Optional[dict] = None):
    from .. import experiments

    fn = getattr(experiments, name)
    kwargs = dict(overrides or {})
    if scale is not None and "scale" in inspect.signature(fn).parameters:
        kwargs.setdefault("scale", scale)
    return fn(**kwargs)


def _placeholder_metrics(policy: str) -> RunMetrics:
    # cycles=1.0 keeps every speedup/normalization expression finite
    # while an experiment runs against recorded placeholders.
    return RunMetrics(policy=policy, cycles=1.0)


def plan_experiment(
    name: str,
    scale: Optional[float] = None,
    overrides: Optional[dict] = None,
) -> Dict[str, CellSpec]:
    """The deduplicated cells one experiment would simulate.

    Returns ``{}`` for direct (non-plannable) experiments; their work
    happens inline at render time.
    """
    from ..experiments import runner

    if name not in PLANNABLE_EXPERIMENTS:
        return {}
    recorded: Dict[str, CellSpec] = {}

    def recorder(*, dataset, pattern, policy, config, scale, verify):
        spec = CellSpec(dataset, pattern, policy, scale, config, verify)
        recorded.setdefault(cell_key(spec), spec)
        return _placeholder_metrics(policy)

    previous = runner.set_cell_hook(recorder)
    try:
        _call_experiment(name, scale, overrides)
    finally:
        runner.set_cell_hook(previous)
    return recorded


# ----------------------------------------------------------------------
# worker entry points (top level so they pickle under any start method)
# ----------------------------------------------------------------------

def _execute_cell(payload: Tuple) -> Tuple[str, Optional[dict], Optional[dict], float]:
    """Run one cell; returns (key, metrics_dict | None, error | None, seconds).

    Exceptions never propagate: they come back as structured error
    dictionaries so one bad cell cannot poison the pool or the sweep.
    Metrics cross the process boundary as plain dicts
    (``RunMetrics.to_dict``), the same form the cache stores.
    """
    key, dataset, pattern, policy, config, scale, verify = payload
    start = time.perf_counter()
    try:
        from ..experiments.runner import simulate_cell

        metrics = simulate_cell(
            dataset, pattern, policy, config=config, scale=scale, verify=verify
        )
        return (key, metrics.to_dict(), None, time.perf_counter() - start)
    except KeyboardInterrupt:
        # An interrupt is aimed at the sweep, not the cell: let it
        # unwind (the _InterruptGuard converts SIGTERM into this too).
        raise
    except BaseException as exc:  # structured failure report, not a crash
        error = {
            "type": type(exc).__name__,
            "message": str(exc),
            "traceback": traceback.format_exc(),
        }
        return (key, None, error, time.perf_counter() - start)


#: One unit of pool work: the payloads of every cell sharing a
#: ``(dataset, pattern, scale)`` plus the staged graph's handle (or None).
CellGroup = Tuple[Tuple[Tuple, ...], Optional[ArenaHandle]]


def _execute_cell_group(
    group: CellGroup,
) -> List[Tuple[str, Optional[dict], Optional[dict], float, dict]]:
    """Run one group of same-graph cells in this process.

    The shared graph is materialized exactly once (shared-memory attach
    when a handle is staged, else binary store / rebuild), then every
    cell runs under the usual per-cell error isolation.  Each outcome
    carries a ``worker`` record — pid, dataset source, graph seconds —
    for the manifest's failure report.
    """
    payloads, handle = group
    code, scale = payloads[0][1], payloads[0][5]
    try:
        from ..graph.arena import resolve_graph

        _, source, graph_seconds = resolve_graph(code, scale, handle)
    except BaseException:  # cells fall back to their own load path
        source, graph_seconds = "unresolved", 0.0
    from ..sim import backend as kernel_backend

    kernel_backend.activate(None)
    resolution = kernel_backend.resolution()
    worker = {
        "pid": os.getpid(),
        "dataset_source": source,
        "graph_seconds": round(graph_seconds, 6),
        # The backend this worker process resolved (the fallback
        # warning fires once per process and is lost in pool workers;
        # the manifest keeps the resolution auditable per cell).
        "backend": resolution["resolved"],
        **(
            {"backend_fallback": resolution["fallback"]}
            if resolution["fallback"]
            else {}
        ),
    }
    results = []
    for payload in payloads:
        key, metrics_dict, error, seconds = _execute_cell(payload)
        results.append((key, metrics_dict, error, seconds, dict(worker)))
    return results


def _spec_payload(key: str, spec: CellSpec) -> Tuple:
    return (key, spec.dataset, spec.pattern, spec.policy,
            spec.config, spec.scale, spec.verify)


# ----------------------------------------------------------------------
# the orchestrator
# ----------------------------------------------------------------------

class Orchestrator:
    """Executes deduplicated evaluation cells and renders experiments.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) runs everything
        in-process; higher values use a ``ProcessPoolExecutor`` and fall
        back to in-process execution if no pool can be created.
    cache:
        A :class:`ResultCache`, or None to run uncached.
    timeout:
        Per-cell wall-clock limit in seconds (pool mode only — a single
        process cannot preempt itself).  A timed-out cell is recorded as
        failed with ``TimeoutError``.
    retries:
        Extra attempts a failed cell is granted before it lands in the
        failure report.
    progress:
        Optional ``callable(str)`` receiving one line per cell event.
    """

    def __init__(
        self,
        jobs: int = 1,
        *,
        cache: Optional[ResultCache] = None,
        timeout: Optional[float] = None,
        retries: int = 1,
        progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.progress = progress

    # ------------------------------------------------------------------
    def _report(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    # ------------------------------------------------------------------
    def run_cells(
        self,
        specs: Dict[str, CellSpec],
        manifest: Optional[RunManifest] = None,
    ) -> Tuple[Dict[str, RunMetrics], Dict[str, dict]]:
        """Execute deduplicated cells; returns (results, failures) by key."""
        manifest = manifest if manifest is not None else RunManifest(jobs=self.jobs)
        results: Dict[str, RunMetrics] = {}
        failures: Dict[str, dict] = {}
        pending = self._readthrough(specs, manifest, results)
        attempts = {key: 0 for key in pending}
        wave = dict(pending)
        total = len(specs)
        arena: Optional[GraphArena] = None
        handles: Dict[Tuple[str, float], ArenaHandle] = {}
        guard = _InterruptGuard()
        try:
            with guard:
                if pending:
                    arena, handles = self._stage_graphs(pending, manifest)
                results, failures = self._run_waves(
                    wave, attempts, results, failures, manifest,
                    total=total, handles=handles,
                )
        except KeyboardInterrupt:
            name = signal.Signals(guard.signum).name if guard.signum else "SIGINT"
            self._report(f"{name}: draining — cancelling in-flight cells")
            for key, spec in wave.items():
                if key in results or key in failures:
                    continue
                failures[key] = {
                    "type": "Interrupted",
                    "message": f"sweep interrupted by {name}",
                    "traceback": "",
                }
                manifest.cells.append(
                    CellOutcome(key, spec.label(), "failed",
                                0.0, attempts.get(key, 0), failures[key])
                )
            raise
        finally:
            # Segments must never outlive the sweep — success, cell
            # failure, timeout, a broken pool or an interrupt all land
            # here before the exception (if any) propagates.
            if arena is not None:
                arena.close()
        return results, failures

    def _readthrough(
        self,
        specs: Dict[str, CellSpec],
        manifest: RunManifest,
        results: Dict[str, RunMetrics],
    ) -> Dict[str, CellSpec]:
        """Satisfy cells from the persistent cache; returns the rest.

        Shared by the batch and distributed paths so both record cache
        hits identically (the byte-identity tests compare the outcome).
        """
        pending: Dict[str, CellSpec] = {}
        for key, spec in specs.items():
            entry = self.cache.get(key) if self.cache is not None else None
            if entry is not None:
                results[key] = entry.metrics
                manifest.cells.append(
                    CellOutcome(key, spec.label(), "cached", entry.seconds)
                )
                self._report(f"[cache hit] {spec.label()}")
            else:
                pending[key] = spec
        return pending

    def _run_waves(
        self,
        wave: Dict[str, CellSpec],
        attempts: Dict[str, int],
        results: Dict[str, RunMetrics],
        failures: Dict[str, dict],
        manifest: RunManifest,
        *,
        total: int,
        handles: Dict[Tuple[str, float], ArenaHandle],
    ) -> Tuple[Dict[str, RunMetrics], Dict[str, dict]]:
        """Retry loop over waves of pending cells (in-place updates)."""
        while wave:
            outcomes = self._run_wave(
                wave, done=len(results), total=total, handles=handles
            )
            next_wave: Dict[str, CellSpec] = {}
            for key, (metrics, error, seconds, worker) in outcomes.items():
                attempts[key] += 1
                spec = wave[key]
                if metrics is not None:
                    results[key] = metrics
                    manifest.cells.append(
                        CellOutcome(key, spec.label(), "computed",
                                    seconds, attempts[key], worker=worker)
                    )
                    if self.cache is not None:
                        self.cache.put(spec, key, metrics, seconds)
                elif attempts[key] <= self.retries:
                    self._report(
                        f"[retry {attempts[key]}/{self.retries}] {spec.label()}: "
                        f"{(error or {}).get('type', 'Error')}"
                    )
                    next_wave[key] = spec
                else:
                    failures[key] = error or {}
                    manifest.cells.append(
                        CellOutcome(key, spec.label(), "failed",
                                    seconds, attempts[key], error, worker)
                    )
            wave = next_wave
        return results, failures

    # ------------------------------------------------------------------
    def _stage_graphs(
        self, pending: Dict[str, CellSpec], manifest: RunManifest
    ) -> Tuple[Optional[GraphArena], Dict[Tuple[str, float], ArenaHandle]]:
        """Materialize every distinct pending graph once, in the parent.

        Graphs land in the process-local dataset memo (so the serial
        path and forked workers inherit them) and — when a pool will be
        used and shared memory works here — in a :class:`GraphArena`
        whose handles workers attach to instead of rebuilding.  Staging
        is best-effort: a dataset that fails to build is recorded and
        left for its cells to report properly.
        """
        from ..graph.datasets import load_dataset_with_source

        combos: Dict[Tuple[str, float], None] = {}
        for spec in pending.values():
            combos.setdefault(graph_key(spec), None)
        use_arena = (
            self.jobs > 1 and len(pending) > 1
            and arena_enabled() and GraphArena.available()
        )
        arena = GraphArena() if use_arena else None
        handles: Dict[Tuple[str, float], ArenaHandle] = {}
        try:
            for code, scale in combos:
                start = time.perf_counter()
                record: Dict[str, object] = {"dataset": code, "scale": scale}
                try:
                    graph, source = load_dataset_with_source(code, scale=scale)
                    record["source"] = source
                    record["vertices"] = graph.num_vertices
                    record["edges"] = graph.num_edges
                    if arena is not None:
                        handle = arena.stage(code, scale, graph)
                        handles[(code, scale)] = handle
                        record["arena"] = handle.shm_name
                except Exception as exc:
                    record["source"] = "error"
                    record["error"] = f"{type(exc).__name__}: {exc}"
                record["seconds"] = round(time.perf_counter() - start, 6)
                manifest.staging.append(record)
                self._report(
                    f"[stage] {code}@{scale}: {record['source']} "
                    f"({record['seconds']:.2f}s)"
                )
        except BaseException:
            if arena is not None:
                arena.close()
            raise
        return arena, handles

    # ------------------------------------------------------------------
    def _group_cells(
        self,
        wave: Dict[str, CellSpec],
        handles: Dict[Tuple[str, float], ArenaHandle],
    ) -> List[CellGroup]:
        """Group a wave by shared graph and reference count.

        Cells with the same ``(dataset, pattern, scale)`` run in one
        worker task so the graph is materialized and the reference
        count mined once per group instead of once per worker process.
        Largest groups are issued first to keep the pool's tail short.
        """
        grouped: Dict[Tuple[str, str, float], List[Tuple]] = {}
        for key, spec in wave.items():
            grouped.setdefault(group_key(spec), []).append(
                _spec_payload(key, spec)
            )
        ordered = sorted(grouped.items(), key=lambda item: -len(item[1]))
        return [
            (tuple(payloads), handles.get((dataset, scale)))
            for (dataset, _pattern, scale), payloads in ordered
        ]

    # ------------------------------------------------------------------
    def _run_wave(
        self,
        wave: Dict[str, CellSpec],
        *,
        done: int,
        total: int,
        handles: Optional[Dict[Tuple[str, float], ArenaHandle]] = None,
    ) -> Dict[str, Tuple[Optional[RunMetrics], Optional[dict], float, Optional[dict]]]:
        groups = self._group_cells(wave, handles or {})
        if self.jobs > 1 and len(groups) > 1:
            try:
                return self._run_wave_pool(groups, wave, done=done, total=total)
            except (OSError, ImportError, NotImplementedError, PermissionError) as exc:
                self._report(
                    f"process pool unavailable ({type(exc).__name__}: {exc}); "
                    "falling back to in-process execution"
                )
        return self._run_wave_serial(groups, wave, done=done, total=total)

    def _run_wave_serial(self, groups, wave, *, done, total):
        outcomes = {}
        for group in groups:
            for key, metrics_dict, error, seconds, worker in _execute_cell_group(group):
                metrics = RunMetrics.from_dict(metrics_dict) if metrics_dict else None
                outcomes[key] = (metrics, error, seconds, worker)
                done += 1 if metrics is not None else 0
                self._progress_line(wave[key], metrics is not None, seconds, done, total)
        return outcomes

    def _run_wave_pool(self, groups, wave, *, done, total):
        outcomes = {}
        context = None
        if "fork" in multiprocessing.get_all_start_methods():
            # fork inherits sys.path and loaded modules — workers start
            # fast and find `repro` regardless of how it was imported.
            context = multiprocessing.get_context("fork")
        staged = tuple(h for _, h in groups if h is not None)
        executor = ProcessPoolExecutor(
            max_workers=min(self.jobs, len(groups)),
            mp_context=context,
            # Eagerly attach every staged graph; failures inside the
            # initializer are swallowed (workers fall back per group).
            initializer=worker_init if staged else None,
            initargs=(staged,) if staged else (),
        )
        abandon = False
        try:
            futures = {
                executor.submit(_execute_cell_group, group): group
                for group in groups
            }
            for future, group in futures.items():
                payloads, _handle = group
                keys = [payload[0] for payload in payloads]
                # The whole group shares one future, so its budget is
                # one per-cell timeout per member.
                budget = self.timeout * len(keys) if self.timeout else None
                try:
                    group_results = future.result(timeout=budget)
                except FutureTimeoutError:
                    future.cancel()
                    abandon = True
                    error = {
                        "type": "TimeoutError",
                        "message": f"cell group exceeded {budget:.0f}s",
                        "traceback": "",
                    }
                    group_results = [
                        (key, None, error, float(self.timeout or 0.0), None)
                        for key in keys
                    ]
                except Exception as exc:  # e.g. BrokenProcessPool
                    error = {
                        "type": type(exc).__name__,
                        "message": str(exc),
                        "traceback": "",
                    }
                    group_results = [(key, None, error, 0.0, None) for key in keys]
                for key, metrics_dict, error, seconds, worker in group_results:
                    metrics = (
                        RunMetrics.from_dict(metrics_dict) if metrics_dict else None
                    )
                    outcomes[key] = (metrics, error, seconds, worker)
                    done += 1 if metrics is not None else 0
                    self._progress_line(
                        wave[key], metrics is not None, seconds, done, total
                    )
        except BaseException:
            # Interrupted (or pool machinery blew up): never wait on
            # in-flight workers — cancel what's queued and unwind so the
            # arena cleanup above still runs promptly.
            abandon = True
            raise
        finally:
            # A hung worker must not block the sweep: abandon it and let
            # process teardown reap it.
            executor.shutdown(wait=not abandon, cancel_futures=True)
        return outcomes

    def _progress_line(self, spec, ok, seconds, done, total):
        status = "ok" if ok else "FAILED"
        self._report(f"[{done}/{total}] {spec.label()} {status} ({seconds:.2f}s)")

    # ------------------------------------------------------------------
    def run_experiments(
        self,
        names: Sequence[str],
        *,
        scale: Optional[float] = None,
        overrides: Optional[Dict[str, dict]] = None,
    ) -> ExperimentRun:
        """Plan, execute and render ``names``; never raises per-cell errors.

        ``overrides`` maps an experiment name to extra keyword arguments
        for its entry point (tests use it to shrink grids).
        """
        from ..experiments import runner

        start = time.perf_counter()
        manifest = RunManifest(jobs=self.jobs)
        run = ExperimentRun(names=list(names), manifest=manifest)

        specs: Dict[str, CellSpec] = {}
        per_experiment = overrides or {}
        for name in names:
            for key, spec in plan_experiment(
                name, scale, per_experiment.get(name)
            ).items():
                specs.setdefault(key, spec)
        self._report(
            f"planned {len(specs)} unique cells across {len(names)} experiment(s)"
        )

        results, failures = self.run_cells(specs, manifest)

        def replay(*, dataset, pattern, policy, config, scale, verify):
            key = cell_key(CellSpec(dataset, pattern, policy, scale, config, verify))
            if key in results:
                return results[key]
            if key in failures:
                spec = CellSpec(dataset, pattern, policy, scale, config, verify)
                raise CellExecutionError(spec.label(), failures[key])
            return None  # unplanned cell: compute inline

        previous = runner.set_cell_hook(replay)
        try:
            for name in names:
                try:
                    result = _call_experiment(name, scale, per_experiment.get(name))
                    run.results[name] = result
                    run.rendered[name] = result.render()
                    manifest.experiments.append(ExperimentOutcome(name, "ok"))
                except Exception as exc:
                    manifest.experiments.append(
                        ExperimentOutcome(
                            name, "failed", f"{type(exc).__name__}: {exc}"
                        )
                    )
                    self._report(f"experiment {name} failed: {exc}")
        finally:
            runner.set_cell_hook(previous)

        manifest.wall_seconds = time.perf_counter() - start
        if self.cache is not None:
            try:
                manifest.save(self.cache.root / "last-run.json")
            except OSError:
                pass
        return run


# ----------------------------------------------------------------------
# standing cache attachment (benchmark sessions)
# ----------------------------------------------------------------------

def attach_persistent_cache(
    cache: Optional[ResultCache] = None,
) -> Callable[[], None]:
    """Route every ``run_cell`` through the on-disk cache; returns a detach.

    Used by ``benchmarks/conftest.py``: the first benchmark session
    pays the simulations and fills ``.repro-cache/``; later sessions
    (and ``repro experiment`` invocations sharing the directory) replay
    them.  Honors ``REPRO_CACHE=0`` by attaching nothing.
    """
    from ..experiments import runner
    from .cache import cache_enabled

    if cache is None:
        if not cache_enabled():
            return lambda: None
        cache = ResultCache()
    memo: Dict[str, RunMetrics] = {}

    def hook(*, dataset, pattern, policy, config, scale, verify):
        spec = CellSpec(dataset, pattern, policy, scale, config, verify)
        key = cell_key(spec)
        if key in memo:
            return memo[key]
        entry = cache.get(key)
        if entry is not None:
            memo[key] = entry.metrics
            return entry.metrics
        start = time.perf_counter()
        metrics = runner.simulate_cell(
            dataset, pattern, policy, config=config, scale=scale, verify=verify
        )
        cache.put(spec, key, metrics, time.perf_counter() - start)
        memo[key] = metrics
        return metrics

    previous = runner.set_cell_hook(hook)

    def detach() -> None:
        runner.set_cell_hook(previous)

    return detach
