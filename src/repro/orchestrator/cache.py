"""Persistent content-addressed result cache (``.repro-cache/``).

Layout: one JSON file per cell under a two-hex-character shard
directory, ``<root>/<key[:2]>/<key>.json``, each holding the cell
coordinates, the measured wall seconds, and the serialized
:class:`~repro.sim.metrics.RunMetrics`.  Writes go through a temp file
plus :func:`os.replace`, so concurrent writers (pool workers, parallel
benchmark sessions) can never leave a torn entry; corrupt or
unreadable files are treated as misses and removed.

Environment knobs:

* ``REPRO_CACHE=0`` disables caching entirely (every consult misses,
  nothing is written);
* ``REPRO_CACHE_DIR`` relocates the default root (default:
  ``.repro-cache`` under the current working directory).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from ..ioutil import atomic_write_json
from ..sim.metrics import RunMetrics
from .cells import CACHE_SCHEMA, CellSpec, code_salt

DEFAULT_CACHE_DIR = ".repro-cache"


def cache_enabled() -> bool:
    """Whether persistent caching is globally enabled (``REPRO_CACHE``)."""
    return os.environ.get("REPRO_CACHE", "1").lower() not in ("0", "false", "off")


def default_cache_root() -> Path:
    """The cache directory (``REPRO_CACHE_DIR`` or ``.repro-cache``)."""
    return Path(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))


@dataclass
class CacheEntry:
    """One loaded cache record."""

    key: str
    metrics: RunMetrics
    seconds: float
    cell: dict


@dataclass
class CacheInfo:
    """Aggregate cache statistics for ``repro cache info``."""

    root: str
    entries: int
    bytes: int
    salt: str

    def render(self) -> str:
        return (
            f"cache root: {self.root}\n"
            f"entries:    {self.entries}\n"
            f"size:       {self.bytes} bytes\n"
            f"code salt:  {self.salt}"
        )


class ResultCache:
    """On-disk RunMetrics store keyed by :func:`~repro.orchestrator.cells.cell_key`."""

    def __init__(self, root: Union[str, os.PathLike, None] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        """Shard path of one entry."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[CacheEntry]:
        """Load one entry, or None on miss/corruption (corrupt = removed)."""
        path = self.path_for(key)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            return CacheEntry(
                key=key,
                metrics=RunMetrics.from_dict(data["metrics"]),
                seconds=float(data.get("seconds", 0.0)),
                cell=dict(data.get("cell", {})),
            )
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError):
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(self, spec: CellSpec, key: str, metrics: RunMetrics, seconds: float) -> None:
        """Atomically persist one result (racing writers cannot tear it)."""
        payload = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "salt": code_salt(),
            "cell": spec.coordinates(),
            "seconds": seconds,
            "metrics": metrics.to_dict(),
        }
        atomic_write_json(self.path_for(key), payload)

    # ------------------------------------------------------------------
    def _entry_paths(self):
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            # Entries live only in two-hex shard directories; anything
            # else (manifests, user files) is left alone.
            if shard.is_dir() and len(shard.name) == 2:
                yield from sorted(shard.glob("*.json"))

    def info(self) -> CacheInfo:
        """Entry count and on-disk size."""
        entries = 0
        size = 0
        for path in self._entry_paths():
            entries += 1
            try:
                size += path.stat().st_size
            except OSError:
                pass
        return CacheInfo(
            root=str(self.root), entries=entries, bytes=size, salt=code_salt()
        )

    def clear(self) -> int:
        """Remove every entry; returns how many were removed."""
        removed = 0
        for path in list(self._entry_paths()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for shard in list(self.root.iterdir()) if self.root.is_dir() else []:
            if shard.is_dir() and len(shard.name) == 2:
                try:
                    shard.rmdir()
                except OSError:
                    pass
        return removed
