"""Evaluation-cell identity: specs and content-addressed cache keys.

One **cell** is the atomic unit of experiment work: simulate
``(dataset, pattern, policy)`` at one scale under one
:class:`~repro.sim.config.SimConfig`.  Cells are value objects — two
figures that loop over the same grid produce *equal* specs, which is
what lets the scheduler deduplicate work across an invocation and the
cache deduplicate it across processes.

The cache key is a SHA-256 over a canonical JSON encoding of every
input that determines the result:

* the cell coordinates (dataset, scale, pattern, policy, verify flag),
* every ``SimConfig`` field by name (so adding a knob automatically
  widens the key), and
* a **code-version salt** — a digest of the source of the packages that
  define simulation semantics (``sim``, ``core``, ``mining``,
  ``patterns``, ``graph`` and the runner).  Editing any of them
  invalidates every cached result, so stale metrics cannot survive a
  behavioural change.  ``REPRO_CACHE_SALT`` overrides the salt for
  tests or pinned deployments.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

from ..sim.config import SimConfig

#: Bump when the cache entry format changes; part of the key, so old
#: entries simply become misses instead of needing a migration.
CACHE_SCHEMA = 1

#: Package subtrees (or single modules) whose source feeds the salt.
SALT_SOURCES = ("sim", "core", "mining", "patterns", "graph", "experiments/runner.py")


@dataclass(frozen=True)
class CellSpec:
    """One evaluation cell, fully resolved (no None defaults left)."""

    dataset: str
    pattern: str
    policy: str
    scale: float
    config: SimConfig
    verify: bool = True

    def label(self) -> str:
        """Short human-readable identifier for progress/failure lines.

        The config fingerprint distinguishes cells that differ only in
        SimConfig (width sweeps, ablation overrides).
        """
        fields = {
            f.name: getattr(self.config, f.name)
            for f in dataclasses.fields(self.config)
        }
        fingerprint = hashlib.sha256(
            json.dumps(fields, sort_keys=True, default=repr).encode()
        ).hexdigest()[:6]
        return (
            f"{self.dataset}-{self.pattern}/{self.policy}"
            f"@{self.scale:g}+cfg:{fingerprint}"
        )

    def coordinates(self) -> dict:
        """The non-config coordinates (manifest/cache metadata)."""
        return {
            "dataset": self.dataset,
            "pattern": self.pattern,
            "policy": self.policy,
            "scale": self.scale,
            "verify": self.verify,
        }


def group_key(spec: CellSpec) -> "tuple[str, str, float]":
    """Placement group of one cell: ``(dataset, pattern, scale)``.

    Cells in one group share a staged graph *and* a mined reference
    count, so a worker that runs the whole group materializes both
    exactly once.  The batch scheduler's per-process grouping and the
    distributed scheduler's locality-aware placement both key on this.
    """
    return (spec.dataset, spec.pattern, float(spec.scale))


def graph_key(spec: CellSpec) -> "tuple[str, float]":
    """The staged-graph identity of one cell: ``(dataset, scale)``."""
    return (spec.dataset, float(spec.scale))


@lru_cache(maxsize=1)
def code_salt() -> str:
    """Digest of the simulation-defining source (or ``REPRO_CACHE_SALT``)."""
    env = os.environ.get("REPRO_CACHE_SALT")
    if env:
        return env
    digest = hashlib.sha256()
    package_root = Path(__file__).resolve().parents[1]  # src/repro
    for rel in SALT_SOURCES:
        path = package_root / rel
        sources = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for source in sources:
            digest.update(str(source.relative_to(package_root)).encode())
            digest.update(source.read_bytes())
    digest.update(str(CACHE_SCHEMA).encode())
    return digest.hexdigest()[:16]


def cell_key(spec: CellSpec) -> str:
    """Stable content-addressed key for one cell (hex SHA-256)."""
    payload = {
        "dataset": spec.dataset,
        "pattern": spec.pattern,
        "policy": spec.policy,
        # repr() keeps full float precision; json would round-trip too,
        # but repr makes the canonical form explicit.
        "scale": repr(spec.scale),
        "verify": spec.verify,
        "config": {
            f.name: getattr(spec.config, f.name)
            for f in dataclasses.fields(spec.config)
        },
        "salt": code_salt(),
    }
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
