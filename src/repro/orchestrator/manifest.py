"""Run manifests: per-cell outcomes, failure report, progress summary.

The manifest is the orchestrator's audit trail for one ``experiment``
invocation: every deduplicated cell appears exactly once with its
status (``cached`` / ``computed`` / ``failed``), attempt count and wall
seconds, and every requested experiment appears with its render status.
A failed cell does not abort the sweep — it is recorded here, the
experiments that need it are marked failed, and everything else
completes (the ISSUE's "structured failure report" semantics).

The *serial estimate* sums each cell's measured execution time (cached
cells contribute the seconds recorded when they were first computed),
so ``speedup_estimate`` compares the actual wall time against what a
one-cell-at-a-time cold run would have cost.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Union

from ..ioutil import atomic_write_json


@dataclass
class CellOutcome:
    """What happened to one deduplicated cell."""

    key: str
    label: str
    status: str                # "cached" | "computed" | "failed"
    seconds: float = 0.0
    attempts: int = 0
    error: Optional[Dict[str, str]] = None
    #: Execution context of the last attempt: worker ``pid``, how the
    #: dataset was materialized (``dataset_source`` is one of ``arena`` /
    #: ``memo`` / ``binary-cache`` / ``rebuilt``) and the graph
    #: attach/build time in ``graph_seconds``.  None for cached cells.
    worker: Optional[Dict[str, object]] = None


@dataclass
class ExperimentOutcome:
    """Render status of one requested experiment."""

    name: str
    status: str                # "ok" | "failed"
    error: Optional[str] = None


@dataclass
class RunManifest:
    """Aggregate record of one orchestrated invocation."""

    jobs: int = 1
    cells: List[CellOutcome] = field(default_factory=list)
    experiments: List[ExperimentOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: One record per distinct ``(dataset, scale)`` staged before the
    #: waves ran: how the parent materialized it, how long that took,
    #: and the shared-memory segment name when the arena was used.
    staging: List[Dict[str, object]] = field(default_factory=list)
    #: Distributed runs only: one record per worker that registered —
    #: name, pid, lifecycle outcome (``drained`` / ``dead``), cells
    #: completed, and the death cause for workers that did not survive.
    #: Empty for serial/pool runs, so their manifests are unchanged.
    workers: List[Dict[str, object]] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def total(self) -> int:
        return len(self.cells)

    @property
    def cached(self) -> int:
        return sum(1 for c in self.cells if c.status == "cached")

    @property
    def computed(self) -> int:
        return sum(1 for c in self.cells if c.status == "computed")

    @property
    def failed(self) -> int:
        return sum(1 for c in self.cells if c.status == "failed")

    @property
    def done(self) -> int:
        return self.cached + self.computed

    @property
    def serial_estimate_seconds(self) -> float:
        return sum(c.seconds for c in self.cells if c.status != "failed")

    def speedup_estimate(self) -> float:
        """Serial-cost / wall-time ratio (cache hits count as savings)."""
        if self.wall_seconds <= 0:
            return 1.0
        return self.serial_estimate_seconds / self.wall_seconds

    def failures(self) -> List[CellOutcome]:
        """The structured failure report: every failed cell."""
        return [c for c in self.cells if c.status == "failed"]

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Human-readable (and CI-greppable) summary block."""
        lines = [
            f"cells: {self.total} total — {self.cached} cached, "
            f"{self.computed} computed, {self.failed} failed (jobs={self.jobs})",
            f"wall time {self.wall_seconds:.2f}s, serial estimate "
            f"{self.serial_estimate_seconds:.2f}s, speedup estimate "
            f"{self.speedup_estimate():.1f}x",
        ]
        if self.staging:
            staged = sum(1 for s in self.staging if "arena" in s)
            sources = ", ".join(
                f"{s.get('dataset')}@{s.get('scale')}:{s.get('source', '?')}"
                for s in self.staging
            )
            lines.append(
                f"staged {len(self.staging)} graph(s), {staged} in shared "
                f"memory — {sources}"
            )
        if self.workers:
            survived = sum(1 for w in self.workers if w.get("state") != "dead")
            roster = ", ".join(
                f"{w.get('name', '?')}:{w.get('completed', 0)} cells"
                + (f" [{w.get('backend')}]" if w.get("backend") else "")
                + (
                    f" [fallback: {w.get('backend_fallback')}]"
                    if w.get("backend_fallback")
                    else ""
                )
                + (f" ({w.get('cause')})" if w.get("state") == "dead" else "")
                for w in self.workers
            )
            lines.append(
                f"workers: {len(self.workers)} registered, {survived} "
                f"survived — {roster}"
            )
        for cell in self.failures():
            error = cell.error or {}
            where = ""
            if cell.worker:
                where = (
                    f" [pid {cell.worker.get('pid', '?')}, dataset via "
                    f"{cell.worker.get('dataset_source', '?')}]"
                )
            if cell.error and cell.error.get("domains"):
                where += f" [failure domains: {', '.join(cell.error['domains'])}]"
            lines.append(
                f"FAILED {cell.label} after {cell.attempts} attempt(s){where}: "
                f"{error.get('type', 'Error')}: {error.get('message', '')}"
            )
        for exp in self.experiments:
            if exp.status != "ok":
                lines.append(f"FAILED experiment {exp.name}: {exp.error}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "jobs": self.jobs,
            "wall_seconds": self.wall_seconds,
            "serial_estimate_seconds": self.serial_estimate_seconds,
            "totals": {
                "total": self.total,
                "cached": self.cached,
                "computed": self.computed,
                "failed": self.failed,
            },
            "staging": [dict(s) for s in self.staging],
            "workers": [dict(w) for w in self.workers],
            "cells": [asdict(c) for c in self.cells],
            "experiments": [asdict(e) for e in self.experiments],
        }

    def save(self, path: Union[str, os.PathLike]) -> None:
        """Write the manifest as JSON, atomically (a concurrent reader —
        e.g. ``repro jobs`` polling ``last-run.json`` — never sees a
        partial file; parent directories are created)."""
        atomic_write_json(path, self.to_dict(), indent=2)
