"""Parallel experiment orchestration with a persistent result cache.

The subsystem that owns experiment execution (see docs/orchestrator.md):

* :mod:`~repro.orchestrator.cells` — cell specs and content-addressed
  cache keys (SimConfig fields + a code-version salt);
* :mod:`~repro.orchestrator.cache` — the on-disk ``.repro-cache/``
  store with atomic writes and corruption tolerance;
* :mod:`~repro.orchestrator.scheduler` — planning (record the cells an
  experiment needs), pooled execution with timeout/retry, and replayed
  rendering that is byte-identical to the serial path;
* :mod:`~repro.orchestrator.executor` — awaitable per-cell execution on
  a long-lived warm pool (the ``repro serve`` back end);
* :mod:`~repro.orchestrator.manifest` — per-cell outcomes, the failure
  report, and the wall-time/speedup summary.
"""

from .cache import (
    CacheEntry,
    CacheInfo,
    ResultCache,
    cache_enabled,
    default_cache_root,
)
from .cells import CACHE_SCHEMA, CellSpec, cell_key, code_salt
from .executor import PersistentCellExecutor
from .manifest import CellOutcome, ExperimentOutcome, RunManifest
from .scheduler import (
    PLANNABLE_EXPERIMENTS,
    CellExecutionError,
    ExperimentRun,
    Orchestrator,
    attach_persistent_cache,
    plan_experiment,
)

__all__ = [
    "CACHE_SCHEMA",
    "CacheEntry",
    "CacheInfo",
    "CellExecutionError",
    "CellOutcome",
    "CellSpec",
    "ExperimentOutcome",
    "ExperimentRun",
    "Orchestrator",
    "PLANNABLE_EXPERIMENTS",
    "PersistentCellExecutor",
    "ResultCache",
    "RunManifest",
    "attach_persistent_cache",
    "cache_enabled",
    "cell_key",
    "code_salt",
    "default_cache_root",
    "plan_experiment",
]
