"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors such
as ``TypeError`` raised by misuse of the Python API itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """Raised for malformed graph inputs (bad edges, vertex ids, formats)."""


class PatternError(ReproError):
    """Raised for malformed patterns or impossible schedule requests."""


class ScheduleError(ReproError):
    """Raised when a matching schedule is invalid or cannot be generated."""


class SimulationError(ReproError):
    """Raised when the simulator reaches an inconsistent state.

    An inconsistent state always indicates a bug in a scheduling policy or
    in the simulator itself (e.g. a task completing twice, a token released
    that was never acquired), never a property of the workload, so this
    error is *not* meant to be caught and recovered from.
    """


class ConfigError(ReproError):
    """Raised for invalid simulator configuration values."""
