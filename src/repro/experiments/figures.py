"""Regeneration of the paper's evaluation figures (3, 9–14).

Every function runs the corresponding experiment and returns a
:class:`FigureResult` whose rows are the series the paper plots; the
benchmark harness prints them and EXPERIMENTS.md records paper-vs-
measured values.  Absolute cycle counts differ from the paper's
RTL-calibrated simulator — the claims under reproduction are the
*shapes*: who wins, by what factor, and where the crossovers are.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.config import SimConfig
from ..sim.metrics import RunMetrics, geomean
from .reporting import render_table
from .runner import eval_config, run_cell
from .workloads import evaluation_grid, patterns_for


@dataclass
class FigureResult:
    """Rows plus the rendered text of one regenerated figure."""

    name: str
    headers: List[str]
    rows: List[List[object]]
    summary: str = ""
    raw: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        """Aligned monospace rendering with the summary line appended."""
        text = render_table(self.headers, self.rows, title=self.name)
        if self.summary:
            text += "\n" + self.summary
        return text


def _width_config(width: int, **overrides) -> SimConfig:
    """Evaluation config with the task execution width swept.

    The paper ties the bunch size and per-depth token count to the
    execution width (§3.2.1/§3.2.3), so all three move together.
    """
    return eval_config(
        execution_width=width,
        bunch_entries=width,
        tokens_per_depth=width,
        **overrides,
    )


# ----------------------------------------------------------------------
# Figure 3: pseudo-DFS vs parallel-DFS motivation
# ----------------------------------------------------------------------

def figure3a(
    widths: Sequence[int] = (1, 2, 4, 8),
    dataset: str = "as",
    pattern: str = "4cl",
    *,
    scale: Optional[float] = None,
) -> FigureResult:
    """Figure 3(a): speedup + FU utilization vs execution width (as, 4cl).

    The paper's compute-bound motivation case: AstroPh's working set is
    fully cache-resident, so the figure isolates the barrier effect.
    The scaled run doubles the (scaled) L1 for the same reason — at the
    default scaled L1 the widest parallel-DFS config begins to thrash,
    which is Figure 3(b)'s story, not this one's.
    """
    rows = []
    base: Optional[float] = None
    l1_kb = eval_config().l1_kb * 2
    for width in widths:
        cfg = _width_config(width, l1_kb=l1_kb)
        pseudo = run_cell(dataset, pattern, "pseudo-dfs", config=cfg, scale=scale)
        pdfs = run_cell(dataset, pattern, "parallel-dfs", config=cfg, scale=scale)
        if base is None:
            base = pseudo.cycles
        rows.append(
            [
                width,
                round(base / pseudo.cycles, 2),
                f"{pseudo.iu_utilization:.1%}",
                round(base / pdfs.cycles, 2),
                f"{pdfs.iu_utilization:.1%}",
            ]
        )
    return FigureResult(
        name=f"Figure 3(a): {dataset}-{pattern}, speedup & FU util vs width",
        headers=["width", "pseudo-DFS speedup", "pseudo FU util",
                 "parallel-DFS speedup", "parallel FU util"],
        rows=rows,
        summary="Expected shape: parallel-DFS pulls ahead of pseudo-DFS as width grows.",
    )


def figure3b(
    widths: Sequence[int] = (1, 2, 4, 8),
    dataset: str = "yo",
    pattern: str = "tt_e",
    *,
    scale: Optional[float] = None,
) -> FigureResult:
    """Figure 3(b): speedup + L1 behaviour vs execution width (yo, tt).

    The paper plots the L1 hit rate; here the global hit rate is diluted
    by the task tree's hot one-line vertex fetches, so the figure also
    reports the *set-fetch average L1 latency* — the thrashing signal
    the conservative mode monitors — which is where parallel-DFS's
    locality collapse shows.
    """
    rows = []
    base: Optional[float] = None
    for width in widths:
        cfg = _width_config(width)
        pseudo = run_cell(dataset, pattern, "pseudo-dfs", config=cfg, scale=scale)
        pdfs = run_cell(dataset, pattern, "parallel-dfs", config=cfg, scale=scale)
        if base is None:
            base = pseudo.cycles
        rows.append(
            [
                width,
                round(base / pseudo.cycles, 2),
                f"{pseudo.l1_hit_rate:.1%}",
                round(pseudo.l1_avg_latency, 1),
                round(base / pdfs.cycles, 2),
                f"{pdfs.l1_hit_rate:.1%}",
                round(pdfs.l1_avg_latency, 1),
            ]
        )
    return FigureResult(
        name=f"Figure 3(b): {dataset}-{pattern}, speedup & L1 behaviour vs width",
        headers=["width", "pseudo speedup", "pseudo L1 hit", "pseudo set lat",
                 "parallel speedup", "parallel L1 hit", "parallel set lat"],
        rows=rows,
        summary=(
            "Expected shape: parallel-DFS's set-fetch latency blows up with "
            "width and its speedup falls behind pseudo-DFS."
        ),
    )


# ----------------------------------------------------------------------
# Figures 9 & 10: the headline scheduling comparison
# ----------------------------------------------------------------------

def figure9(
    *,
    scale: Optional[float] = None,
    grid: Optional[List[Tuple[str, str]]] = None,
) -> FigureResult:
    """Figure 9: Shogun vs FINGERS speedups, accelerator optimizations off."""
    cells = grid if grid is not None else evaluation_grid()
    rows = []
    speedups = []
    raw: Dict[str, object] = {}
    for dataset, pattern in cells:
        fingers = run_cell(dataset, pattern, "fingers", scale=scale)
        shogun = run_cell(dataset, pattern, "shogun", scale=scale)
        speedup = shogun.speedup_over(fingers)
        speedups.append(speedup)
        raw[f"{dataset}-{pattern}"] = speedup
        rows.append(
            [
                f"{dataset}-{pattern}",
                round(fingers.cycles),
                round(shogun.cycles),
                round(speedup, 2),
            ]
        )
    gm = geomean(speedups)
    return FigureResult(
        name="Figure 9: Shogun speedup over FINGERS (scheduling only)",
        headers=["case", "FINGERS cycles", "Shogun cycles", "speedup"],
        rows=rows,
        summary=(
            f"geomean speedup = {gm:.2f}x ({(gm - 1) * 100:+.0f}%); "
            f"max = {max(speedups):.2f}x; paper: +43% avg, up to +131%."
        ),
        raw={"speedups": raw, "geomean": gm},
    )


def figure10(
    *,
    scale: Optional[float] = None,
    grid: Optional[List[Tuple[str, str]]] = None,
) -> FigureResult:
    """Figure 10: Shogun average IU utilization rates per case."""
    cells = grid if grid is not None else evaluation_grid()
    rows = []
    raw: Dict[str, float] = {}
    for dataset, pattern in cells:
        shogun = run_cell(dataset, pattern, "shogun", scale=scale)
        raw[f"{dataset}-{pattern}"] = shogun.iu_utilization
        rows.append([f"{dataset}-{pattern}", f"{shogun.iu_utilization:.1%}"])
    return FigureResult(
        name="Figure 10: Shogun IU utilization rates",
        headers=["case", "IU utilization"],
        rows=rows,
        summary=(
            "Expected shape: clique patterns (4cl/5cl) highest; "
            "tt_e/dia_e lowest (little intersection work per task)."
        ),
        raw=raw,
    )


# ----------------------------------------------------------------------
# Figure 11: task-tree splitting (load balance)
# ----------------------------------------------------------------------

def figure11(
    dataset: str = "wi",
    *,
    num_pes: int = 20,
    scale: Optional[float] = None,
) -> FigureResult:
    """Figure 11: Shogun ± load balance on a 20-PE device (wi)."""
    rows = []
    improvements = []
    for pattern in patterns_for(dataset):
        base_cfg = eval_config(num_pes=num_pes)
        lb_cfg = eval_config(num_pes=num_pes, enable_splitting=True)
        fingers = run_cell(dataset, pattern, "fingers", config=base_cfg, scale=scale)
        plain = run_cell(dataset, pattern, "shogun", config=base_cfg, scale=scale)
        balanced = run_cell(dataset, pattern, "shogun", config=lb_cfg, scale=scale)
        gain = plain.cycles / balanced.cycles
        improvements.append(gain)
        rows.append(
            [
                pattern,
                round(plain.speedup_over(fingers), 2),
                round(balanced.speedup_over(fingers), 2),
                f"{(gain - 1) * 100:+.0f}%",
                balanced.partitions_sent,
            ]
        )
    gm = geomean(improvements)
    return FigureResult(
        name=f"Figure 11: task-tree splitting on {dataset}, {num_pes} PEs",
        headers=["pattern", "Shogun/FINGERS", "Shogun+LB/FINGERS",
                 "LB gain", "partitions"],
        rows=rows,
        summary=f"geomean load-balance gain = {(gm - 1) * 100:+.0f}%; paper: +24%.",
        raw={"gain_geomean": gm},
    )


# ----------------------------------------------------------------------
# Figure 12: search-tree merging
# ----------------------------------------------------------------------

def figure12(
    *,
    scale: Optional[float] = None,
    grid: Optional[List[Tuple[str, str]]] = None,
) -> FigureResult:
    """Figure 12: Shogun ± search-tree merging, vs FINGERS."""
    cells = grid if grid is not None else evaluation_grid()
    rows = []
    merged_speedups = []
    plain_speedups = []
    for dataset, pattern in cells:
        fingers = run_cell(dataset, pattern, "fingers", scale=scale)
        plain = run_cell(dataset, pattern, "shogun", scale=scale)
        merged = run_cell(
            dataset, pattern, "shogun",
            config=eval_config(enable_merging=True), scale=scale,
        )
        plain_speedups.append(plain.speedup_over(fingers))
        merged_speedups.append(merged.speedup_over(fingers))
        rows.append(
            [
                f"{dataset}-{pattern}",
                round(plain.speedup_over(fingers), 2),
                round(merged.speedup_over(fingers), 2),
                f"{(plain.cycles / merged.cycles - 1) * 100:+.0f}%",
                merged.merges,
                merged.quiesces,
            ]
        )
    gm_plain = geomean(plain_speedups)
    gm_merged = geomean(merged_speedups)
    return FigureResult(
        name="Figure 12: search-tree merging",
        headers=["case", "Shogun/FINGERS", "+merging/FINGERS", "merge gain",
                 "merges", "quiesces"],
        rows=rows,
        summary=(
            f"geomean: scheduling only {gm_plain:.2f}x, with merging "
            f"{gm_merged:.2f}x; paper overall (all optimizations): +63%."
        ),
        raw={"geomean_plain": gm_plain, "geomean_merged": gm_merged},
    )


# ----------------------------------------------------------------------
# Figure 13: sensitivity studies
# ----------------------------------------------------------------------

def figure13a(
    widths: Sequence[int] = (2, 4, 8),
    cells: Sequence[Tuple[str, str]] = (("as", "4cl"), ("yo", "4cl"), ("wi", "4cyc_e")),
    *,
    scale: Optional[float] = None,
) -> FigureResult:
    """Figure 13(a): Shogun vs FINGERS as the execution width scales."""
    rows = []
    for dataset, pattern in cells:
        base: Optional[float] = None
        for width in widths:
            cfg = _width_config(width)
            fingers = run_cell(dataset, pattern, "fingers", config=cfg, scale=scale)
            shogun = run_cell(dataset, pattern, "shogun", config=cfg, scale=scale)
            if base is None:
                base = fingers.cycles
            rows.append(
                [
                    f"{dataset}-{pattern}",
                    width,
                    round(base / fingers.cycles, 2),
                    round(base / shogun.cycles, 2),
                ]
            )
    return FigureResult(
        name="Figure 13(a): scalability with task execution width",
        headers=["case", "width", "FINGERS speedup", "Shogun speedup"],
        rows=rows,
        summary="Expected shape: Shogun scales better with width than FINGERS.",
    )


def figure13b(
    bunch_counts: Sequence[int] = (2, 4, 8),
    cells: Sequence[Tuple[str, str]] = (("as", "4cl"), ("yo", "4cl"), ("wi", "4cyc_e")),
    *,
    scale: Optional[float] = None,
) -> FigureResult:
    """Figure 13(b): Shogun vs the number of bunches per depth."""
    rows = []
    for dataset, pattern in cells:
        base: Optional[float] = None
        for bunches in bunch_counts:
            cfg = eval_config(bunches_per_depth=bunches)
            shogun = run_cell(dataset, pattern, "shogun", config=cfg, scale=scale)
            if base is None:
                base = shogun.cycles
            rows.append([f"{dataset}-{pattern}", bunches, round(base / shogun.cycles, 2)])
    return FigureResult(
        name="Figure 13(b): sensitivity to bunches per depth",
        headers=["case", "bunches/depth", "relative performance"],
        rows=rows,
        summary="Expected shape: near-flat — Shogun is insensitive to bunch count (<10%).",
    )


# ----------------------------------------------------------------------
# Figure 14: locality monitoring necessity
# ----------------------------------------------------------------------

def figure14(
    cells: Sequence[Tuple[str, str]] = (("yo", "tt_e"), ("as", "4cl"), ("yo", "4cyc_e")),
    *,
    scale: Optional[float] = None,
) -> FigureResult:
    """Figure 14: Shogun vs FINGERS vs parallel-DFS with enlarged L1s.

    The paper conservatively enlarges the L1 to help parallel-DFS:
    (a) width 2 with a 2x L1, (b) width 8 with an 8x L1 (64 KB / 256 KB
    against the 32 KB base; here the scaled analogs).  Shogun's
    conservative mode should match or beat parallel-DFS everywhere,
    while parallel-DFS still collapses on thrash-prone cases.
    """
    base_l1 = eval_config().l1_kb
    configs = [
        ("width 2, L1 x2", _width_config(2, l1_kb=base_l1 * 2)),
        ("width 8, L1 x8", _width_config(8, l1_kb=base_l1 * 8)),
    ]
    rows = []
    for label, cfg in configs:
        for dataset, pattern in cells:
            fingers = run_cell(dataset, pattern, "fingers", config=cfg, scale=scale)
            shogun = run_cell(dataset, pattern, "shogun", config=cfg, scale=scale)
            pdfs = run_cell(dataset, pattern, "parallel-dfs", config=cfg, scale=scale)
            rows.append(
                [
                    label,
                    f"{dataset}-{pattern}",
                    1.0,
                    round(fingers.cycles / shogun.cycles, 2),
                    round(fingers.cycles / pdfs.cycles, 2),
                    f"{pdfs.l1_hit_rate:.1%}",
                ]
            )
    return FigureResult(
        name="Figure 14: locality monitoring (normalized to FINGERS)",
        headers=["config", "case", "FINGERS", "Shogun", "parallel-DFS",
                 "parallel-DFS L1 hit"],
        rows=rows,
        summary=(
            "Expected shape: Shogun >= FINGERS everywhere; parallel-DFS "
            "competitive only where no thrashing occurs."
        ),
    )
