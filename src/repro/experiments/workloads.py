"""The evaluation grid: datasets × patterns with the paper's exclusions.

§5.1.2: six datasets (wi, as, yo, pa, lj, or) × nine pattern variants
(tc, tt_e, tt_v, 4cl, 5cl, dia_e, dia_v, 4cyc_e, 4cyc_v).  "Experiments
that take longer than 4 days are excluded (lj-5cl, or-4cl, or-5cl,
or-4cyc)" — interpreting or-4cyc as both induced variants gives 49
remaining cells; the paper reports 47, but the exact two further
omissions are not recoverable from the text, so the harness runs all 49
and notes the discrepancy in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import List, Tuple

from ..graph.datasets import DATASET_CODES
from ..patterns.graphpi import BENCHMARK_CODES

#: (dataset, pattern) cells the paper excludes for runtime.
EXCLUDED: Tuple[Tuple[str, str], ...] = (
    ("lj", "5cl"),
    ("or", "4cl"),
    ("or", "5cl"),
    ("or", "4cyc_e"),
    ("or", "4cyc_v"),
)


def evaluation_grid() -> List[Tuple[str, str]]:
    """All (dataset, pattern) cells of the Figure 9/10 evaluation."""
    grid = []
    for pattern in BENCHMARK_CODES:
        for dataset in DATASET_CODES:
            if (dataset, pattern) not in EXCLUDED:
                grid.append((dataset, pattern))
    return grid


def patterns_for(dataset: str) -> List[str]:
    """Patterns evaluated on one dataset (exclusions applied)."""
    return [p for p in BENCHMARK_CODES if (dataset, p) not in EXCLUDED]
