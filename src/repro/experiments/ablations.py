"""Ablation studies on the design choices DESIGN.md calls out.

Beyond the paper's own figures, three ablations isolate individual
mechanisms:

* :func:`ablation_conservative_mode` — Shogun with the locality monitor
  disabled / adaptive / always-on (the §3.2.3 design choice, extending
  Figure 14's comparison to Shogun itself);
* :func:`ablation_tokens` — per-depth address-token count (the §3.2.3
  memory-footprint knob: fewer tokens bound live intermediate data at
  the cost of scheduling stalls);
* :func:`ablation_pipeline_throughput` — the paper's stated future work:
  for tiny-task-dominated workloads (wi/as with tt_e/dia_e) "most of the
  runtime [is spent] in PE pipelines, e.g., accessing the task tree
  entries"; raising the pipeline unit throughput quantifies the headroom.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .figures import FigureResult
from .runner import eval_config, run_cell


def ablation_conservative_mode(
    cells: Sequence[Tuple[str, str]] = (("yo", "tt_e"), ("as", "4cl")),
    *,
    l1_kb: int = 2,
    scale: Optional[float] = None,
) -> FigureResult:
    """Shogun with the monitor off / adaptive / forced conservative.

    Run with a deliberately small L1 so locality actually matters; the
    adaptive monitor should sit between the two fixed modes (or match
    the better one).
    """
    rows: List[List[object]] = []
    for dataset, pattern in cells:
        for label, override in (("off", False), ("adaptive", None), ("always", True)):
            config = eval_config(l1_kb=l1_kb, conservative_override=override)
            metrics = run_cell(dataset, pattern, "shogun", config=config, scale=scale)
            rows.append(
                [
                    f"{dataset}-{pattern}",
                    label,
                    round(metrics.cycles),
                    f"{metrics.l1_hit_rate:.1%}",
                    round(metrics.l1_avg_latency, 1),
                ]
            )
    return FigureResult(
        name=f"Ablation: conservative mode (L1 {l1_kb} KB)",
        headers=["case", "monitor", "cycles", "L1 hit", "L1 avg lat"],
        rows=rows,
        summary="Adaptive should track the better fixed mode per case.",
    )


def ablation_tokens(
    dataset: str = "wi",
    pattern: str = "4cl",
    token_counts: Sequence[int] = (1, 2, 4, 8),
    *,
    scale: Optional[float] = None,
) -> FigureResult:
    """Sensitivity to the per-depth address-token count.

    Tokens gate how many candidate sets per depth may live at once; the
    paper sets them equal to the execution width by default but allows
    reducing them to shrink the memory footprint.
    """
    rows: List[List[object]] = []
    base_cycles: Optional[float] = None
    for count in token_counts:
        config = eval_config(tokens_per_depth=count)
        metrics = run_cell(dataset, pattern, "shogun", config=config, scale=scale)
        if base_cycles is None:
            base_cycles = metrics.cycles
        rows.append(
            [
                count,
                round(metrics.cycles),
                round(base_cycles / metrics.cycles, 2),
                metrics.peak_footprint_bytes,
                sum(p.token_stalls for p in metrics.per_pe),
            ]
        )
    return FigureResult(
        name=f"Ablation: tokens per depth on {dataset}-{pattern}",
        headers=["tokens/depth", "cycles", "speedup vs 1", "peak footprint", "token stalls"],
        rows=rows,
        summary="More tokens buy parallelism at the cost of live intermediate data.",
    )


def ablation_pipeline_throughput(
    cells: Sequence[Tuple[str, str]] = (("wi", "tt_e"), ("as", "dia_e"), ("as", "4cl")),
    factors: Sequence[float] = (1.0, 2.0, 4.0),
    *,
    scale: Optional[float] = None,
) -> FigureResult:
    """The paper's future work: an optimized PE pipeline front end.

    wi/as with tt_e/dia_e generate masses of tiny tasks whose runtime is
    dominated by the fixed pipeline stages (decode, dispatch, spawn,
    task-tree accesses) rather than by FUs or memory; §5.2.1 leaves
    "optimizing the PE pipeline design" as future work.  A factor of
    ``f`` shortens every fixed stage by ``f`` and lets each unit accept
    ``f`` tasks per cycle.  Compute-dense cells (as-4cl) should barely
    move; tiny-task cells should gain substantially.
    """
    rows: List[List[object]] = []
    for dataset, pattern in cells:
        base: Optional[float] = None
        for factor in factors:
            config = eval_config(
                unit_tasks_per_cycle=factor,
                decode_cycles=max(1, round(2 / factor)),
                dispatch_cycles=max(1, round(2 / factor)),
                spawn_cycles=max(1, round(2 / factor)),
                leaf_cycles=max(1, round(2 / factor)),
                tree_access_cycles=max(0, round(1 / factor)),
            )
            metrics = run_cell(dataset, pattern, "shogun", config=config, scale=scale)
            if base is None:
                base = metrics.cycles
            rows.append(
                [
                    f"{dataset}-{pattern}",
                    factor,
                    round(metrics.cycles),
                    round(base / metrics.cycles, 2),
                    f"{metrics.iu_utilization:.1%}",
                ]
            )
    return FigureResult(
        name="Ablation: PE pipeline optimization factor (the paper's future work)",
        headers=["case", "pipeline factor", "cycles", "speedup", "IU util"],
        rows=rows,
        summary="Tiny-task workloads gain; compute-bound ones are insensitive.",
    )
