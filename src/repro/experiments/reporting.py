"""Plain-text table rendering for the experiment harness.

Every figure/table entry point prints rows in the same layout the paper
uses, so EXPERIMENTS.md can juxtapose paper values with measured ones
line by line.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Render an aligned monospace table."""
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.3f}"
    return str(cell)


def percent(value: float) -> str:
    """Format a ratio as a signed percentage improvement."""
    return f"{(value - 1.0) * 100:+.0f}%"
