"""Regeneration of the paper's tables (1, 2, 3, 4).

Table 1 is qualitative in the paper; here its entries are *derived from
measurements* — each scheme's memory footprint, locality, parallelism
and barrier idleness come from simulating one representative cell, so
the +/- grid is backed by numbers.  Tables 2 and 4 are fully
quantitative; Table 3 prints the active configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..graph.datasets import DATASET_CODES, get_spec
from ..graph.stats import compute_stats
from ..mining.engine import mine
from ..sim.config import SimConfig
from ..sim.metrics import RunMetrics
from .reporting import render_table
from .runner import eval_config, get_graph, get_schedule, run_cell

#: Scheme order of Table 1.
TABLE1_SCHEMES: Tuple[str, ...] = ("bfs", "dfs", "pseudo-dfs", "shogun")

#: Pattern order of Table 2 (GraphPi is edge-induced, §5.1.2).
TABLE2_PATTERNS: Tuple[str, ...] = ("tc", "tt_e", "4cl", "5cl", "dia_e", "4cyc_e")


@dataclass
class TableResult:
    """Rows plus the rendered text of one regenerated table."""

    name: str
    headers: List[str]
    rows: List[List[object]]
    notes: str = ""
    raw: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        """The aligned monospace table with any notes appended."""
        text = render_table(self.headers, self.rows, title=self.name)
        if self.notes:
            text += "\n" + self.notes
        return text


def table1(
    dataset: str = "wi",
    pattern: str = "4cl",
    *,
    config: Optional[SimConfig] = None,
    scale: Optional[float] = None,
) -> TableResult:
    """Table 1: qualitative scheme comparison, derived quantitatively.

    A ``+`` means the scheme is within 2x of the best scheme on that
    axis; ``-`` means it is not.  The raw measurements are attached so
    the derivation is auditable.
    """
    runs: Dict[str, RunMetrics] = {
        scheme: run_cell(dataset, pattern, scheme, config=config, scale=scale)
        for scheme in TABLE1_SCHEMES
    }
    footprint = {s: max(1, runs[s].peak_footprint_bytes) for s in TABLE1_SCHEMES}
    locality = {s: runs[s].l1_hit_rate for s in TABLE1_SCHEMES}
    parallel = {s: runs[s].slot_utilization for s in TABLE1_SCHEMES}
    barrier = {s: runs[s].barrier_idle_fraction for s in TABLE1_SCHEMES}

    best_fp = min(footprint.values())
    best_par = max(parallel.values())
    rows = []
    for s in TABLE1_SCHEMES:
        rows.append(
            [
                s,
                ("+" if footprint[s] <= 2 * best_fp else "-") + f" ({footprint[s]}B)",
                ("+" if locality[s] >= 0.90 else "-") + f" ({locality[s]:.3f})",
                ("+" if parallel[s] >= 0.5 * best_par else "-") + f" ({parallel[s]:.3f})",
                ("+" if barrier[s] <= 0.25 else "-") + f" ({barrier[s]:.3f})",
            ]
        )
    return TableResult(
        name=f"Table 1 (measured on {dataset}-{pattern})",
        headers=["scheme", "memory footprint", "data locality", "parallelization", "barrier-free"],
        rows=rows,
        notes="+/- derived from the raw measurements in parentheses.",
        raw={"runs": runs},
    )


def table2(
    datasets: Optional[List[str]] = None,
    patterns: Optional[List[str]] = None,
    *,
    scale: Optional[float] = None,
) -> TableResult:
    """Table 2: average intermediate-data cache lines per task.

    Computed by the reference miner: for every expanding task, the cache
    lines of its intermediate (ancestor candidate set) inputs, averaged.
    """
    datasets = datasets if datasets is not None else list(DATASET_CODES)
    patterns = patterns if patterns is not None else list(TABLE2_PATTERNS)
    rows = []
    raw: Dict[str, object] = {}
    for ds in datasets:
        graph = get_graph(ds, scale)
        row: List[object] = [ds]
        for pat in patterns:
            result = mine(graph, get_schedule(pat))
            value = result.stats.avg_intermediate_lines_per_task
            raw[f"{ds}-{pat}"] = value
            row.append(round(value, 1))
        rows.append(row)
    return TableResult(
        name="Table 2: avg input intermediate cache lines per task",
        headers=["dataset"] + [p.replace("_e", "") for p in patterns],
        rows=rows,
        raw=raw,
    )


def table3(config: Optional[SimConfig] = None) -> TableResult:
    """Table 3: the active simulator configuration."""
    cfg = config if config is not None else eval_config()
    rows = [
        ["PEs", f"{cfg.num_pes} PEs, width {cfg.execution_width}, "
                f"{cfg.task_tree_entries()} task tree entries, "
                f"{cfg.num_dividers} dividers, {cfg.num_ius} IUs"],
        ["Cache line size", f"{cfg.cache_line_bytes} bytes"],
        ["SPM", f"{cfg.spm_kb} KB per PE, {cfg.spm_lines} cache lines"],
        ["L1 cache", f"{cfg.l1_kb} KB per PE, private, {cfg.l1_assoc}-way"],
        ["L2 cache", f"{cfg.l2_kb} KB, shared, {cfg.l2_assoc}-way"],
        ["Memory", f"{cfg.dram_channels} channels, "
                   f"{cfg.dram_latency_cycles}-cycle latency"],
        ["Search schedule", "GraphPi-style (repro.patterns.graphpi)"],
        ["Conservative mode", f"L1 avg latency > {cfg.l1_latency_threshold} cycles "
                              f"AND IU util < {cfg.iu_util_threshold:.0%}"],
    ]
    return TableResult(
        name="Table 3: simulator configuration (scaled, see DESIGN.md)",
        headers=["item", "value"],
        rows=rows,
    )


def table4(*, scale: Optional[float] = None) -> TableResult:
    """Table 4: evaluated datasets — paper sizes vs. synthetic stand-ins."""
    rows = []
    for code in DATASET_CODES:
        spec = get_spec(code)
        stats = compute_stats(get_graph(code, scale))
        rows.append(
            [
                f"{spec.paper_name} ({code})",
                spec.paper_vertices,
                spec.paper_edges,
                stats.num_vertices,
                stats.num_edges,
                round(stats.average_degree, 1),
                round(stats.degree_skewness, 1),
            ]
        )
    return TableResult(
        name="Table 4: datasets (paper originals vs synthetic stand-ins)",
        headers=["dataset", "paper |V|", "paper |E|", "synth |V|", "synth |E|",
                 "avg deg", "skew"],
        rows=rows,
    )
