"""Experiment harness: regenerate every table and figure of the paper."""

from .ablations import (
    ablation_conservative_mode,
    ablation_pipeline_throughput,
    ablation_tokens,
)
from .figures import (
    FigureResult,
    figure3a,
    figure3b,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13a,
    figure13b,
    figure14,
)
from .reporting import percent, render_table
from .runner import (
    clear_run_cache,
    default_scale,
    eval_config,
    get_graph,
    get_schedule,
    reference_count,
    run_cell,
    set_cell_hook,
    simulate_cell,
)


def __getattr__(name: str):
    # Deprecated alias kept for the old export; resolves lazily so a
    # REPRO_SCALE set after import is still honored (see runner).
    if name == "DEFAULT_SCALE":
        from . import runner

        return runner.DEFAULT_SCALE
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
from .tables import TableResult, table1, table2, table3, table4
from .workloads import EXCLUDED, evaluation_grid, patterns_for

__all__ = [
    "DEFAULT_SCALE",
    "ablation_conservative_mode",
    "ablation_pipeline_throughput",
    "ablation_tokens",
    "EXCLUDED",
    "FigureResult",
    "TableResult",
    "clear_run_cache",
    "default_scale",
    "eval_config",
    "evaluation_grid",
    "figure10",
    "figure11",
    "figure12",
    "figure13a",
    "figure13b",
    "figure14",
    "figure3a",
    "figure3b",
    "figure9",
    "get_graph",
    "get_schedule",
    "patterns_for",
    "percent",
    "reference_count",
    "render_table",
    "run_cell",
    "set_cell_hook",
    "simulate_cell",
    "table1",
    "table2",
    "table3",
    "table4",
]
