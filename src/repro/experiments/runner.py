"""Experiment runner: one evaluation cell = (dataset, pattern, policy).

Centralizes three things every table/figure needs:

* the **evaluation configuration** — Table 3 scaled to the synthetic
  datasets (see :func:`eval_config` for the scaling rationale),
* **memoized runs** — Figure 9 and Figure 10 read the same simulations,
  so results are cached per (dataset, pattern, policy, config) key,
* **count verification** — every simulation's match count is checked
  against the reference miner; a mismatch raises immediately, making the
  completeness/uniqueness invariant a standing assertion of the whole
  harness.
"""

from __future__ import annotations

import os
import warnings
from typing import Callable, Dict, Optional, Tuple

from ..errors import SimulationError
from ..graph.csr import CSRGraph
from ..graph.datasets import load_dataset
from ..mining.engine import count_matches
from ..patterns.graphpi import benchmark_schedule
from ..patterns.schedule import MatchingSchedule
from ..sim.accelerator import simulate
from ..sim.config import SimConfig
from ..sim.metrics import RunMetrics


def default_scale() -> float:
    """Dataset scale factor, read lazily from ``REPRO_SCALE``.

    Reading the environment at call time (not import time) lets tests
    and the CLI set ``REPRO_SCALE`` after ``repro`` is imported and
    still take effect; the default is 1.0.
    """
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def __getattr__(name: str):
    # Deprecated alias: DEFAULT_SCALE was a module constant frozen at
    # import time, which silently ignored later REPRO_SCALE changes.
    if name == "DEFAULT_SCALE":
        warnings.warn(
            "repro.experiments.runner.DEFAULT_SCALE is deprecated; "
            "call default_scale() instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return default_scale()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def eval_config(**overrides) -> SimConfig:
    """The evaluation configuration: Table 3, memory scaled to datasets.

    The synthetic stand-ins are ~1000× smaller than the SNAP graphs, so
    running them against a full-size 32 KB L1 / 4 MB L2 would make every
    working set cache-resident and erase the locality effects the paper
    studies.  The hierarchy is therefore scaled to preserve the paper's
    *ratios* (hub neighbor set vs. L1 capacity, graph size vs. L2):

    * L1 8 KB (the 32 KB analog), L2 256 KB (the 4 MB analog),
    * SPM kept at 16 KB (per-slot staging, Table 3),
    * IU segment throughput scaled down 4× (4-element segments) so the
      compute/overhead balance matches the paper's compute-bound
      characterization despite the smaller vertex sets.

    Everything else (10 PEs, width 8, 178 task-tree entries, 12 dividers,
    24 IUs, 4 DRAM channels, conservative-mode thresholds) is Table 3
    verbatim.
    """
    base = dict(
        l1_kb=8,
        l2_kb=256,
        spm_kb=16,
        segment_elements=4,
        segment_cycles=16,
        lb_check_interval=500,
    )
    base.update(overrides)
    return SimConfig(**base)


_GRAPH_COUNTS: Dict[Tuple[str, str, float], int] = {}
_RUNS: Dict[Tuple, RunMetrics] = {}

#: Cell-interception hook installed by ``repro.orchestrator``: called by
#: :func:`run_cell` with the fully resolved cell before any simulation.
#: Returning a RunMetrics short-circuits the run (cache replay); None
#: falls through to the normal memoize-and-simulate path.
CellHook = Callable[..., Optional[RunMetrics]]
_CELL_HOOK: Optional[CellHook] = None


def set_cell_hook(hook: Optional[CellHook]) -> Optional[CellHook]:
    """Install ``hook`` (or None to uninstall); returns the previous hook."""
    global _CELL_HOOK
    previous = _CELL_HOOK
    _CELL_HOOK = hook
    return previous


def get_graph(dataset: str, scale: Optional[float] = None) -> CSRGraph:
    """The synthetic stand-in graph for a dataset code."""
    return load_dataset(dataset, scale=scale if scale is not None else default_scale())


def get_schedule(pattern: str) -> MatchingSchedule:
    """The GraphPi-style schedule for a benchmark pattern code."""
    return benchmark_schedule(pattern)


def reference_count(dataset: str, pattern: str, *, scale: Optional[float] = None) -> int:
    """Exact match count from the software reference miner (memoized).

    Counts are also persisted in the binary graph store (keyed by the
    graph's content key plus a miner-source salt), so concurrent
    orchestrator workers and later cold runs mine each
    ``(dataset, pattern, scale)`` once instead of once per process.
    """
    scale_val = scale if scale is not None else default_scale()
    key = (dataset, pattern, scale_val)
    if key in _GRAPH_COUNTS:
        return _GRAPH_COUNTS[key]
    from ..graph.arena import default_graph_store

    store = default_graph_store()
    if store is not None:
        cached = store.get_count(dataset, scale_val, pattern)
        if cached is not None:
            _GRAPH_COUNTS[key] = cached
            return cached
    count = count_matches(get_graph(dataset, scale), get_schedule(pattern))
    if store is not None:
        try:
            store.put_count(dataset, scale_val, pattern, count)
        except OSError:
            pass
    _GRAPH_COUNTS[key] = count
    return count


def simulate_cell(
    dataset: str,
    pattern: str,
    policy: str,
    *,
    config: Optional[SimConfig] = None,
    scale: Optional[float] = None,
    verify: bool = True,
) -> RunMetrics:
    """Simulate one evaluation cell, bypassing memoization and hooks.

    This is the raw execution path orchestrator workers call in their
    own processes; :func:`run_cell` wraps it with the in-process memo
    and the orchestrator's cache/replay hook.
    """
    cfg = config if config is not None else eval_config()
    scale_val = scale if scale is not None else default_scale()
    metrics = simulate(get_graph(dataset, scale_val), get_schedule(pattern), policy=policy, config=cfg)
    if verify:
        expected = reference_count(dataset, pattern, scale=scale_val)
        if metrics.matches != expected:
            raise SimulationError(
                f"{dataset}-{pattern}/{policy}: simulated {metrics.matches} "
                f"matches but the reference miner found {expected}"
            )
    return metrics


def run_cell(
    dataset: str,
    pattern: str,
    policy: str,
    *,
    config: Optional[SimConfig] = None,
    scale: Optional[float] = None,
    verify: bool = True,
) -> RunMetrics:
    """Simulate one evaluation cell (memoized within the process)."""
    cfg = config if config is not None else eval_config()
    scale_val = scale if scale is not None else default_scale()
    if _CELL_HOOK is not None:
        provided = _CELL_HOOK(
            dataset=dataset, pattern=pattern, policy=policy,
            config=cfg, scale=scale_val, verify=verify,
        )
        if provided is not None:
            return provided
    key = (dataset, pattern, policy, scale_val, cfg)
    if key in _RUNS:
        return _RUNS[key]
    metrics = simulate_cell(
        dataset, pattern, policy, config=cfg, scale=scale_val, verify=verify
    )
    _RUNS[key] = metrics
    return metrics


def clear_run_cache() -> None:
    """Drop memoized runs and counts (tests)."""
    _RUNS.clear()
    _GRAPH_COUNTS.clear()
