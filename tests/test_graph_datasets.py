"""Unit tests for the dataset registry (Table 4 stand-ins)."""

import pytest

from repro.errors import GraphError
from repro.graph import dataset_codes, get_spec, load_dataset
from repro.graph.datasets import REGISTRY, clear_cache
from repro.graph.stats import degree_skewness


class TestRegistry:
    def test_codes_order(self):
        assert dataset_codes() == ["wi", "as", "yo", "pa", "lj", "or"]

    def test_all_specs_present(self):
        for code in dataset_codes():
            spec = get_spec(code)
            assert spec.code == code
            assert spec.paper_name

    def test_unknown_code(self):
        with pytest.raises(GraphError):
            get_spec("zz")

    def test_registry_complete(self):
        assert set(REGISTRY) == set(dataset_codes())


class TestLoading:
    def test_memoized(self):
        a = load_dataset("wi", scale=0.2)
        b = load_dataset("wi", scale=0.2)
        assert a is b

    def test_scale_changes_size(self):
        small = load_dataset("wi", scale=0.2)
        big = load_dataset("wi", scale=0.4)
        assert big.num_vertices > small.num_vertices

    def test_bad_scale(self):
        with pytest.raises(GraphError):
            load_dataset("wi", scale=0)

    def test_clear_cache(self):
        a = load_dataset("as", scale=0.2)
        clear_cache()
        b = load_dataset("as", scale=0.2)
        assert a is not b

    def test_names_match_codes(self):
        for code in dataset_codes():
            assert load_dataset(code, scale=0.2).name == code


class TestCharacter:
    """The properties the paper's analysis relies on (DESIGN.md §1)."""

    def test_degree_sorted(self):
        g = load_dataset("yo", scale=0.25)
        degs = list(g.degrees)
        assert all(degs[i] >= degs[i + 1] for i in range(len(degs) - 1))

    def test_yo_most_skewed(self):
        skews = {c: degree_skewness(load_dataset(c, scale=0.25)) for c in ("yo", "pa")}
        assert skews["yo"] > skews["pa"] + 1.0

    def test_or_highest_degree(self):
        degrees = {
            c: load_dataset(c, scale=0.25).average_degree
            for c in ("yo", "pa", "or")
        }
        assert degrees["or"] > degrees["yo"]
        assert degrees["or"] > degrees["pa"]

    def test_size_ordering(self):
        wi = load_dataset("wi", scale=0.25)
        pa = load_dataset("pa", scale=0.25)
        assert pa.num_vertices > wi.num_vertices
